#!/usr/bin/env sh
# Repository CI: formatting, lints, then the tier-1 gate.
# Usage: ./ci.sh
set -eu

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== cargo doc --no-deps -p casa-obs"
cargo doc --no-deps -p casa-obs

echo "== observability smoke: sweep --smoke --trace-out"
rm -f /tmp/casa_trace.json
# Run from /tmp so the smoke report does not clobber the repo's
# checked-in full-grid BENCH_sweep.json.
ROOT="$(pwd)"
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke --trace-out /tmp/casa_trace.json)
test -s /tmp/casa_trace.json || { echo "trace file empty or missing"; exit 1; }
# Valid JSON + well-formed spans: re-parse it with the diag renderer.
cargo run --release -q -p casa-bench --bin diag -- --render-trace /tmp/casa_trace.json | grep -q "simulate" \
  || { echo "trace does not cover the simulate phase"; exit 1; }

echo "== regression sentinel: two identical smoke runs must not regress"
# Two back-to-back runs of the same grid append two history records;
# the second is byte-identical on every deterministic column, so the
# sentinel must report a clean pass (exit 0) and say so in the
# machine verdict.
rm -f /tmp/casa_history.jsonl /tmp/casa_regress.json
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke --history-out /tmp/casa_history.jsonl)
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke --history-out /tmp/casa_history.jsonl)
cargo run --release -q -p casa-bench --bin sentinel -- --history /tmp/casa_history.jsonl --out /tmp/casa_regress.json \
  || { echo "sentinel flagged a regression between identical runs"; exit 1; }
grep -q '"verdict":"pass"' /tmp/casa_regress.json \
  || { echo "machine verdict is not a pass"; exit 1; }

echo "== flight recorder: deliberate panic must leave a readable dump"
# CASA_SELFTEST_PANIC makes the sweep bin panic after the grid runs;
# the installed panic hook must write the flight ring to the sink,
# and diag --flight must round-trip it back into a table.
rm -f /tmp/casa_flight.json
if (cd /tmp && CASA_TRACE=1 CASA_SELFTEST_PANIC=1 cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke --history-out /tmp/casa_selftest_history.jsonl --flight-dump /tmp/casa_flight.json) 2>/dev/null; then
  echo "self-test panic did not fire"; exit 1
fi
rm -f /tmp/casa_selftest_history.jsonl
test -s /tmp/casa_flight.json || { echo "flight dump empty or missing"; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- --flight /tmp/casa_flight.json | grep -q "cell" \
  || { echo "flight dump does not cover the cell phase"; exit 1; }

echo "== budget-stress smoke: sweep --smoke --budget-nodes 1"
# The harshest anytime setting: a single search node per cell. The
# sweep bin itself asserts every cell still answers (status present;
# finite gap >= 0 unless a fallback substituted) and that the
# node-budgeted report stays byte-identical across worker counts.
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke --budget-nodes 1)

echo "== deprecated-shim grep"
# The pre-engine entry points survive only as #[deprecated] shims;
# nothing outside their defining modules (and the tests that pin the
# shims themselves) may call them.
if grep -rn "run_spm_flow_obs(\|run_loop_cache_flow_obs(\|form_traces_obs(\|solve_obs(\|solve_with_stats(" \
    crates src examples \
    --include='*.rs' \
    | grep -v "^crates/core/src/flow.rs:" \
    | grep -v "^crates/trace/src/trace.rs:" \
    | grep -v "^crates/ilp/src/branch_bound.rs:" \
    | grep -v "^crates/ilp/src/engine.rs:"; then
  echo "deprecated shim called outside its defining module"; exit 1
fi

echo "CI OK"
