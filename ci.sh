#!/usr/bin/env sh
# Repository CI: formatting, lints, then the tier-1 gate.
# Usage: ./ci.sh
set -eu

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== cargo doc --no-deps -p casa-obs"
cargo doc --no-deps -p casa-obs

echo "== observability smoke: sweep --smoke --trace-out"
rm -f /tmp/casa_trace.json
# Run from /tmp so the smoke report does not clobber the repo's
# checked-in full-grid BENCH_sweep.json.
ROOT="$(pwd)"
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke --trace-out /tmp/casa_trace.json)
test -s /tmp/casa_trace.json || { echo "trace file empty or missing"; exit 1; }
# Valid JSON + well-formed spans: re-parse it with the diag renderer.
cargo run --release -q -p casa-bench --bin diag -- render-trace /tmp/casa_trace.json | grep -q "simulate" \
  || { echo "trace does not cover the simulate phase"; exit 1; }

echo "== regression sentinel: two identical smoke runs must not regress"
# Two back-to-back runs of the same grid append two history records;
# the second is byte-identical on every deterministic column, so the
# sentinel must report a clean pass (exit 0) and say so in the
# machine verdict.
rm -f /tmp/casa_history.jsonl /tmp/casa_regress.json
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke --history-out /tmp/casa_history.jsonl)
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke --history-out /tmp/casa_history.jsonl)
cargo run --release -q -p casa-bench --bin sentinel -- --history /tmp/casa_history.jsonl --out /tmp/casa_regress.json \
  || { echo "sentinel flagged a regression between identical runs"; exit 1; }
grep -q '"verdict":"pass"' /tmp/casa_regress.json \
  || { echo "machine verdict is not a pass"; exit 1; }

echo "== flight recorder: deliberate panic must leave a readable dump"
# CASA_SELFTEST_PANIC makes the sweep bin panic after the grid runs;
# the installed panic hook must write the flight ring to the sink,
# and diag --flight must round-trip it back into a table.
rm -f /tmp/casa_flight.json
if (cd /tmp && CASA_TRACE=1 CASA_SELFTEST_PANIC=1 cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke --history-out /tmp/casa_selftest_history.jsonl --flight-dump /tmp/casa_flight.json) 2>/dev/null; then
  echo "self-test panic did not fire"; exit 1
fi
rm -f /tmp/casa_selftest_history.jsonl
test -s /tmp/casa_flight.json || { echo "flight dump empty or missing"; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- flight /tmp/casa_flight.json | grep -q "cell" \
  || { echo "flight dump does not cover the cell phase"; exit 1; }

echo "== live telemetry: served sweep, probe, watchdog, determinism"
# A serverless smoke run records the reference deterministic report;
# then the same grid runs with the telemetry server, an armed watchdog
# and the stall self-test. diag's std-only HTTP client probes the live
# endpoints (valid Prometheus exposition mid-run, required families,
# span frames over /events), the watchdog must catch the deliberately
# stalled phase and dump the flight ring, and the served report must
# stay byte-identical to the serverless one.
rm -f /tmp/casa_det_plain.json /tmp/casa_det_served.json /tmp/casa_serve_addr \
      /tmp/casa_probe_flight.json /tmp/casa_telemetry_history.jsonl
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke \
  --history-out /tmp/casa_telemetry_history.jsonl --det-out /tmp/casa_det_plain.json)
(cd /tmp && CASA_WATCHDOG_MS=250 CASA_SELFTEST_STALL=1 \
  cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke \
  --history-out /tmp/casa_telemetry_history.jsonl --det-out /tmp/casa_det_served.json \
  --serve 127.0.0.1:0 --serve-addr-file /tmp/casa_serve_addr --serve-linger-ms 60000 \
  --flight-dump /tmp/casa_probe_flight.json) &
SWEEP_PID=$!
i=0; while [ $i -lt 300 ] && ! test -s /tmp/casa_serve_addr; do i=$((i+1)); sleep 0.1; done
test -s /tmp/casa_serve_addr || { echo "served sweep never published its address"; kill $SWEEP_PID; exit 1; }
ADDR="$(head -n1 /tmp/casa_serve_addr)"
# Quick probe while the run may still be in flight: healthz + a valid
# /metrics exposition must hold mid-sweep, not just at the end.
cargo run --release -q -p casa-bench --bin diag -- probe "$ADDR" --quick \
  || { echo "mid-run probe failed"; kill $SWEEP_PID; exit 1; }
# The watchdog's flight dump doubles as the "stall was caught" signal;
# once it exists the stall counter is on the exporter too.
i=0; while [ $i -lt 100 ] && ! test -s /tmp/casa_probe_flight.json; do i=$((i+1)); sleep 0.1; done
test -s /tmp/casa_probe_flight.json || { echo "watchdog stall left no flight dump"; kill $SWEEP_PID; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- probe "$ADDR" --expect-spans \
  --expect casa_sweep_cells_done --expect casa_sweep_cells_total \
  --expect casa_energy_total_uj --expect casa_watchdog_stalls --quit \
  || { echo "full probe failed"; kill $SWEEP_PID; exit 1; }
wait $SWEEP_PID || { echo "served sweep failed"; exit 1; }
cmp /tmp/casa_det_plain.json /tmp/casa_det_served.json \
  || { echo "telemetry server changed the deterministic report"; exit 1; }

echo "== sentinel --serve: verdict gauges on the exporter"
# The two telemetry runs above share a grid fingerprint, so the
# sentinel has a baseline and must pass; with --serve its verdict is
# also scraped off /metrics as casa_sentinel_* gauges.
rm -f /tmp/casa_sentinel_addr /tmp/casa_regress_served.json
cargo run --release -q -p casa-bench --bin sentinel -- \
  --history /tmp/casa_telemetry_history.jsonl --out /tmp/casa_regress_served.json \
  --serve 127.0.0.1:0 --serve-addr-file /tmp/casa_sentinel_addr --serve-linger-ms 60000 &
SENTINEL_PID=$!
i=0; while [ $i -lt 300 ] && ! test -s /tmp/casa_sentinel_addr; do i=$((i+1)); sleep 0.1; done
test -s /tmp/casa_sentinel_addr || { echo "sentinel never published its address"; kill $SENTINEL_PID; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- probe "$(head -n1 /tmp/casa_sentinel_addr)" \
  --expect casa_sentinel_regressions --expect casa_sentinel_checks \
  --expect casa_sentinel_pass --expect casa_sentinel_baseline_runs --quit \
  || { echo "sentinel probe failed"; kill $SENTINEL_PID; exit 1; }
wait $SENTINEL_PID || { echo "served sentinel flagged a regression between identical runs"; exit 1; }
grep -q '"verdict":"pass"' /tmp/casa_regress_served.json \
  || { echo "served sentinel verdict is not a pass"; exit 1; }
rm -f /tmp/casa_telemetry_history.jsonl

echo "== allocation service: casa-server under concurrent load"
# Boot the allocation service on an ephemeral port, then drive it with
# the load generator: two concurrent clients issuing a deterministic
# mix of cold solves, exact repeats (cache hits), capacity-adjacent
# pairs (warm starts), and one starved request that must degrade to a
# feasible answer with a finite gap. The loadgen asserts repeats are
# byte-identical and that /metrics agrees with its own request count;
# ci.sh re-checks one repeated pair with cmp and probes the
# casa_server_* families independently via diag.
rm -f /tmp/casa_server_addr /tmp/casa_solve_a.json /tmp/casa_solve_b.json
cargo run --release -q -p casa-bench --bin casa-server -- \
  --listen 127.0.0.1:0 --addr-file /tmp/casa_server_addr --max-seconds 300 &
SERVER_PID=$!
i=0; while [ $i -lt 300 ] && ! test -s /tmp/casa_server_addr; do i=$((i+1)); sleep 0.1; done
test -s /tmp/casa_server_addr || { echo "casa-server never published its address"; kill $SERVER_PID; exit 1; }
SERVER_ADDR="$(head -n1 /tmp/casa_server_addr)"
cargo run --release -q -p casa-bench --bin casa-loadgen -- \
  --addr "$SERVER_ADDR" --clients 2 --graphs 4 --repeat 2 \
  --dump-a /tmp/casa_solve_a.json --dump-b /tmp/casa_solve_b.json \
  || { echo "load generator failed"; kill $SERVER_PID; exit 1; }
cmp /tmp/casa_solve_a.json /tmp/casa_solve_b.json \
  || { echo "repeated solve responses differ"; kill $SERVER_PID; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- probe "$SERVER_ADDR" \
  --expect casa_server_requests_total --expect casa_server_cache_hits_total \
  --expect casa_server_cache_misses_total --quit \
  || { echo "casa-server probe failed"; kill $SERVER_PID; exit 1; }
wait $SERVER_PID || { echo "casa-server did not exit cleanly"; exit 1; }

echo "== request observability: id echo, journal, slow-capture, byte-identity"
# Boot casa-server with a 100 ms slow-request threshold and the
# slow-request self-test armed (requests whose id starts with "slow-"
# sleep 300 ms in the handler). Then: (1) POST /solve with an explicit
# X-Casa-Request-Id — diag --post asserts the echo; (2) the request
# journal must contain that id with full solve attribution (cache
# outcome, gap); (3) a "slow-" request must cross the threshold and
# leave a flight dump tagged with its id; (4) a second server with the
# journal disabled must answer the same request with byte-identical
# /solve bytes — observability may never leak into answers.
rm -f /tmp/casa_req_addr /tmp/casa_req_body.json /tmp/casa_req_tail.txt \
      /tmp/casa_solve_on.json /tmp/casa_solve_off.json /tmp/casa_slow_flight.json
cat > /tmp/casa_req_body.json <<'BODY'
{"graph":{"fetches":[900,400,700],"sizes":[16,24,8],"edges":[[0,1,120],[1,0,80],[1,2,60]]},"cache":{"size":1024,"line":16,"assoc":1},"capacity":32,"allocator":"casa-bb"}
BODY
CASA_SLOW_REQ_MS=100 CASA_SELFTEST_SLOW_REQ=300 \
cargo run --release -q -p casa-bench --bin casa-server -- \
  --listen 127.0.0.1:0 --addr-file /tmp/casa_req_addr --max-seconds 300 \
  --flight-dump /tmp/casa_slow_flight.json &
SERVER_PID=$!
i=0; while [ $i -lt 300 ] && ! test -s /tmp/casa_req_addr; do i=$((i+1)); sleep 0.1; done
test -s /tmp/casa_req_addr || { echo "casa-server never published its address"; kill $SERVER_PID; exit 1; }
REQ_ADDR="$(head -n1 /tmp/casa_req_addr)"
cargo run --release -q -p casa-bench --bin diag -- post "$REQ_ADDR" /tmp/casa_req_body.json \
  --req-id ci-req-42 --out /tmp/casa_solve_on.json \
  || { echo "tagged solve failed or id was not echoed"; kill $SERVER_PID; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- tail "$REQ_ADDR" > /tmp/casa_req_tail.txt \
  || { echo "journal tail failed"; kill $SERVER_PID; exit 1; }
grep "ci-req-42" /tmp/casa_req_tail.txt | grep "cache=" | grep -q "gap=" \
  || { echo "journal entry for ci-req-42 lacks solve attribution"; kill $SERVER_PID; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- post "$REQ_ADDR" /tmp/casa_req_body.json \
  --req-id slow-ci-1 --out /dev/null \
  || { echo "slow-tagged solve failed"; kill $SERVER_PID; exit 1; }
i=0; while [ $i -lt 100 ] && ! test -s /tmp/casa_slow_flight.json; do i=$((i+1)); sleep 0.1; done
test -s /tmp/casa_slow_flight.json || { echo "slow request left no flight dump"; kill $SERVER_PID; exit 1; }
grep -q "slow-ci-1" /tmp/casa_slow_flight.json \
  || { echo "slow-request flight dump is not tagged with the request id"; kill $SERVER_PID; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- probe "$REQ_ADDR" \
  --expect casa_server_requests_total --quit \
  || { echo "request-observability probe failed"; kill $SERVER_PID; exit 1; }
wait $SERVER_PID || { echo "casa-server did not exit cleanly"; exit 1; }
rm -f /tmp/casa_req_addr
CASA_REQ_JOURNAL_CAP=0 cargo run --release -q -p casa-bench --bin casa-server -- \
  --listen 127.0.0.1:0 --addr-file /tmp/casa_req_addr --max-seconds 300 &
SERVER_PID=$!
i=0; while [ $i -lt 300 ] && ! test -s /tmp/casa_req_addr; do i=$((i+1)); sleep 0.1; done
test -s /tmp/casa_req_addr || { echo "journal-off casa-server never published its address"; kill $SERVER_PID; exit 1; }
REQ_ADDR="$(head -n1 /tmp/casa_req_addr)"
cargo run --release -q -p casa-bench --bin diag -- post "$REQ_ADDR" /tmp/casa_req_body.json \
  --req-id ci-req-42 --out /tmp/casa_solve_off.json \
  || { echo "journal-off solve failed"; kill $SERVER_PID; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- probe "$REQ_ADDR" \
  --expect casa_server_requests_total --quit \
  || { echo "journal-off probe failed"; kill $SERVER_PID; exit 1; }
wait $SERVER_PID || { echo "journal-off casa-server did not exit cleanly"; exit 1; }
cmp /tmp/casa_solve_on.json /tmp/casa_solve_off.json \
  || { echo "journal changed the /solve response bytes"; exit 1; }

echo "== budget-stress smoke: sweep --smoke --budget-nodes 1"
# The harshest anytime setting: a single search node per cell. The
# sweep bin itself asserts every cell still answers (status present;
# finite gap >= 0 unless a fallback substituted) and that the
# node-budgeted report stays byte-identical across worker counts.
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke --budget-nodes 1)

echo "== deprecated-surface grep: no #[deprecated] items remain"
# The pre-engine shims were deleted outright in the v1 API cleanup.
# The public surface must stay free of deprecated items; removing an
# API is done by removing it, not by letting shims accumulate.
if grep -rn "#\[deprecated" crates src examples --include='*.rs'; then
  echo "deprecated item reintroduced"; exit 1
fi

echo "== record/replay: golden sessions from a smoke sweep"
# A smoke sweep with --session-dir records one .casa-session (plus a
# .report.json sibling) per scratchpad cell. Every session must replay
# byte-identically offline: diag replay re-executes the decision log,
# asserts the regenerated response equals the recording, and the
# report it writes must match the sibling byte for byte. One cell also
# goes through --divergence: a cold re-solve of a cold recording must
# match the log decision for decision.
rm -rf /tmp/casa_sessions
rm -f /tmp/casa_replay_report.json
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke --session-dir /tmp/casa_sessions)
ls /tmp/casa_sessions/*.casa-session >/dev/null 2>&1 \
  || { echo "smoke sweep recorded no sessions"; exit 1; }
for f in /tmp/casa_sessions/*.casa-session; do
  rm -f /tmp/casa_replay_report.json
  cargo run --release -q -p casa-bench --bin diag -- replay "$f" --report-out /tmp/casa_replay_report.json \
    || { echo "replay mismatch for $f"; exit 1; }
  cmp /tmp/casa_replay_report.json "${f%.casa-session}.report.json" \
    || { echo "replayed report differs from the recorded sibling for $f"; exit 1; }
done
FIRST_SESSION="$(ls /tmp/casa_sessions/*.casa-session | head -n1)"
cargo run --release -q -p casa-bench --bin diag -- replay "$FIRST_SESSION" --divergence \
  || { echo "cold recording diverged from its own re-solve"; exit 1; }

echo "== served capture: CASA_SESSION_DIR replay matches the journal"
# casa-server with CASA_SESSION_DIR set captures each cache-miss solve
# as a session tagged with the request ID. The captured session must
# (a) replay cleanly, (b) carry a report byte-identical to the /solve
# body the client actually received, and (c) replay to the same
# status/gap/nodes attribution the request journal recorded.
rm -rf /tmp/casa_srv_sessions
rm -f /tmp/casa_cap_addr /tmp/casa_cap_reply.json /tmp/casa_cap_tail.txt \
      /tmp/casa_cap_report.json /tmp/casa_cap_replay.txt
CASA_SESSION_DIR=/tmp/casa_srv_sessions \
cargo run --release -q -p casa-bench --bin casa-server -- \
  --listen 127.0.0.1:0 --addr-file /tmp/casa_cap_addr --max-seconds 300 &
SERVER_PID=$!
i=0; while [ $i -lt 300 ] && ! test -s /tmp/casa_cap_addr; do i=$((i+1)); sleep 0.1; done
test -s /tmp/casa_cap_addr || { echo "capturing casa-server never published its address"; kill $SERVER_PID; exit 1; }
CAP_ADDR="$(head -n1 /tmp/casa_cap_addr)"
cargo run --release -q -p casa-bench --bin diag -- post "$CAP_ADDR" /tmp/casa_req_body.json \
  --req-id ci-replay-7 --out /tmp/casa_cap_reply.json \
  || { echo "captured solve failed"; kill $SERVER_PID; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- tail "$CAP_ADDR" > /tmp/casa_cap_tail.txt \
  || { echo "capture journal tail failed"; kill $SERVER_PID; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- probe "$CAP_ADDR" \
  --expect casa_server_sessions_captured_total --quit \
  || { echo "capture probe failed"; kill $SERVER_PID; exit 1; }
wait $SERVER_PID || { echo "capturing casa-server did not exit cleanly"; exit 1; }
test -s /tmp/casa_srv_sessions/ci-replay-7.casa-session \
  || { echo "no session captured for ci-replay-7"; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- replay /tmp/casa_srv_sessions/ci-replay-7.casa-session \
  --report-out /tmp/casa_cap_report.json > /tmp/casa_cap_replay.txt \
  || { echo "captured session does not replay"; exit 1; }
cmp /tmp/casa_cap_report.json /tmp/casa_cap_reply.json \
  || { echo "captured session report differs from the served /solve bytes"; exit 1; }
# The journal line and the replay line both render the attribution as
# "status=.. gap=.. nodes=.."; the triples must agree exactly.
JOURNAL_ATTR="$(grep "ci-replay-7" /tmp/casa_cap_tail.txt | grep -o "status=[^ ]* gap=[^ ]* nodes=[^ ]*")"
REPLAY_ATTR="$(grep -o "status=[^ ]* gap=[^ ]* nodes=[^ ]*" /tmp/casa_cap_replay.txt)"
test -n "$JOURNAL_ATTR" || { echo "journal has no solve attribution for ci-replay-7"; exit 1; }
test "$JOURNAL_ATTR" = "$REPLAY_ATTR" \
  || { echo "replay attribution ($REPLAY_ATTR) differs from the journal ($JOURNAL_ATTR)"; exit 1; }

echo "== solver introspection: tree + time-series capture, worker byte-identity"
# Capture is an output channel, never an input to the solve: the same
# smoke grid runs under 1, 2 and 4 workers with --tree-out and
# --ts-out, and the search trees, the time-series, and the
# deterministic report must all be byte-identical across worker
# counts. A capture-free run must then reproduce the same
# deterministic report (capture changes no allocation decision), and
# diag tree must render the captured document as a convergence report.
rm -f /tmp/casa_introspect_history.jsonl /tmp/casa_det_ref.json \
      /tmp/casa_trees_ref.json /tmp/casa_ts_ref.json /tmp/casa_tree_render.txt
for T in 1 2 4; do
  rm -f /tmp/casa_det_cur.json /tmp/casa_trees_cur.json /tmp/casa_ts_cur.json
  (cd /tmp && CASA_SWEEP_THREADS=$T cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke \
    --history-out /tmp/casa_introspect_history.jsonl \
    --det-out /tmp/casa_det_cur.json --tree-out /tmp/casa_trees_cur.json --ts-out /tmp/casa_ts_cur.json)
  if [ ! -s /tmp/casa_det_ref.json ]; then
    mv /tmp/casa_det_cur.json /tmp/casa_det_ref.json
    mv /tmp/casa_trees_cur.json /tmp/casa_trees_ref.json
    mv /tmp/casa_ts_cur.json /tmp/casa_ts_ref.json
  else
    cmp /tmp/casa_det_ref.json /tmp/casa_det_cur.json \
      || { echo "deterministic report depends on CASA_SWEEP_THREADS=$T"; exit 1; }
    cmp /tmp/casa_trees_ref.json /tmp/casa_trees_cur.json \
      || { echo "captured search trees depend on CASA_SWEEP_THREADS=$T"; exit 1; }
    cmp /tmp/casa_ts_ref.json /tmp/casa_ts_cur.json \
      || { echo "time-series depend on CASA_SWEEP_THREADS=$T"; exit 1; }
  fi
done
rm -f /tmp/casa_det_nocap.json
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke \
  --history-out /tmp/casa_introspect_history.jsonl --det-out /tmp/casa_det_nocap.json)
cmp /tmp/casa_det_ref.json /tmp/casa_det_nocap.json \
  || { echo "tree/time-series capture changed the deterministic report"; exit 1; }
grep -q '"casa_timeseries":1' /tmp/casa_ts_ref.json \
  || { echo "time-series document missing its schema tag"; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- tree /tmp/casa_trees_ref.json > /tmp/casa_tree_render.txt \
  || { echo "diag tree rejected the captured sweep document"; exit 1; }
grep -q "spm_CasaBb" /tmp/casa_tree_render.txt \
  || { echo "tree report lacks the B&B cell"; exit 1; }
grep -q "incumbent" /tmp/casa_tree_render.txt \
  || { echo "tree report lacks the incumbent convergence table"; exit 1; }
# The same report as machine-readable JSON for downstream consumers.
cargo run --release -q -p casa-bench --bin diag -- tree /tmp/casa_trees_ref.json --json | grep -q '"casa_tree_report_sweep":1' \
  || { echo "diag tree --json did not emit the JSON convergence report"; exit 1; }
rm -f /tmp/casa_introspect_history.jsonl

echo "== sentinel --explain: injected regression is attributed"
# Corrupt the newest history record — every cell energy plus the
# tick-0 point of the sweep.energy_uj series — then demand the
# sentinel fails (exit 1) and attributes the damage: the family
# census names cell.energy_uj, the first divergent tick is located,
# and the machine verdict embeds the same attribution.
rm -f /tmp/casa_attr_history.jsonl /tmp/casa_attr_regress.json /tmp/casa_attr_verdict.txt
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke \
  --history-out /tmp/casa_attr_history.jsonl)
(cd /tmp && cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke \
  --history-out /tmp/casa_attr_history.jsonl)
BROKEN="$(tail -n1 /tmp/casa_attr_history.jsonl \
  | sed -e 's/"energy_uj":[0-9][0-9.eE+-]*/"energy_uj":999999999.0/g' \
        -e 's/"sweep.energy_uj":\[\[0,[0-9][0-9.eE+-]*/"sweep.energy_uj":[[0,999999999.0/')"
sed '$d' /tmp/casa_attr_history.jsonl > /tmp/casa_attr_history.tmp
printf '%s\n' "$BROKEN" >> /tmp/casa_attr_history.tmp
mv /tmp/casa_attr_history.tmp /tmp/casa_attr_history.jsonl
rc=0
cargo run --release -q -p casa-bench --bin sentinel -- --explain \
  --history /tmp/casa_attr_history.jsonl --out /tmp/casa_attr_regress.json \
  > /tmp/casa_attr_verdict.txt || rc=$?
[ "$rc" -eq 1 ] || { echo "sentinel did not flag the injected regression (rc=$rc)"; exit 1; }
grep -q "attribution: why this run failed" /tmp/casa_attr_verdict.txt \
  || { echo "failing sentinel printed no attribution"; exit 1; }
grep -q "cell.energy_uj" /tmp/casa_attr_verdict.txt \
  || { echo "attribution does not name the damaged family"; exit 1; }
grep -q "first time-series divergence: sweep.energy_uj at tick 0" /tmp/casa_attr_verdict.txt \
  || { echo "attribution missed the first divergent tick"; exit 1; }
grep -q '"family":"cell.energy_uj"' /tmp/casa_attr_regress.json \
  || { echo "machine verdict lacks the attribution"; exit 1; }
rm -f /tmp/casa_attr_history.jsonl

echo "== explainability: capture byte-identity across workers, renderer"
# Explain capture is an output channel, never an input to the solve:
# the same smoke grid runs with --explain-out under 1, 2 and 4
# workers. The explain documents and the deterministic report must be
# byte-identical across worker counts, and the report must match the
# capture-free reference from the introspection gate above (explain
# on/off changes no allocation decision). The history records of these
# runs must carry the per-cell top-regret census, and diag explain
# must render the captured document with all three report sections.
rm -f /tmp/casa_explain_history.jsonl /tmp/casa_explain_ref.json \
      /tmp/casa_det_exp_ref.json /tmp/casa_explain_render.txt
for T in 1 2 4; do
  rm -f /tmp/casa_explain_cur.json /tmp/casa_det_exp_cur.json
  (cd /tmp && CASA_SWEEP_THREADS=$T cargo run --manifest-path "$ROOT/Cargo.toml" --release -q -p casa-bench --bin sweep -- --smoke \
    --history-out /tmp/casa_explain_history.jsonl \
    --det-out /tmp/casa_det_exp_cur.json --explain-out /tmp/casa_explain_cur.json)
  if [ ! -s /tmp/casa_explain_ref.json ]; then
    mv /tmp/casa_explain_cur.json /tmp/casa_explain_ref.json
    mv /tmp/casa_det_exp_cur.json /tmp/casa_det_exp_ref.json
  else
    cmp /tmp/casa_explain_ref.json /tmp/casa_explain_cur.json \
      || { echo "explain documents depend on CASA_SWEEP_THREADS=$T"; exit 1; }
    cmp /tmp/casa_det_exp_ref.json /tmp/casa_det_exp_cur.json \
      || { echo "deterministic report depends on CASA_SWEEP_THREADS=$T under explain capture"; exit 1; }
  fi
done
cmp /tmp/casa_det_ref.json /tmp/casa_det_exp_ref.json \
  || { echo "explain capture changed the deterministic report"; exit 1; }
grep -q '"casa_explain_sweep":1' /tmp/casa_explain_ref.json \
  || { echo "explain sweep document missing its schema tag"; exit 1; }
grep -q '"explain_census":' /tmp/casa_explain_history.jsonl \
  || { echo "history records of an explain run carry no census"; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- explain /tmp/casa_explain_ref.json --top 5 > /tmp/casa_explain_render.txt \
  || { echo "diag explain rejected the captured sweep document"; exit 1; }
grep -q "capacity shadow price:" /tmp/casa_explain_render.txt \
  || { echo "explain report lacks the shadow-price line"; exit 1; }
grep -q "top 5 by regret:" /tmp/casa_explain_render.txt \
  || { echo "explain report lacks the regret table"; exit 1; }
grep -q "flip distances" /tmp/casa_explain_render.txt \
  || { echo "explain report lacks the flip-distance ranking"; exit 1; }
rm -f /tmp/casa_explain_history.jsonl

echo "== served explain: opt-in sibling agrees with the reply and journal"
# A request with "explain":true against a CASA_SESSION_DIR server must
# leave a <stem>.explain.json sibling (misses only). The sibling must
# render, and its account must agree with what the server actually
# served: the scratchpad bytes in the reply equal the bytes the
# explain document says were used, and the journal shows the request
# as the cache miss the capture contract requires.
rm -rf /tmp/casa_exp_sessions
rm -f /tmp/casa_exp_addr /tmp/casa_exp_body.json /tmp/casa_exp_reply.json \
      /tmp/casa_exp_tail.txt /tmp/casa_exp_render.txt
cat > /tmp/casa_exp_body.json <<'BODY'
{"graph":{"fetches":[900,400,700],"sizes":[16,24,8],"edges":[[0,1,120],[1,0,80],[1,2,60]]},"cache":{"size":1024,"line":16,"assoc":1},"capacity":32,"allocator":"casa-bb","explain":true}
BODY
CASA_SESSION_DIR=/tmp/casa_exp_sessions \
cargo run --release -q -p casa-bench --bin casa-server -- \
  --listen 127.0.0.1:0 --addr-file /tmp/casa_exp_addr --max-seconds 300 &
SERVER_PID=$!
i=0; while [ $i -lt 300 ] && ! test -s /tmp/casa_exp_addr; do i=$((i+1)); sleep 0.1; done
test -s /tmp/casa_exp_addr || { echo "explain casa-server never published its address"; kill $SERVER_PID; exit 1; }
EXP_ADDR="$(head -n1 /tmp/casa_exp_addr)"
cargo run --release -q -p casa-bench --bin diag -- post "$EXP_ADDR" /tmp/casa_exp_body.json \
  --req-id ci-explain-9 --out /tmp/casa_exp_reply.json \
  || { echo "explain-tagged solve failed"; kill $SERVER_PID; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- tail "$EXP_ADDR" > /tmp/casa_exp_tail.txt \
  || { echo "explain journal tail failed"; kill $SERVER_PID; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- probe "$EXP_ADDR" \
  --expect casa_server_explains_captured_total --quit \
  || { echo "explain capture counter missing from /metrics"; kill $SERVER_PID; exit 1; }
wait $SERVER_PID || { echo "explain casa-server did not exit cleanly"; exit 1; }
test -s /tmp/casa_exp_sessions/ci-explain-9.explain.json \
  || { echo "no explain sibling captured for ci-explain-9"; exit 1; }
cargo run --release -q -p casa-bench --bin diag -- explain /tmp/casa_exp_sessions/ci-explain-9.explain.json > /tmp/casa_exp_render.txt \
  || { echo "captured explain sibling does not render"; exit 1; }
grep -q "capacity shadow price:" /tmp/casa_exp_render.txt \
  || { echo "captured explain sibling lacks the shadow-price line"; exit 1; }
# Agreement with the served reply: the scratchpad usage the document
# explains is the one the response reports.
SPM_BYTES="$(grep -o '"spm_bytes":[0-9]*' /tmp/casa_exp_reply.json | cut -d: -f2)"
grep -q "\"spm_used\":${SPM_BYTES}[,}]" /tmp/casa_exp_sessions/ci-explain-9.explain.json \
  || { echo "explain sibling disagrees with the reply on scratchpad bytes"; exit 1; }
# Agreement with the journal: the capture contract says siblings are
# written on misses, and the journal must show exactly that.
grep "ci-explain-9" /tmp/casa_exp_tail.txt | grep -q "cache=miss" \
  || { echo "journal does not record ci-explain-9 as the miss its sibling implies"; exit 1; }

echo "CI OK"
