#!/usr/bin/env sh
# Repository CI: formatting, lints, then the tier-1 gate.
# Usage: ./ci.sh
set -eu

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "CI OK"
