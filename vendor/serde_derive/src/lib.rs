//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build
//! environment, and the workspace only uses serde's derives as
//! documentation-grade markers (no code path serializes through
//! serde's data model — JSON output is hand-rolled). The derives
//! therefore expand to nothing, which is exactly the observable
//! behaviour the workspace relies on.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
