//! Offline stand-in for `serde`.
//!
//! Exposes the `Serialize` / `Deserialize` names the workspace
//! imports (both the traits and the derive macros). The derives are
//! no-ops; nothing in the workspace serializes through serde's data
//! model — structured output (e.g. `BENCH_sweep.json`) is produced by
//! hand-rolled, deterministic JSON writers instead. The [`json`]
//! module provides the small parsing surface tests use to validate
//! that hand-rolled output (trace exports, bench reports) is
//! well-formed JSON.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`'s name.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}
