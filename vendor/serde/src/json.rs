//! A minimal recursive-descent JSON parser.
//!
//! Exists so workspace tests can parse hand-rolled JSON output back
//! (Chrome trace exports, bench reports) and assert well-formedness
//! without a registry dependency. Accepts exactly RFC 8259 JSON; all
//! numbers are parsed as `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys sorted (duplicates keep the last value).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000
                                    + (((hi as u32) - 0xD800) << 10)
                                    + ((lo as u32) - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".to_string()));
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a":[1,{"b":"x"},null],"c":{}}"#).unwrap();
        let arr = v.get("a").and_then(|x| x.as_array()).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(|x| x.as_str()), Some("x"));
        assert_eq!(arr[2], Value::Null);
        assert!(v.get("c").and_then(|x| x.as_object()).unwrap().is_empty());
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        assert_eq!(
            parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Value::Str("Aé😀".to_string())
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"\\ud800\"").is_err());
        assert!(parse("01").is_err());
    }
}
