//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's
//! property tests use — the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, [`ProptestConfig`],
//! [`TestCaseError`], integer/float range strategies, tuple
//! strategies, [`any`], and [`collection::vec`] — backed by a
//! seeded, fully deterministic generator instead of the real crate's
//! randomized runner with shrinking.
//!
//! Deliberate differences from the real crate:
//!
//! * Cases are derived deterministically from the test name, so runs
//!   are reproducible and CI never flakes on a fresh seed.
//! * No shrinking: the failing inputs are printed verbatim.
//! * `.proptest-regressions` files are not consulted.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }

    /// Alias matching the real crate's constructor name.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic case generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case number `case` of the property named
    /// `name`. Stable across runs and platforms.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Mirror of the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define deterministic property tests.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// Docs.
///     #[test]
///     fn prop(x in 0u32..10, v in prop::collection::vec(any::<u8>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!(
                            "[proptest] {} case {}/{} failed: {}\n  inputs: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges, vecs, tuples and `any` all stay in bounds.
        #[test]
        fn strategies_in_bounds(
            x in 3u32..17,
            y in -4i32..=4,
            v in prop::collection::vec(any::<u8>(), 1..5),
            t in (0usize..3, 10u64..20),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 5, "len {}", v.len());
            prop_assert!(t.0 < 3 && (10..20).contains(&t.1));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
