//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! [`Criterion`], [`Criterion::benchmark_group`], `sample_size`,
//! `throughput`, `bench_function`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a plain
//! wall-clock mean instead of criterion's statistical machinery.
//! Results print one line per benchmark:
//! `bench <group>/<name> ... <mean> ns/iter (<n> samples)`.

use std::time::Instant;

/// Expected per-iteration work, used only for the printed label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: u64,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Time `f`, called `samples` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = f();
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
            drop(out);
        }
    }
}

/// Top-level harness state (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&name.into(), 10, None, f);
        self
    }
}

/// A named group of benchmarks (subset of
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the per-iteration throughput (printed with results).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size as u64, self.throughput, f);
        self
    }

    /// End the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: u64, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        samples,
        total_nanos: 0,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        0
    } else {
        b.total_nanos / u128::from(b.iters)
    };
    let tp_str = match tp {
        Some(Throughput::Elements(n)) => format!(" [{n} elems/iter]"),
        Some(Throughput::Bytes(n)) => format!(" [{n} B/iter]"),
        None => String::new(),
    };
    println!(
        "bench {name} ... {mean} ns/iter ({} samples){tp_str}",
        b.iters
    );
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
