//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the `rand` API this workspace uses —
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and
//! [`Rng::gen_bool`] — on top of a splitmix64/xorshift generator.
//! Streams are deterministic per seed (the property every caller
//! relies on) but intentionally *not* bit-compatible with the real
//! crate; no test in this workspace pins the real crate's streams.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from `rng` uniformly over the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to
    /// `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xorshift64* over a
    /// splitmix64-expanded seed).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*; state is never zero (seeded via splitmix).
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 of the seed; avoids the zero fixed point.
            let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            SmallRng {
                state: z | 1, // never zero
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let sa: Vec<u32> = (0..16).map(|_| a.gen_range(0u32..1000)).collect();
        let sc: Vec<u32> = (0..16).map(|_| c.gen_range(0u32..1000)).collect();
        assert_ne!(sa, sc, "different seeds diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&f));
        }
        // gen_bool extremes.
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
