//! # casa-workloads — synthetic benchmark programs
//!
//! The paper evaluates on Mediabench programs (adpcm, g721, mpeg)
//! compiled for ARM7T and traced with ARMulator. Neither the compiled
//! binaries nor the instruction traces are available, so this crate
//! builds **structural substitutes**: programs with the same code
//! sizes (≈1 kB, ≈4.7 kB, ≈19.5 kB), realistic function/loop-nest
//! shapes and hot-spot distributions, described declaratively as
//! [`spec::BenchmarkSpec`]s and compiled to [`casa_ir::Program`]s.
//!
//! Execution is produced by a deterministic walker ([`exec`]): loop
//! headers count trip counts, data-dependent branches draw from a
//! seeded RNG. The walker emits the dynamic basic-block sequence (the
//! stand-in for the ARMulator instruction trace) *and* the matching
//! [`casa_ir::Profile`] — consistent by construction, which the tests
//! verify via flow conservation.
//!
//! [`generator`] additionally provides a seeded random-program
//! generator used by the cross-crate property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod generator;
pub mod mediabench;
pub mod spec;

pub use exec::{BranchBehavior, WalkError, Walker};
pub use mediabench::{adpcm, epic, g721, mpeg};
pub use spec::{BenchmarkSpec, Element, FunctionSpec, Workload};

// Sweep workers prepare workloads concurrently and share the results
// read-only; the specs and everything they compile to must stay Send
// + Sync (the walker's RNG state is owned, not shared).
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<BenchmarkSpec>();
    _assert_send_sync::<Workload>();
    _assert_send_sync::<BranchBehavior>();
};
