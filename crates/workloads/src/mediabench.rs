//! Synthetic stand-ins for the paper's Mediabench programs.
//!
//! Each function below builds a [`BenchmarkSpec`] whose *code size*
//! matches the figure the paper reports (adpcm ≈ 1 kB, g721 ≈
//! 4.7 kB, mpeg ≈ 19.5 kB), and whose loop-nest / call structure and
//! hot-spot distribution follow the real program's shape: adpcm is one
//! tight per-sample kernel, g721 is a cluster of mid-sized predictor
//! routines called from a sample loop, and mpeg2 decode is a wide
//! program with a few very hot kernels (VLD, dequant, IDCT, motion
//! compensation) amid a large body of lukewarm and cold code.
//!
//! Tests pin the code sizes to ±15% of the paper's figures.

use crate::spec::{BenchmarkSpec, Element, FunctionSpec};
use casa_ir::IsaMode;
use Element::{Call, Straight};

fn lp(trips: u64, body: Vec<Element>) -> Element {
    Element::loop_of(trips, body)
}

fn cond(p: f64, t: Vec<Element>, e: Vec<Element>) -> Element {
    Element::cond(p, t, e)
}

/// adpcm (rawcaudio): ≈1 kB of code with a compact hot kernel — the
/// per-sample encode loop and its step-size helper — while the
/// decoder (unused in an encode run) and the I/O code stay cold, as
/// in the real Mediabench run.
pub fn adpcm() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "adpcm",
        IsaMode::Arm,
        vec![
            // 0: main — sample loop; the decoder runs only for rare
            // spot checks, so the hot set is main + coder + stepsize.
            FunctionSpec::new(
                "main",
                vec![
                    Straight(10),
                    lp(1200, vec![Call(1), cond(0.02, vec![Call(2)], vec![])]),
                    Straight(8),
                ],
            )
            .with_data(2048),
            // 1: adpcm_coder — the hot quantization kernel.
            FunctionSpec::new(
                "adpcm_coder",
                vec![
                    Straight(10),
                    cond(0.5, vec![Straight(5)], vec![Straight(5)]),
                    Call(3),
                    Straight(8),
                ],
            )
            .with_data(64),
            // 2: adpcm_decoder — cold in an encode run.
            FunctionSpec::new(
                "adpcm_decoder",
                vec![
                    Straight(30),
                    cond(0.5, vec![Straight(13)], vec![Straight(13)]),
                    Call(3),
                    Straight(26),
                ],
            )
            .with_data(64),
            // 3: step-size table lookup + clamp (hot).
            FunctionSpec::new(
                "stepsize",
                vec![
                    Straight(8),
                    cond(0.06, vec![Straight(6)], vec![]),
                    Straight(6),
                ],
            )
            .with_data(356),
            // 4: file I/O / setup — cold bulk.
            FunctionSpec::new(
                "io_setup",
                vec![
                    Straight(26),
                    cond(0.5, vec![Straight(11)], vec![Straight(11)]),
                    Straight(22),
                ],
            ),
        ],
    )
}

/// g721 (CCITT G.721 ADPCM): ≈4.7 kB, a sample loop over a cluster of
/// predictor-update routines of middling size.
pub fn g721() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "g721",
        IsaMode::Arm,
        vec![
            // 0: main — per-sample encode loop; the decode path runs
            // only for rare spot checks, as in the Mediabench encode
            // run, so the hot set is the encoder cluster.
            FunctionSpec::new(
                "main",
                vec![
                    Straight(41),
                    lp(
                        700,
                        vec![Call(1), cond(0.03, vec![Call(2)], vec![Straight(2)])],
                    ),
                    Straight(29),
                ],
            ),
            // 1: g721_encoder.
            FunctionSpec::new(
                "g721_encoder",
                vec![
                    Straight(19),
                    Call(3), // predictor_zero
                    Call(4), // predictor_pole
                    Call(5), // step_size
                    Call(6), // quantize
                    Call(8), // update
                    Straight(15),
                ],
            ),
            // 2: g721_decoder.
            FunctionSpec::new(
                "g721_decoder",
                vec![
                    Straight(15),
                    Call(3),
                    Call(4),
                    Call(5),
                    Call(7), // reconstruct
                    Call(8),
                    Straight(12),
                ],
            ),
            // 3: predictor_zero — 6-tap FIR via fmult.
            FunctionSpec::new(
                "predictor_zero",
                vec![Straight(9), lp(6, vec![Call(9), Straight(6)]), Straight(8)],
            ),
            // 4: predictor_pole — 2 poles.
            FunctionSpec::new(
                "predictor_pole",
                vec![Straight(8), Call(9), Call(9), Straight(6)],
            ),
            // 5: step_size.
            FunctionSpec::new(
                "step_size",
                vec![
                    Straight(12),
                    cond(0.5, vec![Straight(9)], vec![Straight(19)]),
                    Straight(9),
                ],
            ),
            // 6: quantize — table search loop.
            FunctionSpec::new(
                "quantize",
                vec![
                    Straight(12),
                    lp(4, vec![Straight(8), cond(0.4, vec![Straight(3)], vec![])]),
                    Straight(9),
                ],
            ),
            // 7: reconstruct.
            FunctionSpec::new(
                "reconstruct",
                vec![
                    Straight(15),
                    cond(0.5, vec![Straight(8)], vec![Straight(8)]),
                    Straight(9),
                ],
            ),
            // 8: update — the big state-update routine.
            FunctionSpec::new(
                "update",
                vec![
                    Straight(30),
                    cond(0.3, vec![Straight(15)], vec![Straight(12)]),
                    lp(6, vec![Straight(12)]),
                    cond(0.5, vec![Straight(14)], vec![Straight(11)]),
                    cond(0.2, vec![Straight(19)], vec![Straight(6)]),
                    Straight(27),
                ],
            ),
            // 9: fmult — floating-point-ish multiply helper.
            FunctionSpec::new(
                "fmult",
                vec![
                    Straight(14),
                    cond(0.5, vec![Straight(6)], vec![Straight(6)]),
                    Straight(11),
                ],
            ),
            // 10: tandem_adjust — cold correctness path.
            FunctionSpec::new(
                "tandem_adjust",
                vec![
                    Straight(219),
                    cond(0.5, vec![Straight(131)], vec![Straight(131)]),
                    Straight(176),
                ],
            ),
        ],
    )
}

/// mpeg2 decode: ≈19.5 kB, a wide program whose runtime concentrates
/// in VLD, dequantize, IDCT and motion compensation kernels, with a
/// long tail of header-parsing and error-handling code that is
/// executed rarely or never.
pub fn mpeg() -> BenchmarkSpec {
    // Large cold straights model table-driven / error-path code that
    // contributes size but few fetches.
    BenchmarkSpec::new(
        "mpeg",
        IsaMode::Arm,
        vec![
            // 0: main — frame loop.
            FunctionSpec::new(
                "main",
                vec![
                    Straight(30),
                    Call(14), // sequence header parse (once per run)
                    lp(
                        3, // frames
                        vec![
                            Call(13), // picture header
                            Call(1),  // decode_picture
                            Call(12), // store_frame
                        ],
                    ),
                    Straight(20),
                ],
            ),
            // 1: decode_picture — macroblock loop.
            FunctionSpec::new(
                "decode_picture",
                vec![
                    Straight(24),
                    lp(
                        40, // macroblocks per frame
                        vec![
                            Call(2),  // vld
                            Call(3),  // dequant
                            Call(4),  // idct
                            Call(9),  // motion compensation
                            Call(10), // add_block
                            Call(11), // mb_writeback
                        ],
                    ),
                    Straight(16),
                ],
            ),
            // 2: vld — very branchy Huffman decode.
            FunctionSpec::new(
                "vld",
                vec![
                    Straight(14),
                    lp(
                        8, // coefficients per block
                        vec![
                            cond(
                                0.6,
                                vec![Straight(8)],
                                vec![cond(0.5, vec![Straight(11)], vec![Straight(19)])],
                            ),
                            cond(0.15, vec![Straight(11)], vec![Straight(2)]),
                        ],
                    ),
                    cond(0.05, vec![Straight(40)], vec![]), // escape codes
                    Straight(11),
                ],
            ),
            // 3: dequant — coefficient loop.
            FunctionSpec::new(
                "dequant",
                vec![
                    Straight(11),
                    lp(32, vec![Straight(8), cond(0.3, vec![Straight(4)], vec![])]),
                    Straight(8),
                ],
            ),
            // 4: idct — row passes then column passes.
            FunctionSpec::new(
                "idct",
                vec![
                    Straight(8),
                    lp(8, vec![Call(5)]),      // rows
                    lp(8, vec![Straight(46)]), // columns, inlined kernel
                    Straight(8),
                ],
            ),
            // 5: idct_row — shortcut test plus full butterfly.
            FunctionSpec::new(
                "idct_row",
                vec![
                    Straight(8),
                    cond(0.3, vec![Straight(5)], vec![Straight(52)]),
                    Straight(5),
                ],
            ),
            // 6: ed_error_recovery — cold.
            FunctionSpec::new(
                "error_recovery",
                vec![
                    Straight(60),
                    cond(0.5, vec![Straight(40)], vec![Straight(40)]),
                    Straight(50),
                ],
            ),
            // 7: option_tables — cold table-driven setup.
            FunctionSpec::new(
                "option_tables",
                vec![
                    Straight(120),
                    cond(0.5, vec![Straight(60)], vec![Straight(60)]),
                    Straight(100),
                ],
            ),
            // 8: cold utility bulk to reach 19.5 kB of code.
            FunctionSpec::new(
                "util_a",
                vec![
                    Straight(144),
                    cond(0.5, vec![Straight(81)], vec![Straight(81)]),
                    Straight(108),
                ],
            ),
            // 9: motion_comp — forward/backward/bidirectional forms.
            FunctionSpec::new(
                "motion_comp",
                vec![
                    Straight(18),
                    cond(
                        0.5,
                        vec![lp(8, vec![Straight(20)])], // field pred
                        vec![cond(
                            0.5,
                            vec![lp(8, vec![Straight(24)])],
                            vec![lp(8, vec![Straight(30)])],
                        )],
                    ),
                    Straight(14),
                ],
            ),
            // 10: add_block — saturation loop.
            FunctionSpec::new(
                "add_block",
                vec![
                    Straight(10),
                    lp(16, vec![Straight(11), cond(0.1, vec![Straight(3)], vec![])]),
                    Straight(8),
                ],
            ),
            // 11: mb_writeback — warm straight-line per-macroblock
            // bookkeeping. Sits right after the tight kernels, so its
            // image wraps the 2 kB cache and thrashes against the
            // macroblock loop's entry code. High miss-to-fetch ratio,
            // low fetch density: invisible to a fetch-count knapsack,
            // prime CASA material.
            FunctionSpec::new(
                "mb_writeback",
                vec![
                    Straight(46),
                    cond(0.5, vec![Straight(20)], vec![Straight(20)]),
                    Straight(32),
                ],
            ),
            // 12: store_frame — output conversion loop.
            FunctionSpec::new(
                "store_frame",
                vec![Straight(10), lp(24, vec![Straight(9)]), Straight(8)],
            ),
            // 13: picture_header — lukewarm parse code.
            FunctionSpec::new(
                "picture_header",
                vec![
                    Straight(40),
                    cond(0.4, vec![Straight(25)], vec![Straight(20)]),
                    cond(0.2, vec![Straight(30)], vec![]),
                    Straight(30),
                ],
            ),
            // 14: sequence_header — run-once parse + table init.
            FunctionSpec::new(
                "sequence_header",
                vec![
                    Straight(50),
                    lp(4, vec![Straight(16)]),
                    Call(7),
                    cond(0.3, vec![Call(6)], vec![]),
                    Straight(40),
                ],
            ),
            FunctionSpec::new(
                "util_b",
                vec![
                    Straight(135),
                    cond(0.5, vec![Straight(90)], vec![Straight(72)]),
                    Straight(126),
                ],
            ),
            FunctionSpec::new(
                "util_c",
                vec![
                    Straight(153),
                    cond(0.5, vec![Straight(76)], vec![Straight(86)]),
                    Straight(99),
                ],
            ),
            FunctionSpec::new(
                "util_d",
                vec![
                    Straight(126),
                    cond(0.5, vec![Straight(68)], vec![Straight(76)]),
                    Straight(117),
                ],
            ),
            FunctionSpec::new(
                "util_e",
                vec![
                    Straight(140),
                    cond(0.5, vec![Straight(86)], vec![Straight(68)]),
                    Straight(112),
                ],
            ),
            FunctionSpec::new(
                "util_f",
                vec![
                    Straight(130),
                    cond(0.5, vec![Straight(72)], vec![Straight(81)]),
                    Straight(122),
                ],
            ),
            FunctionSpec::new(
                "util_g",
                vec![
                    Straight(117),
                    cond(0.5, vec![Straight(63)], vec![Straight(68)]),
                    Straight(94),
                ],
            ),
            FunctionSpec::new(
                "util_h",
                vec![
                    Straight(112),
                    cond(0.5, vec![Straight(58)], vec![Straight(63)]),
                    Straight(90),
                ],
            ),
        ],
    )
}

/// epic (image compression, **beyond the paper's evaluation**): ≈8 kB
/// of code dominated by separable wavelet-filter passes — long
/// strided loops with strong burst locality — plus quantization and
/// run-length coding. Included as a fourth program for users; the
/// reproduced tables use only the paper's three.
pub fn epic() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "epic",
        IsaMode::Arm,
        vec![
            // 0: main — pyramid levels.
            FunctionSpec::new(
                "main",
                vec![
                    Straight(24),
                    lp(
                        4, // pyramid levels
                        vec![Call(1), Call(2), Call(3)],
                    ),
                    Call(4),
                    Straight(18),
                ],
            )
            .with_data(4096),
            // 1: filter_rows — horizontal wavelet pass.
            FunctionSpec::new(
                "filter_rows",
                vec![
                    Straight(12),
                    lp(32, vec![Straight(26), cond(0.1, vec![Straight(6)], vec![])]),
                    Straight(10),
                ],
            )
            .with_data(512),
            // 2: filter_cols — vertical wavelet pass (strided).
            FunctionSpec::new(
                "filter_cols",
                vec![Straight(12), lp(32, vec![Straight(30)]), Straight(10)],
            )
            .with_data(512),
            // 3: quantize_band — branchy quantization.
            FunctionSpec::new(
                "quantize_band",
                vec![
                    Straight(10),
                    lp(
                        24,
                        vec![
                            Straight(8),
                            cond(0.5, vec![Straight(5)], vec![Straight(4)]),
                            cond(0.2, vec![Straight(6)], vec![]),
                        ],
                    ),
                    Straight(8),
                ],
            )
            .with_data(128),
            // 4: run_length_encode — output pass.
            FunctionSpec::new(
                "run_length_encode",
                vec![
                    Straight(14),
                    lp(48, vec![cond(0.6, vec![Straight(4)], vec![Straight(9)])]),
                    Straight(12),
                ],
            )
            .with_data(256),
            // 5: bit_io — cold buffered output helpers.
            FunctionSpec::new(
                "bit_io",
                vec![
                    Straight(90),
                    cond(0.5, vec![Straight(45)], vec![Straight(45)]),
                    Straight(70),
                ],
            ),
            // 6: header + setup — cold.
            FunctionSpec::new(
                "setup",
                vec![
                    Straight(170),
                    cond(0.5, vec![Straight(90)], vec![Straight(80)]),
                    Straight(150),
                ],
            ),
            // 7: error paths — cold bulk.
            FunctionSpec::new(
                "error_paths",
                vec![
                    Straight(260),
                    cond(0.5, vec![Straight(130)], vec![Straight(120)]),
                    Straight(210),
                ],
            ),
        ],
    )
}

/// All three paper benchmarks, in Table 1 order.
pub fn all() -> Vec<BenchmarkSpec> {
    vec![adpcm(), g721(), mpeg()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Walker;

    fn code_size(spec: &BenchmarkSpec) -> u32 {
        spec.compile().program.code_size()
    }

    #[test]
    fn adpcm_size_matches_paper() {
        let s = code_size(&adpcm());
        // Paper: 1 kB. Accept ±15%.
        assert!((870..=1180).contains(&s), "adpcm code size {s} B");
    }

    #[test]
    fn g721_size_matches_paper() {
        let s = code_size(&g721());
        // Paper: 4.7 kB ≈ 4813 B. Accept ±15%.
        assert!((4090..=5530).contains(&s), "g721 code size {s} B");
    }

    #[test]
    fn mpeg_size_matches_paper() {
        let s = code_size(&mpeg());
        // Paper: 19.5 kB ≈ 19968 B. Accept ±15%.
        assert!((16970..=22960).contains(&s), "mpeg code size {s} B");
    }

    #[test]
    fn all_benchmarks_execute_and_conserve_flow() {
        for spec in all() {
            let w = spec.compile();
            let walker = Walker::new(&w.program, &w.behaviors);
            let (exec, profile) = walker
                .run(7)
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", w.program.name()));
            exec.check(&w.program)
                .unwrap_or_else(|e| panic!("{}: {e}", w.program.name()));
            profile
                .check_flow(&w.program)
                .unwrap_or_else(|e| panic!("{}: {e}", w.program.name()));
            assert!(
                profile.total_fetches(&w.program) > 10_000,
                "{} too short: {} fetches",
                w.program.name(),
                profile.total_fetches(&w.program)
            );
        }
    }

    #[test]
    fn mpeg_has_hot_and_cold_code() {
        let w = mpeg().compile();
        let walker = Walker::new(&w.program, &w.behaviors);
        let (_, profile) = walker.run(3).unwrap();
        let executed: usize = w
            .program
            .blocks()
            .iter()
            .filter(|b| profile.block_count(b.id()) > 0)
            .count();
        let total = w.program.blocks().len();
        // Wide program: a sizeable fraction of blocks is cold.
        assert!(
            executed < total,
            "expected cold blocks: {executed}/{total} executed"
        );
        // And the hottest block dominates the coldest executed one.
        let max = w
            .program
            .blocks()
            .iter()
            .map(|b| profile.block_count(b.id()))
            .max()
            .unwrap();
        assert!(max > 1000, "hot spot expected, max count {max}");
    }

    #[test]
    fn epic_extra_benchmark_runs() {
        let spec = epic();
        let w = spec.compile();
        let size = w.program.code_size();
        assert!((6000..=10000).contains(&size), "epic code size {size} B");
        assert_eq!(w.data_objects.len(), 5);
        let walker = Walker::new(&w.program, &w.behaviors);
        let (exec, profile, data) = walker.run_with_data(&w, 7).unwrap();
        exec.check(&w.program).expect("legal");
        profile.check_flow(&w.program).expect("flow conserved");
        assert!(!data.is_empty());
        // epic is deliberately NOT part of the paper set.
        assert!(!all().iter().any(|s| s.name == "epic"));
    }

    #[test]
    fn benchmarks_have_distinct_names() {
        let names: Vec<String> = all().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["adpcm", "g721", "mpeg"]);
    }
}
