//! The execution walker: turns a compiled workload into a dynamic
//! basic-block sequence plus the matching profile.
//!
//! This substitutes for running the benchmark under ARMulator: the
//! walker interprets the CFG, counting loop trips deterministically
//! and drawing data-dependent branch outcomes from a seeded RNG, so a
//! given `(workload, seed)` pair always produces the identical
//! execution — which lets every allocator be evaluated on exactly the
//! same dynamic instruction stream.

use crate::spec::Workload;
use casa_ir::inst::InstKind;
use casa_ir::{BlockId, Profile, Program, Terminator};
use casa_mem::data::DataAccessKind;
use casa_mem::{DataAccess, DataTrace, ExecutionTrace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// How a `Branch` terminator behaves dynamically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BranchBehavior {
    /// Taken with probability `taken` on each evaluation.
    Prob {
        /// Probability the branch is taken.
        taken: f64,
    },
    /// Counted loop test: per entry into the loop the continue arm is
    /// chosen `trips` times, then the exit arm once.
    Loop {
        /// Iterations per loop entry.
        trips: u64,
        /// Whether the *taken* arm is the loop exit (as the spec
        /// compiler emits) or the continue edge.
        taken_is_exit: bool,
    },
}

/// A walk failed to terminate or encountered a broken CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalkError {
    /// `max_steps` block executions happened without reaching `Exit`.
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
    /// `Return` executed with an empty call stack.
    ReturnWithoutCall {
        /// The returning block.
        block: BlockId,
    },
}

impl fmt::Display for WalkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalkError::StepLimit { limit } => {
                write!(f, "execution did not exit within {limit} block steps")
            }
            WalkError::ReturnWithoutCall { block } => {
                write!(f, "block {block} returned with an empty call stack")
            }
        }
    }
}

impl Error for WalkError {}

/// Interprets a program's CFG under a set of branch behaviours.
#[derive(Debug, Clone)]
pub struct Walker<'a> {
    program: &'a Program,
    behaviors: &'a HashMap<BlockId, BranchBehavior>,
    /// Hard cap on executed blocks (default 50 million).
    pub max_steps: u64,
}

impl<'a> Walker<'a> {
    /// A walker over `program` with the given branch behaviours.
    /// Branches without a behaviour entry default to 50/50.
    pub fn new(program: &'a Program, behaviors: &'a HashMap<BlockId, BranchBehavior>) -> Self {
        Walker {
            program,
            behaviors,
            max_steps: 50_000_000,
        }
    }

    /// Run the program from its entry, returning the dynamic block
    /// sequence and the execution profile (consistent with each other
    /// by construction).
    ///
    /// # Errors
    ///
    /// [`WalkError::StepLimit`] if the program does not exit within
    /// `max_steps` blocks; [`WalkError::ReturnWithoutCall`] on a
    /// malformed call structure.
    pub fn run(&self, seed: u64) -> Result<(ExecutionTrace, Profile), WalkError> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut seq: Vec<BlockId> = Vec::new();
        let mut profile = Profile::new();
        let mut stack: Vec<BlockId> = Vec::new();
        let mut loop_counters: HashMap<BlockId, u64> = HashMap::new();

        let mut cur = self.program.function(self.program.entry()).entry();
        let mut steps: u64 = 0;
        loop {
            steps += 1;
            if steps > self.max_steps {
                return Err(WalkError::StepLimit {
                    limit: self.max_steps,
                });
            }
            seq.push(cur);
            profile.add_block(cur, 1);
            let term = self.program.block(cur).terminator();
            let next = match term {
                Terminator::FallThrough { next } | Terminator::Jump { target: next } => Some(next),
                Terminator::Branch { taken, fallthrough } => {
                    let take = match self.behaviors.get(&cur) {
                        Some(BranchBehavior::Prob { taken: p }) => rng.gen_bool(p.clamp(0.0, 1.0)),
                        Some(BranchBehavior::Loop {
                            trips,
                            taken_is_exit,
                        }) => {
                            let c = loop_counters.entry(cur).or_insert(0);
                            let exit_now = *c >= *trips;
                            *c = if exit_now { 0 } else { *c + 1 };
                            exit_now == *taken_is_exit
                        }
                        None => rng.gen_bool(0.5),
                    };
                    Some(if take { taken } else { fallthrough })
                }
                Terminator::Call { callee, return_to } => {
                    stack.push(return_to);
                    // The profile's edges are intra-procedural (they
                    // must satisfy flow conservation against the CFG's
                    // successor lists), so a call's edge goes to its
                    // return-to block, not into the callee.
                    profile.add_edge(cur, return_to, 1);
                    cur = self.program.function(callee).entry();
                    continue;
                }
                Terminator::Return => match stack.pop() {
                    Some(r) => {
                        // Return edges are implicit (the CFG gives
                        // Return no successors), so no edge is
                        // recorded.
                        cur = r;
                        continue;
                    }
                    None => return Err(WalkError::ReturnWithoutCall { block: cur }),
                },
                Terminator::Exit => None,
            };
            if let Some(n) = next {
                profile.add_edge(cur, n, 1);
                cur = n;
            } else {
                break;
            }
        }
        Ok((ExecutionTrace::new(seq), profile))
    }

    /// Like [`Self::run`], additionally producing the data-access
    /// stream of `workload`'s modeled data objects: every executed
    /// `Load`/`Store` instruction of a function with a data array
    /// touches the next word of that array (a sequential sweep that
    /// wraps — the access pattern of the paper's media kernels).
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    ///
    /// # Panics
    ///
    /// Panics if `workload` does not correspond to `self`'s program
    /// (mismatched function count).
    pub fn run_with_data(
        &self,
        workload: &Workload,
        seed: u64,
    ) -> Result<(ExecutionTrace, Profile, DataTrace), WalkError> {
        assert_eq!(
            workload.data_object_of.len(),
            self.program.functions().len(),
            "workload does not match the program"
        );
        let (exec, profile) = self.run(seed)?;
        let mut cursors = vec![0u32; workload.data_objects.len()];
        let mut accesses = Vec::new();
        let mut kinds = Vec::new();
        for &block in exec.blocks() {
            let f = self.program.block(block).function();
            let Some(obj) = workload.data_object_of[f.index()] else {
                continue;
            };
            let size = workload.data_objects[obj].size;
            for inst in self.program.block(block).insts() {
                let kind = match inst.kind() {
                    InstKind::Load => DataAccessKind::Load,
                    InstKind::Store => DataAccessKind::Store,
                    _ => continue,
                };
                accesses.push(DataAccess {
                    object: obj,
                    offset: cursors[obj],
                });
                kinds.push(kind);
                cursors[obj] = (cursors[obj] + 4) % size.max(4);
            }
        }
        Ok((exec, profile, DataTrace::with_kinds(accesses, kinds)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BenchmarkSpec, Element, FunctionSpec};
    use casa_ir::IsaMode;

    fn looped_workload(trips: u64) -> crate::spec::Workload {
        BenchmarkSpec::new(
            "w",
            IsaMode::Arm,
            vec![FunctionSpec::new(
                "main",
                vec![Element::loop_of(trips, vec![Element::Straight(3)])],
            )],
        )
        .compile()
    }

    #[test]
    fn loop_trip_count_exact() {
        let w = looped_workload(7);
        let walker = Walker::new(&w.program, &w.behaviors);
        let (exec, profile) = walker.run(1).unwrap();
        exec.check(&w.program).expect("legal execution");
        profile.check_flow(&w.program).expect("flow conserved");
        // Find the loop header: executed trips + 1 times.
        let header = w
            .program
            .blocks()
            .iter()
            .find(|b| matches!(b.terminator(), casa_ir::Terminator::Branch { .. }))
            .unwrap()
            .id();
        assert_eq!(profile.block_count(header), 8);
    }

    #[test]
    fn walk_is_deterministic_per_seed() {
        let w = BenchmarkSpec::new(
            "w",
            IsaMode::Arm,
            vec![FunctionSpec::new(
                "main",
                vec![Element::loop_of(
                    50,
                    vec![Element::cond(0.4, vec![Element::Straight(2)], vec![])],
                )],
            )],
        )
        .compile();
        let walker = Walker::new(&w.program, &w.behaviors);
        let (a, _) = walker.run(99).unwrap();
        let (b, _) = walker.run(99).unwrap();
        let (c, _) = walker.run(100).unwrap();
        assert_eq!(a.blocks(), b.blocks());
        assert_ne!(a.blocks(), c.blocks(), "different seed, different path");
    }

    #[test]
    fn calls_and_returns_balanced() {
        let w = BenchmarkSpec::new(
            "w",
            IsaMode::Arm,
            vec![
                FunctionSpec::new("main", vec![Element::loop_of(4, vec![Element::Call(1)])]),
                FunctionSpec::new("leaf", vec![Element::Straight(5)]),
            ],
        )
        .compile();
        let walker = Walker::new(&w.program, &w.behaviors);
        let (exec, profile) = walker.run(0).unwrap();
        exec.check(&w.program).expect("legal");
        profile.check_flow(&w.program).expect("flow conserved");
        // The leaf entry executes exactly 4 times.
        let leaf = w.program.functions()[1].entry();
        assert_eq!(profile.block_count(leaf), 4);
    }

    #[test]
    fn step_limit_reported() {
        let w = looped_workload(1_000_000);
        let mut walker = Walker::new(&w.program, &w.behaviors);
        walker.max_steps = 100;
        assert_eq!(
            walker.run(0).unwrap_err(),
            WalkError::StepLimit { limit: 100 }
        );
    }

    #[test]
    fn nested_loops_multiply() {
        let w = BenchmarkSpec::new(
            "w",
            IsaMode::Arm,
            vec![FunctionSpec::new(
                "main",
                vec![Element::loop_of(
                    3,
                    vec![Element::loop_of(5, vec![Element::Straight(1)])],
                )],
            )],
        )
        .compile();
        let walker = Walker::new(&w.program, &w.behaviors);
        let (_, profile) = walker.run(0).unwrap();
        profile.check_flow(&w.program).expect("flow conserved");
        // Inner header runs (5+1) per outer iteration * 3 outer = 18.
        let headers: Vec<_> = w
            .program
            .blocks()
            .iter()
            .filter(|b| matches!(b.terminator(), casa_ir::Terminator::Branch { .. }))
            .map(|b| b.id())
            .collect();
        assert_eq!(headers.len(), 2);
        let counts: Vec<u64> = headers.iter().map(|&h| profile.block_count(h)).collect();
        assert!(counts.contains(&4), "outer header 3+1: {counts:?}");
        assert!(counts.contains(&18), "inner header 3*(5+1): {counts:?}");
    }

    #[test]
    fn data_stream_sweeps_declared_arrays() {
        use crate::spec::FunctionSpec;
        let spec = BenchmarkSpec::new(
            "d",
            IsaMode::Arm,
            vec![
                FunctionSpec::new("main", vec![Element::loop_of(3, vec![Element::Call(1)])]),
                // 10 straight insts contain 2 loads and 1 store per
                // the deterministic mix.
                FunctionSpec::new("kernel", vec![Element::Straight(10)]).with_data(32),
            ],
        );
        let w = spec.compile();
        assert_eq!(w.data_objects.len(), 1);
        assert_eq!(w.data_objects[0].size, 32);
        let walker = Walker::new(&w.program, &w.behaviors);
        let (_, _, data) = walker.run_with_data(&w, 0).unwrap();
        // 3 calls × 3 memory insts each.
        assert_eq!(data.len(), 9);
        for a in data.accesses() {
            assert_eq!(a.object, 0);
            assert!(a.offset < 32);
        }
        // Sequential sweep wraps at the array size.
        let offsets: Vec<u32> = data.accesses().iter().map(|a| a.offset).collect();
        assert_eq!(offsets, vec![0, 4, 8, 12, 16, 20, 24, 28, 0]);
    }

    #[test]
    fn functions_without_data_emit_nothing() {
        let spec = BenchmarkSpec::new(
            "d",
            IsaMode::Arm,
            vec![FunctionSpec::new("main", vec![Element::Straight(20)])],
        );
        let w = spec.compile();
        let walker = Walker::new(&w.program, &w.behaviors);
        let (_, _, data) = walker.run_with_data(&w, 0).unwrap();
        assert!(data.is_empty());
    }

    #[test]
    fn error_display() {
        assert!(WalkError::StepLimit { limit: 9 }.to_string().contains('9'));
    }
}
