//! Declarative benchmark specifications.
//!
//! A benchmark is a list of functions; each function body is a list of
//! [`Element`]s (straight-line code, loops, conditionals, calls). The
//! spec compiles to a validated [`Program`] plus the branch behaviours
//! the execution walker needs. Synthetic Mediabench stand-ins are
//! written in this vocabulary (see [`crate::mediabench`]).

use crate::exec::BranchBehavior;
use casa_ir::inst::InstKind;
use casa_ir::{BlockId, FunctionId, IsaMode, Program, ProgramBuilder};
use std::collections::HashMap;

/// One structural element of a function body.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// `n` straight-line instructions (a deterministic ALU/load/store
    /// mix).
    Straight(usize),
    /// A counted loop: the body runs `trips` times per entry into the
    /// loop.
    Loop {
        /// Iterations per loop entry.
        trips: u64,
        /// Loop body.
        body: Vec<Element>,
    },
    /// A data-dependent two-way conditional.
    Cond {
        /// Probability of the then-arm, in `[0, 1]`.
        p_then: f64,
        /// Then-arm body.
        then_body: Vec<Element>,
        /// Else-arm body (may be empty).
        else_body: Vec<Element>,
    },
    /// A call to another function of the spec, by index.
    Call(usize),
}

impl Element {
    /// Shorthand for a counted loop.
    pub fn loop_of(trips: u64, body: Vec<Element>) -> Self {
        Element::Loop { trips, body }
    }

    /// Shorthand for a conditional.
    pub fn cond(p_then: f64, then_body: Vec<Element>, else_body: Vec<Element>) -> Self {
        Element::Cond {
            p_then,
            then_body,
            else_body,
        }
    }
}

/// One function of a benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSpec {
    /// Function name.
    pub name: String,
    /// Body elements.
    pub body: Vec<Element>,
    /// Size of the function's working data array in bytes (0 = the
    /// function touches no modeled data; its loads/stores hit
    /// registers, stack or immediate tables).
    pub data_bytes: u32,
}

impl FunctionSpec {
    /// A named function with the given body and no modeled data.
    pub fn new(name: impl Into<String>, body: Vec<Element>) -> Self {
        FunctionSpec {
            name: name.into(),
            body,
            data_bytes: 0,
        }
    }

    /// Attach a working data array of `bytes` to the function: its
    /// `Load`/`Store` instructions will sweep this array sequentially
    /// during execution.
    pub fn with_data(mut self, bytes: u32) -> Self {
        self.data_bytes = bytes;
        self
    }
}

/// A whole benchmark: functions (index 0 is `main`) plus a name.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name.
    pub name: String,
    /// ISA mode for instruction sizing.
    pub mode: IsaMode,
    /// Functions; index 0 is the entry.
    pub functions: Vec<FunctionSpec>,
}

/// A data object modeled for the data-side extension: one working
/// array per function that declared `data_bytes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataObjectSpec {
    /// Human-readable name (`"<function>.data"`).
    pub name: String,
    /// Array size in bytes.
    pub size: u32,
    /// Owning function.
    pub function: FunctionId,
}

/// A compiled benchmark: the program plus branch behaviours.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The compiled program.
    pub program: Program,
    /// Behaviour of every `Branch` terminator, keyed by block.
    pub behaviors: HashMap<BlockId, BranchBehavior>,
    /// Modeled data objects, one per function with `data_bytes > 0`.
    pub data_objects: Vec<DataObjectSpec>,
    /// `data_object_of[f]` — index into `data_objects` for function
    /// `f`, if it has one.
    pub data_object_of: Vec<Option<usize>>,
}

impl BenchmarkSpec {
    /// A named benchmark in the given ISA mode.
    pub fn new(name: impl Into<String>, mode: IsaMode, functions: Vec<FunctionSpec>) -> Self {
        BenchmarkSpec {
            name: name.into(),
            mode,
            functions,
        }
    }

    /// Compile the spec into a program and walker behaviours.
    ///
    /// # Panics
    ///
    /// Panics if a [`Element::Call`] references a function index out
    /// of range, a probability is outside `[0, 1]`, or the produced
    /// program fails validation (a builder bug, not a user error).
    pub fn compile(&self) -> Workload {
        let mut b = ProgramBuilder::new(self.mode);
        b.name(self.name.clone());
        let mut behaviors = HashMap::new();
        let fids: Vec<FunctionId> = self
            .functions
            .iter()
            .map(|f| b.function(f.name.clone()))
            .collect();
        for (idx, fspec) in self.functions.iter().enumerate() {
            let f = fids[idx];
            let entry = b.block(f);
            // Small prologue so no block is empty.
            b.push_n(entry, InstKind::Alu, 2);
            let last = build_elems(&mut b, f, &fids, entry, &fspec.body, &mut behaviors);
            b.push(last, InstKind::Alu);
            if idx == 0 {
                b.exit(last);
            } else {
                b.ret(last);
            }
        }
        let program = b.finish().expect("spec compiles to a valid program");
        let mut data_objects = Vec::new();
        let mut data_object_of = vec![None; self.functions.len()];
        for (idx, fspec) in self.functions.iter().enumerate() {
            if fspec.data_bytes > 0 {
                data_object_of[idx] = Some(data_objects.len());
                data_objects.push(DataObjectSpec {
                    name: format!("{}.data", fspec.name),
                    size: fspec.data_bytes,
                    function: fids[idx],
                });
            }
        }
        Workload {
            program,
            behaviors,
            data_objects,
            data_object_of,
        }
    }

    /// Scale every loop's trip count by `factor` (≥ 1). Used to grow
    /// execution length without changing code size.
    pub fn scale_trips(&mut self, factor: u64) {
        fn scale(elems: &mut [Element], factor: u64) {
            for e in elems {
                match e {
                    Element::Loop { trips, body } => {
                        *trips *= factor;
                        scale(body, factor);
                    }
                    Element::Cond {
                        then_body,
                        else_body,
                        ..
                    } => {
                        scale(then_body, factor);
                        scale(else_body, factor);
                    }
                    _ => {}
                }
            }
        }
        for f in &mut self.functions {
            scale(&mut f.body, factor);
        }
    }
}

/// Deterministic "realistic" instruction mix for straight-line code:
/// roughly 60% ALU, 20% load, 10% store, 10% multiply.
fn mix_kind(i: usize) -> InstKind {
    match i % 10 {
        0 | 1 | 2 | 3 | 5 | 6 => InstKind::Alu,
        4 | 7 => InstKind::Load,
        8 => InstKind::Store,
        _ => InstKind::Mul,
    }
}

/// Build `elems` starting in open block `cur`; returns the open block
/// the caller must terminate.
fn build_elems(
    b: &mut ProgramBuilder,
    f: FunctionId,
    fids: &[FunctionId],
    mut cur: BlockId,
    elems: &[Element],
    behaviors: &mut HashMap<BlockId, BranchBehavior>,
) -> BlockId {
    for e in elems {
        match e {
            Element::Straight(n) => {
                // Real compilers emit basic blocks of ~5–15
                // instructions; long straight runs are split into
                // fall-through chains so trace formation sees
                // realistic block granularity (the fall-through edges
                // merge back into one trace when the cap allows).
                const CHUNKS: [usize; 6] = [12, 9, 14, 11, 8, 13];
                let mut emitted = 0;
                let mut chunk_idx = cur.index();
                let mut room = CHUNKS[chunk_idx % CHUNKS.len()];
                while emitted < *n {
                    if room == 0 {
                        let next = b.block(f);
                        b.fall_through(cur, next);
                        cur = next;
                        chunk_idx += 1;
                        room = CHUNKS[chunk_idx % CHUNKS.len()];
                    }
                    b.push(cur, mix_kind(emitted));
                    emitted += 1;
                    room -= 1;
                }
            }
            Element::Call(idx) => {
                assert!(*idx < fids.len(), "call target {idx} out of range");
                let ret = b.block(f);
                b.push(cur, InstKind::Alu); // argument setup
                b.call(cur, fids[*idx], ret);
                b.push(ret, InstKind::Alu); // result use
                cur = ret;
            }
            Element::Loop { trips, body } => {
                let header = b.block(f);
                let body_first = b.block(f);
                let exit = b.block(f);
                b.fall_through(cur, header);
                // Header: induction update + exit test. Taken = exit.
                b.push_n(header, InstKind::Alu, 2);
                b.branch(header, exit, body_first);
                behaviors.insert(
                    header,
                    BranchBehavior::Loop {
                        trips: *trips,
                        taken_is_exit: true,
                    },
                );
                b.push(body_first, InstKind::Alu);
                let body_last = build_elems(b, f, fids, body_first, body, behaviors);
                b.push(body_last, InstKind::Alu);
                b.jump(body_last, header);
                b.push(exit, InstKind::Alu);
                cur = exit;
            }
            Element::Cond {
                p_then,
                then_body,
                else_body,
            } => {
                assert!(
                    (0.0..=1.0).contains(p_then),
                    "probability {p_then} outside [0, 1]"
                );
                let then_first = b.block(f);
                let else_first = b.block(f);
                let join = b.block(f);
                b.push(cur, InstKind::Alu); // the compare
                b.branch(cur, then_first, else_first);
                behaviors.insert(cur, BranchBehavior::Prob { taken: *p_then });
                b.push(then_first, InstKind::Alu);
                let then_last = build_elems(b, f, fids, then_first, then_body, behaviors);
                b.jump(then_last, join);
                b.push(else_first, InstKind::Alu);
                let else_last = build_elems(b, f, fids, else_first, else_body, behaviors);
                b.fall_through(else_last, join);
                b.push(join, InstKind::Alu);
                cur = join;
            }
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_ir::loops::all_natural_loops;

    fn tiny_spec() -> BenchmarkSpec {
        BenchmarkSpec::new(
            "tiny",
            IsaMode::Arm,
            vec![
                FunctionSpec::new(
                    "main",
                    vec![
                        Element::Straight(4),
                        Element::loop_of(
                            10,
                            vec![
                                Element::Call(1),
                                Element::cond(0.3, vec![Element::Straight(2)], vec![]),
                            ],
                        ),
                    ],
                ),
                FunctionSpec::new("helper", vec![Element::Straight(6)]),
            ],
        )
    }

    #[test]
    fn compiles_to_valid_program() {
        let w = tiny_spec().compile();
        assert_eq!(w.program.functions().len(), 2);
        assert_eq!(w.program.name(), "tiny");
        assert!(w.program.code_size() > 0);
    }

    #[test]
    fn loop_structure_detected() {
        let w = tiny_spec().compile();
        let loops = all_natural_loops(&w.program);
        assert_eq!(loops.len(), 1, "one loop in main");
    }

    #[test]
    fn behaviors_cover_all_branches() {
        let w = tiny_spec().compile();
        for block in w.program.blocks() {
            if matches!(block.terminator(), casa_ir::Terminator::Branch { .. }) {
                assert!(
                    w.behaviors.contains_key(&block.id()),
                    "branch {} lacks behaviour",
                    block.id()
                );
            }
        }
    }

    #[test]
    fn scale_trips_multiplies_loops() {
        let mut s = tiny_spec();
        s.scale_trips(5);
        match &s.functions[0].body[1] {
            Element::Loop { trips, .. } => assert_eq!(*trips, 50),
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn straight_mix_is_realistic() {
        // 10 instructions contain ALU, loads, a store and a multiply.
        let kinds: Vec<InstKind> = (0..10).map(mix_kind).collect();
        assert!(kinds.contains(&InstKind::Alu));
        assert!(kinds.contains(&InstKind::Load));
        assert!(kinds.contains(&InstKind::Store));
        assert!(kinds.contains(&InstKind::Mul));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_call_target_panics() {
        BenchmarkSpec::new(
            "bad",
            IsaMode::Arm,
            vec![FunctionSpec::new("main", vec![Element::Call(7)])],
        )
        .compile();
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_probability_panics() {
        BenchmarkSpec::new(
            "bad",
            IsaMode::Arm,
            vec![FunctionSpec::new(
                "main",
                vec![Element::cond(1.5, vec![], vec![])],
            )],
        )
        .compile();
    }
}
