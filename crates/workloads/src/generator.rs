//! Seeded random benchmark generator, used by cross-crate property
//! tests to exercise the whole pipeline on arbitrary program shapes.

use crate::spec::{BenchmarkSpec, Element, FunctionSpec};
use casa_ir::IsaMode;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bounds for the random generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Number of functions (≥ 1).
    pub max_functions: usize,
    /// Elements per body (top level and nested).
    pub max_elements: usize,
    /// Maximum loop/cond nesting depth.
    pub max_depth: usize,
    /// Maximum straight-line run length.
    pub max_straight: usize,
    /// Maximum loop trip count.
    pub max_trips: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            max_functions: 4,
            max_elements: 4,
            max_depth: 3,
            max_straight: 12,
            max_trips: 8,
        }
    }
}

/// Generate a random benchmark spec. The same `(seed, config)` pair
/// always yields the same spec.
///
/// Calls only target *later* functions, so call graphs are acyclic and
/// every walk terminates.
pub fn random_spec(seed: u64, config: &GeneratorConfig) -> BenchmarkSpec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_funcs = rng.gen_range(1..=config.max_functions.max(1));
    let mut functions = Vec::with_capacity(n_funcs);
    for i in 0..n_funcs {
        let body = gen_elems(&mut rng, config, config.max_depth, i + 1, n_funcs);
        functions.push(FunctionSpec::new(format!("f{i}"), body));
    }
    BenchmarkSpec::new(format!("random{seed}"), IsaMode::Arm, functions)
}

fn gen_elems(
    rng: &mut SmallRng,
    config: &GeneratorConfig,
    depth: usize,
    callee_from: usize,
    n_funcs: usize,
) -> Vec<Element> {
    let n = rng.gen_range(1..=config.max_elements.max(1));
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let can_nest = depth > 0;
        let can_call = callee_from < n_funcs;
        let choice = rng.gen_range(0..100);
        let elem = if choice < 45 || (!can_nest && !can_call) {
            Element::Straight(rng.gen_range(1..=config.max_straight.max(1)))
        } else if choice < 65 && can_nest {
            Element::loop_of(
                rng.gen_range(1..=config.max_trips.max(1)),
                gen_elems(rng, config, depth - 1, callee_from, n_funcs),
            )
        } else if choice < 85 && can_nest {
            let p = rng.gen_range(0.0..=1.0);
            let then_body = gen_elems(rng, config, depth - 1, callee_from, n_funcs);
            let else_body = if rng.gen_bool(0.5) {
                vec![]
            } else {
                gen_elems(rng, config, depth - 1, callee_from, n_funcs)
            };
            Element::cond(p, then_body, else_body)
        } else if can_call {
            Element::Call(rng.gen_range(callee_from..n_funcs))
        } else {
            Element::Straight(rng.gen_range(1..=config.max_straight.max(1)))
        };
        out.push(elem);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Walker;

    #[test]
    fn deterministic_per_seed() {
        let c = GeneratorConfig::default();
        assert_eq!(random_spec(5, &c), random_spec(5, &c));
        assert_ne!(random_spec(5, &c), random_spec(6, &c));
    }

    #[test]
    fn generated_programs_compile_and_run() {
        let c = GeneratorConfig::default();
        for seed in 0..30 {
            let w = random_spec(seed, &c).compile();
            let walker = Walker::new(&w.program, &w.behaviors);
            let (exec, profile) = walker
                .run(seed)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            exec.check(&w.program)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            profile
                .check_flow(&w.program)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn call_graph_is_acyclic_so_walks_terminate() {
        // Deep config with many calls; termination is the assertion.
        let c = GeneratorConfig {
            max_functions: 6,
            max_elements: 5,
            max_depth: 4,
            max_straight: 6,
            max_trips: 4,
        };
        for seed in 100..110 {
            let w = random_spec(seed, &c).compile();
            let walker = Walker::new(&w.program, &w.behaviors);
            walker.run(seed).unwrap();
        }
    }
}
