//! Technology coefficients for the cacti-lite model.
//!
//! All energies are in **nanojoules** and all coefficients model an
//! on-chip SRAM in a 0.5 µm process at 3.3 V (the paper's technology
//! node). Each coefficient is an *effective* energy per switching
//! event — gate/wire capacitance folded together with `½CV²` — chosen
//! so that composite per-access energies land in the nanojoule range
//! typical of published 0.5 µm figures, with off-chip accesses two
//! orders of magnitude above on-chip hits.

use serde::{Deserialize, Serialize};

/// Effective per-event energy coefficients (nJ).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechParams {
    /// Row-decoder energy per address bit decoded.
    pub decoder_per_bit: f64,
    /// Wordline energy per cell attached to the driven row.
    pub wordline_per_cell: f64,
    /// Bitline energy per cell on a swung column pair (scales with the
    /// number of rows, i.e. the column height).
    pub bitline_per_cell: f64,
    /// Sense-amplifier energy per sensed column.
    pub senseamp_per_col: f64,
    /// Tag-comparator energy per compared tag bit per way.
    pub tag_compare_per_bit: f64,
    /// Output-driver energy per output bit.
    pub output_per_bit: f64,
    /// Loop-cache controller energy per range comparator per fetch
    /// (two 32-bit magnitude comparisons per preloadable object).
    pub lc_comparator: f64,
    /// Off-chip main-memory energy per 32-bit word transferred,
    /// including pad/bus drivers (evaluation-board scale).
    pub main_memory_word: f64,
    /// Fixed miss overhead (miss detection, refill control).
    pub miss_overhead: f64,
    /// Address-space width in bits (for tag widths).
    pub addr_bits: u32,
}

impl TechParams {
    /// The default 0.5 µm / 3.3 V coefficient set used by every
    /// experiment in this reproduction.
    pub fn um500() -> Self {
        TechParams {
            decoder_per_bit: 0.018,
            wordline_per_cell: 0.0011,
            bitline_per_cell: 0.000045,
            senseamp_per_col: 0.0026,
            tag_compare_per_bit: 0.004,
            output_per_bit: 0.0018,
            lc_comparator: 0.055,
            main_memory_word: 24.0,
            miss_overhead: 1.5,
            addr_bits: 32,
        }
    }
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams::um500()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let t = TechParams::default();
        assert!(t.decoder_per_bit > 0.0);
        assert!(t.wordline_per_cell > 0.0);
        assert!(t.bitline_per_cell > 0.0);
        assert!(t.senseamp_per_col > 0.0);
        assert!(t.tag_compare_per_bit > 0.0);
        assert!(t.output_per_bit > 0.0);
        assert!(t.lc_comparator > 0.0);
        assert!(t.miss_overhead > 0.0);
        assert_eq!(t.addr_bits, 32);
    }

    #[test]
    fn off_chip_dwarfs_on_chip_coefficients() {
        let t = TechParams::default();
        // The board-measured off-chip word access is orders of
        // magnitude above any single on-chip coefficient.
        assert!(t.main_memory_word > 100.0 * t.senseamp_per_col);
    }
}
