//! Aggregated per-event energy table for one memory configuration.

use crate::cacti_lite::{
    cache_access_energy, loop_cache_energy, main_memory_word_energy, spm_access_energy,
};
use crate::tech::TechParams;
use serde::{Deserialize, Serialize};

/// Energy (nJ) of each countable event in the instruction memory
/// system. This is the `E_*` vocabulary of the paper's §3.4 energy
/// model: [`Self::cache_hit`] is `E_Cache_hit`, [`Self::cache_miss`]
/// is `E_Cache_miss`, [`Self::spm_access`] is `E_SP_hit`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// I-cache hit.
    pub cache_hit: f64,
    /// I-cache miss: lookup + off-chip line fill + refill write +
    /// fixed overhead.
    pub cache_miss: f64,
    /// Scratchpad access (`E_SP_hit`).
    pub spm_access: f64,
    /// Loop-cache array access (excluding the controller).
    pub lc_access: f64,
    /// Loop-cache controller tax, paid on *every* fetch when a loop
    /// cache is present.
    pub lc_controller: f64,
    /// Off-chip main-memory access per 32-bit word.
    pub mm_word: f64,
    /// L2 cache access, when an L2 is modeled (0 otherwise).
    pub l2_access: f64,
}

impl EnergyTable {
    /// Build the table for a cache of `(cache_size, line_size, assoc)`
    /// with a scratchpad of `spm_size` bytes (pass 0 for none) and an
    /// optional loop cache `(capacity, max_objects)`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see
    /// [`crate::cacti_lite::cache_access_energy`]).
    pub fn build(
        cache_size: u32,
        line_size: u32,
        assoc: u32,
        spm_size: u32,
        loop_cache: Option<(u32, usize)>,
        tech: &TechParams,
    ) -> Self {
        let cache_hit = cache_access_energy(cache_size, line_size, assoc, tech);
        let mm_word = main_memory_word_energy(tech);
        let words_per_line = f64::from(line_size / 4);
        // A miss pays: the lookup that missed, the line fill from main
        // memory, writing the line into the array (≈ one more array
        // access), and fixed control overhead.
        let cache_miss = 2.0 * cache_hit + words_per_line * mm_word + tech.miss_overhead;
        let spm_access = if spm_size > 0 {
            spm_access_energy(spm_size, tech)
        } else {
            0.0
        };
        let (lc_access, lc_controller) = match loop_cache {
            Some((cap, slots)) => loop_cache_energy(cap, slots, tech),
            None => (0.0, 0.0),
        };
        EnergyTable {
            cache_hit,
            cache_miss,
            spm_access,
            lc_access,
            lc_controller,
            mm_word,
            l2_access: 0.0,
        }
    }

    /// Extend the table with an L2 of `(size, line, assoc)`. With an
    /// L2 present, [`Self::cache_miss`] is reinterpreted by the
    /// energy accounting as the *local* L1 miss cost (lookup + refill
    /// write, no fill source), and the fill source is charged per L2
    /// hit/miss separately.
    pub fn with_l2(mut self, size: u32, line_size: u32, assoc: u32, tech: &TechParams) -> Self {
        self.l2_access = crate::cacti_lite::cache_access_energy(size, line_size, assoc, tech);
        // Local L1 miss cost: the lookup that missed + the refill
        // write into the L1 array + control overhead.
        self.cache_miss = 2.0 * self.cache_hit + tech.miss_overhead;
        self
    }

    /// The per-miss energy premium `E_Cache_miss − E_Cache_hit` that
    /// drives the paper's eq. (5).
    pub fn miss_premium(&self) -> f64 {
        self.cache_miss - self.cache_hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_orderings_hold() {
        // mpeg configuration: 2 kB DM cache, 1 kB SPM.
        let t = EnergyTable::build(2048, 16, 1, 1024, None, &TechParams::default());
        assert!(t.spm_access < t.cache_hit, "E_SP < E_hit");
        assert!(t.cache_hit < t.cache_miss / 10.0, "E_hit << E_miss");
        assert!(t.miss_premium() > 0.0);
    }

    #[test]
    fn spm_smaller_than_cache_wins_more() {
        // A 128 B SPM next to a 2 kB cache is far cheaper per access.
        let t = EnergyTable::build(2048, 16, 1, 128, None, &TechParams::default());
        assert!(t.spm_access < 0.5 * t.cache_hit);
    }

    #[test]
    fn loop_cache_fields_populated() {
        let t = EnergyTable::build(2048, 16, 1, 0, Some((512, 4)), &TechParams::default());
        assert!(t.lc_access > 0.0);
        assert!(t.lc_controller > 0.0);
        assert_eq!(t.spm_access, 0.0);
        // LC array + controller still beats a cache hit for small LC.
        assert!(t.lc_access + t.lc_controller < t.cache_hit);
    }

    #[test]
    fn no_spm_means_zero_spm_energy() {
        let t = EnergyTable::build(1024, 16, 1, 0, None, &TechParams::default());
        assert_eq!(t.spm_access, 0.0);
        assert_eq!(t.lc_access, 0.0);
    }

    #[test]
    fn l2_extension_reinterprets_miss_cost() {
        let base = EnergyTable::build(128, 16, 1, 0, None, &TechParams::default());
        let with = base.with_l2(1024, 16, 1, &TechParams::default());
        assert!(with.l2_access > 0.0);
        // Local L1 miss cost excludes the off-chip fill.
        assert!(with.cache_miss < base.cache_miss);
        // The L2 is bigger than the L1, so costlier per access than an
        // L1 hit but far cheaper than going off-chip.
        assert!(with.l2_access > with.cache_hit);
        assert!(with.l2_access < with.mm_word);
    }

    #[test]
    fn miss_includes_linefill() {
        let t16 = EnergyTable::build(1024, 16, 1, 0, None, &TechParams::default());
        let t32 = EnergyTable::build(1024, 32, 1, 0, None, &TechParams::default());
        // Longer lines fill more words per miss.
        assert!(t32.cache_miss > t16.cache_miss);
    }
}
