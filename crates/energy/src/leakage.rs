//! Static (leakage) energy model.
//!
//! The paper's evaluation is dynamic-energy only (standard for
//! 0.5 µm, where leakage is negligible), but the trade-off the paper
//! opens — a scratchpad is smaller and simpler than a cache of equal
//! capacity — becomes even more favourable at smaller geometries where
//! leakage dominates. This module provides a per-byte leakage-power
//! model so experiments can report total energy
//! `E_dyn + P_leak · t_exec` with the execution time taken from the
//! simulator's cycle model.

use crate::tech::TechParams;
use serde::{Deserialize, Serialize};

/// Leakage-power coefficients, in nW per byte of on-chip SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageParams {
    /// Leakage of a cache byte (data + tags + comparators keep more
    /// transistors on standby).
    pub cache_nw_per_byte: f64,
    /// Leakage of a scratchpad byte (plain SRAM array).
    pub spm_nw_per_byte: f64,
    /// Core clock frequency in MHz (converts cycles to seconds).
    pub clock_mhz: f64,
}

impl LeakageParams {
    /// Defaults for the paper's node: leakage is tiny at 0.5 µm, but
    /// the *ratio* cache-vs-SPM is what the comparisons use.
    pub fn um500() -> Self {
        LeakageParams {
            cache_nw_per_byte: 0.035,
            spm_nw_per_byte: 0.020,
            clock_mhz: 50.0,
        }
    }
}

impl Default for LeakageParams {
    fn default() -> Self {
        LeakageParams::um500()
    }
}

/// Static energy (nJ) of a memory configuration over `cycles` of
/// execution: `P_leak · t` with `t = cycles / f_clk`.
///
/// `tag_overhead_bytes` approximates the cache's tag array as extra
/// leaking bytes; pass the value from [`cache_tag_bytes`].
pub fn static_energy(
    cache_bytes: u32,
    tag_overhead_bytes: u32,
    spm_bytes: u32,
    cycles: u64,
    params: &LeakageParams,
) -> f64 {
    let seconds = cycles as f64 / (params.clock_mhz * 1e6);
    let cache_w = f64::from(cache_bytes + tag_overhead_bytes) * params.cache_nw_per_byte;
    let spm_w = f64::from(spm_bytes) * params.spm_nw_per_byte;
    // nW · s = nJ.
    (cache_w + spm_w) * seconds
}

/// Bytes of tag + valid storage of a cache (the leakage overhead a
/// scratchpad avoids).
pub fn cache_tag_bytes(size: u32, line_size: u32, assoc: u32, tech: &TechParams) -> u32 {
    let sets = size / (line_size * assoc);
    let set_bits = 32 - (sets.max(2) - 1).leading_zeros();
    let offset_bits = 32 - (line_size - 1).leading_zeros();
    let tag_bits = tech.addr_bits - set_bits - offset_bits;
    // (tag + valid) per line, rounded up to bytes.
    (sets * assoc * (tag_bits + 1)).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spm_leaks_less_than_cache_per_byte() {
        let p = LeakageParams::default();
        assert!(p.spm_nw_per_byte < p.cache_nw_per_byte);
    }

    #[test]
    fn static_energy_scales_linearly_with_time() {
        let p = LeakageParams::default();
        let e1 = static_energy(2048, 100, 1024, 1_000_000, &p);
        let e2 = static_energy(2048, 100, 1024, 2_000_000, &p);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        assert!(e1 > 0.0);
    }

    #[test]
    fn tag_bytes_reasonable_for_paper_caches() {
        let tech = TechParams::default();
        // 2 kB DM, 16 B lines: 128 sets, tag 32-7-4 = 21 bits (+valid).
        let b = cache_tag_bytes(2048, 16, 1, &tech);
        assert_eq!(b, (128 * 22u32).div_ceil(8));
        // More associativity, more tags for the same capacity.
        assert!(cache_tag_bytes(2048, 16, 4, &tech) > 0);
    }

    #[test]
    fn equal_capacity_cache_leaks_more_than_spm() {
        let p = LeakageParams::default();
        let tech = TechParams::default();
        let cycles = 10_000_000;
        let cache_only = static_energy(1024, cache_tag_bytes(1024, 16, 1, &tech), 0, cycles, &p);
        let spm_only = static_energy(0, 0, 1024, cycles, &p);
        assert!(spm_only < cache_only);
    }
}
