//! Simplified CACTI-style per-access energy equations.
//!
//! Geometry: an SRAM of `size` bytes with row width `row_bytes` has
//! `rows = size / row_bytes` rows of `8·row_bytes` cells. A read
//! drives one wordline (energy ∝ cells per row), swings every column
//! pair (∝ rows per column × columns), senses the columns, and drives
//! the output. Caches add a tag array read plus `assoc` tag
//! comparisons; scratchpads have neither (Banakar's observation — the
//! source of the SPM's energy advantage).

use crate::tech::TechParams;

fn log2_ceil(v: u32) -> u32 {
    assert!(v > 0);
    32 - (v - 1).leading_zeros()
}

/// Energy of reading one row-organized SRAM array (data path only).
fn array_read_energy(rows: u32, cells_per_row: u32, out_bits: u32, tech: &TechParams) -> f64 {
    let decode = tech.decoder_per_bit * f64::from(log2_ceil(rows.max(2)));
    let wordline = tech.wordline_per_cell * f64::from(cells_per_row);
    let bitline = tech.bitline_per_cell * f64::from(rows) * f64::from(cells_per_row);
    let sense = tech.senseamp_per_col * f64::from(cells_per_row);
    let output = tech.output_per_bit * f64::from(out_bits);
    decode + wordline + bitline + sense + output
}

/// Per-access (hit) energy of a set-associative cache, in nJ.
///
/// All `assoc` ways of the indexed set are read in parallel (data +
/// tag), the tags are compared, and one 32-bit instruction is driven
/// out.
///
/// # Panics
///
/// Panics if the geometry is inconsistent (zero sizes, size not a
/// multiple of `line_size * assoc`).
pub fn cache_access_energy(size: u32, line_size: u32, assoc: u32, tech: &TechParams) -> f64 {
    assert!(size > 0 && line_size > 0 && assoc > 0);
    assert!(
        size.is_multiple_of(line_size * assoc),
        "size must be a multiple of line_size * assoc"
    );
    let sets = size / (line_size * assoc);
    let tag_bits = tech.addr_bits - log2_ceil(sets.max(2)) - log2_ceil(line_size);
    // Data array: one set row holds `assoc` lines.
    let data_cells_per_row = 8 * line_size * assoc;
    let data = array_read_energy(sets, data_cells_per_row, 32, tech);
    // Tag array: `assoc` tags + valid bits per row.
    let tag_cells_per_row = (tag_bits + 1) * assoc;
    let tag = array_read_energy(sets, tag_cells_per_row, tag_bits * assoc, tech);
    let compare = tech.tag_compare_per_bit * f64::from(tag_bits * assoc);
    data + tag + compare
}

/// Per-access energy of a scratchpad of `size` bytes, in nJ.
///
/// The scratchpad is organized like the data array of a cache with
/// 8-byte rows but has no tag array and no comparators.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn spm_access_energy(size: u32, tech: &TechParams) -> f64 {
    assert!(size > 0, "scratchpad size must be non-zero");
    let row_bytes = 8u32.min(size);
    let rows = (size / row_bytes).max(1);
    array_read_energy(rows, 8 * row_bytes, 32, tech)
}

/// Loop-cache energies, in nJ: `(array_access, controller_per_fetch)`.
///
/// The array is scratchpad-like; the controller performs two address
/// comparisons per preloadable object on **every** instruction fetch
/// (hit or not), which is why real designs cap `max_objects` at a
/// handful.
///
/// # Panics
///
/// Panics if `capacity == 0` or `max_objects == 0`.
pub fn loop_cache_energy(capacity: u32, max_objects: usize, tech: &TechParams) -> (f64, f64) {
    assert!(capacity > 0 && max_objects > 0);
    let array = spm_access_energy(capacity, tech);
    let controller = tech.lc_comparator * 2.0 * max_objects as f64;
    (array, controller)
}

/// Off-chip main-memory energy per 32-bit word, in nJ.
pub fn main_memory_word_energy(tech: &TechParams) -> f64 {
    tech.main_memory_word
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(128), 7);
        assert_eq!(log2_ceil(129), 8);
    }

    #[test]
    fn cache_energy_in_nanojoule_range() {
        // 2 kB direct-mapped, 16 B lines at 0.5 µm: O(1) nJ.
        let e = cache_access_energy(2048, 16, 1, &t());
        assert!(e > 0.3 && e < 10.0, "2kB cache hit = {e} nJ");
    }

    #[test]
    fn cache_energy_monotonic_in_size() {
        let sizes = [128u32, 256, 512, 1024, 2048, 4096];
        let es: Vec<f64> = sizes
            .iter()
            .map(|&s| cache_access_energy(s, 16, 1, &t()))
            .collect();
        for w in es.windows(2) {
            assert!(w[0] < w[1], "cache energy must grow with size: {es:?}");
        }
    }

    #[test]
    fn associativity_costs_energy() {
        let dm = cache_access_energy(2048, 16, 1, &t());
        let w2 = cache_access_energy(2048, 16, 2, &t());
        let w4 = cache_access_energy(2048, 16, 4, &t());
        assert!(dm < w2 && w2 < w4, "parallel way reads cost energy");
    }

    #[test]
    fn spm_beats_cache_of_equal_size() {
        for &s in &[128u32, 256, 512, 1024, 2048] {
            let spm = spm_access_energy(s, &t());
            let cache = cache_access_energy(s, 16, 1, &t());
            assert!(
                spm < cache,
                "SPM({s}) = {spm} must be below cache({s}) = {cache}"
            );
        }
    }

    #[test]
    fn spm_energy_monotonic() {
        let es: Vec<f64> = [64u32, 128, 256, 512, 1024]
            .iter()
            .map(|&s| spm_access_energy(s, &t()))
            .collect();
        for w in es.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn loop_cache_controller_grows_with_slots() {
        let (a4, c4) = loop_cache_energy(512, 4, &t());
        let (a8, c8) = loop_cache_energy(512, 8, &t());
        assert_eq!(a4, a8, "array energy independent of slots");
        assert!(c8 > c4, "more comparators, more energy");
    }

    #[test]
    fn loop_cache_array_matches_spm() {
        let (a, _) = loop_cache_energy(256, 4, &t());
        assert_eq!(a, spm_access_energy(256, &t()));
    }

    #[test]
    fn main_memory_dwarfs_cache_hit() {
        let hit = cache_access_energy(2048, 16, 1, &t());
        let mm = main_memory_word_energy(&t());
        assert!(
            mm > 5.0 * hit,
            "off-chip word ({mm}) >> on-chip hit ({hit})"
        );
    }

    #[test]
    fn tiny_spm_handled() {
        // 64-byte scratchpad (adpcm's smallest) must still work.
        let e = spm_access_energy(64, &t());
        assert!(e > 0.0 && e < 1.0);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_cache_geometry_panics() {
        cache_access_energy(100, 16, 1, &t());
    }
}
