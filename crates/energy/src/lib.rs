//! # casa-energy — per-access energy models
//!
//! The paper takes per-access energies from CACTI (caches, loop cache)
//! and from the Banakar/Steinke scratchpad model, and measures main
//! memory on an evaluation board. None of those numbers are published
//! in the paper, so this crate implements **cacti-lite**: a simplified
//! analytical RC model in the spirit of CACTI / Kamble & Ghosh for a
//! 0.5 µm process, with all coefficients in one documented place
//! ([`tech::TechParams`]).
//!
//! Absolute joules therefore differ from the authors' setup — every
//! reproduced figure/table reports *ratios* against a baseline, which
//! is also how the paper presents its figures. What the model does
//! guarantee (and what the results depend on):
//!
//! * `E_spm(size) < E_cache_hit(size)` — no tag path (Banakar),
//! * `E_cache_hit ≪ E_cache_miss` — a miss pays the lookup, the
//!   off-chip line fill, and the refill write,
//! * monotonic growth of per-access energy with capacity,
//! * a loop-cache controller cost charged on **every** fetch, growing
//!   with the number of comparator slots — the architectural tax the
//!   paper's §2 describes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cacti_lite;
pub mod leakage;
pub mod table;
pub mod tech;

pub use cacti_lite::{
    cache_access_energy, loop_cache_energy, main_memory_word_energy, spm_access_energy,
};
pub use leakage::LeakageParams;
pub use table::EnergyTable;
pub use tech::TechParams;
