//! Solver results and errors.

use crate::model::Var;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Terminal status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Proven optimal.
    Optimal,
    /// A feasible solution was found but optimality was not proven
    /// within the node limit.
    Feasible,
}

/// A solution vector with its objective value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
    status: Status,
    nodes: u64,
}

impl Solution {
    pub(crate) fn new(values: Vec<f64>, objective: f64, status: Status, nodes: u64) -> Self {
        Solution {
            values,
            objective,
            status,
            nodes,
        }
    }

    /// Value of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not from the solved model.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.index()]
    }

    /// Value of a binary variable `v` rounded to `bool`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not from the solved model.
    pub fn bool_value(&self, v: Var) -> bool {
        self.value(v) > 0.5
    }

    /// All values, indexed by [`Var::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective value (including the model's constant offset).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Terminal status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Branch-and-bound nodes explored.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }
}

/// Why a solve produced no solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The node limit was reached before any feasible integral point
    /// was found.
    NodeLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// The simplex iteration limit was exceeded (numerical trouble).
    IterationLimit,
    /// The wall-clock deadline expired before any feasible integral
    /// point was found.
    Deadline,
    /// The solve was cancelled through a
    /// [`CancelToken`](crate::engine::CancelToken) before any feasible
    /// integral point was found.
    Cancelled,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::NodeLimit { limit } => {
                write!(f, "no integral solution within {limit} nodes")
            }
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            SolveError::Deadline => {
                write!(f, "no integral solution before the wall-clock deadline")
            }
            SolveError::Cancelled => write!(f, "solve cancelled before an integral solution"),
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solution::new(vec![0.0, 1.0], 3.5, Status::Optimal, 7);
        assert_eq!(s.value(Var(1)), 1.0);
        assert!(s.bool_value(Var(1)));
        assert!(!s.bool_value(Var(0)));
        assert_eq!(s.objective(), 3.5);
        assert_eq!(s.status(), Status::Optimal);
        assert_eq!(s.nodes(), 7);
        assert_eq!(s.values(), &[0.0, 1.0]);
    }

    #[test]
    fn error_messages() {
        assert!(SolveError::Infeasible.to_string().contains("infeasible"));
        assert!(SolveError::NodeLimit { limit: 5 }.to_string().contains('5'));
    }
}
