//! # casa-ilp — 0/1 integer linear programming
//!
//! The paper solves the CASA allocation problem with a commercial ILP
//! solver (CPLEX). No such solver is available here — and the Rust
//! ecosystem's ILP story was one of the reproduction risks — so this
//! crate implements the required machinery from scratch:
//!
//! * a [`model`] builder for linear programs with continuous, integer
//!   and binary variables,
//! * a dense **two-phase primal simplex** ([`simplex`]) for LP
//!   relaxations, with a Bland's-rule fallback against cycling,
//! * **branch & bound** ([`branch_bound`]) over the integer variables,
//!   best-first by relaxation bound, and
//! * an exact **0/1 knapsack** dynamic program ([`knapsack`]) used by
//!   the Steinke baseline allocator,
//! * a **presolve** pass ([`presolve`]) — activity-based row
//!   elimination and bound tightening — and
//! * a **CPLEX LP-format writer** ([`lp_format`]) for cross-checking
//!   formulations against external solvers,
//! * an **anytime engine** ([`engine`]) — the single budgeted entry
//!   point ([`engine::SolveRequest`]) with wall-clock deadlines, node
//!   limits, cooperative cancellation, warm starts, and
//!   gap-reporting outcomes instead of hard failures.
//!
//! The solver is exact: property tests compare it against brute-force
//! enumeration on small random instances.
//!
//! # Example
//!
//! ```
//! use casa_ilp::model::{Model, Sense, ConstraintOp};
//! use casa_ilp::engine::{Budget, SolveRequest};
//!
//! // max x + 2y  s.t.  x + y <= 1, binaries.
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.binary("x");
//! let y = m.binary("y");
//! m.set_objective([(x, 1.0), (y, 2.0)]);
//! m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.0);
//! let out = SolveRequest::new(&m).budget(Budget::nodes(10_000)).solve()?;
//! assert!(out.is_optimal());
//! assert_eq!(out.solution.value(y).round() as i32, 1);
//! assert_eq!(out.solution.value(x).round() as i32, 0);
//! # Ok::<(), casa_ilp::solution::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_bound;
pub mod engine;
pub mod knapsack;
pub mod lp_format;
pub mod model;
pub mod presolve;
pub mod simplex;
pub mod solution;
pub mod tree;

pub use branch_bound::{BbStats, SolverOptions};
pub use engine::{
    Budget, BudgetKind, CancelToken, EngineStatus, RootLp, SearchLog, SearchRecorder, SolveOutcome,
    SolveRequest,
};
pub use knapsack::knapsack_01;
pub use lp_format::to_lp_format;
pub use model::{ConstraintOp, Model, Sense, Var};
pub use presolve::{presolve, solve_presolved, solve_presolved_obs};
pub use simplex::solve_lp_counted;
pub use solution::{Solution, SolveError, Status};
pub use tree::{
    parse_tree_log, parse_tree_value, tree_chrome_json, tree_log_json, TreeEvent, TreeEventKind,
    TreeLog, TreeRecorder, DEFAULT_TREE_CAPACITY, TREE_LOG_SCHEMA,
};
