//! Dense two-phase primal simplex for LP relaxations.
//!
//! The solver works on a bounded-variable model: every variable has a
//! finite lower bound and a (possibly infinite) upper bound. Variables
//! are shifted to `x' = x - lb >= 0`; finite upper bounds become extra
//! `x' <= ub - lb` rows; variables whose bounds pin them (`lb == ub`,
//! which is how branch & bound fixes binaries) are substituted out and
//! never enter the tableau, keeping node LPs small.
//!
//! Anti-cycling: Dantzig pricing switches to Bland's rule after a
//! fixed number of iterations, which guarantees termination.

use crate::model::{ConstraintOp, Model, Sense};
use crate::solution::SolveError;

/// Result of one LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// Optimal point found: variable values (in model order) and the
    /// objective value *including* the model's constant offset.
    Optimal {
        /// Values of all model variables.
        values: Vec<f64>,
        /// Objective at the optimum.
        objective: f64,
        /// Dual value (shadow price) per model constraint, in model
        /// orientation: `duals[k]` is `d(objective)/d(rhs_k)` at the
        /// final basis. Constraints whose variables were all fixed by
        /// the caller's bounds report `0.0`.
        duals: Vec<f64>,
        /// Reduced cost per model variable in model orientation:
        /// `c_i − Σ_k duals[k]·a_ki`, the classical reduced cost over
        /// the model's own constraints (variable-bound rows excluded).
        /// Zero for basic variables; the sign of a nonbasic variable's
        /// reduced cost says which way moving it changes the objective.
        reduced_costs: Vec<f64>,
    },
    /// No feasible point under the given bounds.
    Infeasible,
    /// Objective unbounded in the optimization direction.
    Unbounded,
}

/// Reduced costs `c − yᵀA` over the model's constraints, given model-
/// oriented duals `y`. Shared by the tableau path and the all-fixed
/// degenerate path so both report the same convention.
fn reduced_costs_from_duals(model: &Model, duals: &[f64]) -> Vec<f64> {
    let mut rc = vec![0.0f64; model.num_vars()];
    for &(v, c) in model.objective() {
        rc[v.index()] += c;
    }
    for (k, con) in model.constraints().iter().enumerate() {
        let y = duals[k];
        if y != 0.0 {
            for &(v, c) in &con.terms {
                rc[v.index()] -= y * c;
            }
        }
    }
    rc
}

const EPS: f64 = 1e-9;
/// Iterations of Dantzig pricing before switching to Bland's rule.
const BLAND_AFTER: u64 = 10_000;
/// Hard iteration cap per phase.
const MAX_ITERS: u64 = 200_000;

/// Solve the continuous relaxation of `model` with per-variable bounds
/// `bounds` overriding the model's own (used by branch & bound to fix
/// and tighten variables).
///
/// # Errors
///
/// Returns [`SolveError::IterationLimit`] if simplex fails to converge
/// within the iteration cap.
///
/// # Panics
///
/// Panics if `bounds.len() != model.num_vars()`, any lower bound is
/// infinite/NaN, or `lb > ub` for some variable.
pub fn solve_lp(model: &Model, bounds: &[(f64, f64)]) -> Result<LpResult, SolveError> {
    solve_lp_counted(model, bounds).map(|(r, _)| r)
}

/// Like [`solve_lp`], but also reports how many simplex pivots the
/// solve performed (both phases plus artificial drive-out pivots) —
/// the search-effort number the observability layer records.
///
/// # Errors
///
/// Returns [`SolveError::IterationLimit`] if simplex fails to converge
/// within the iteration cap.
///
/// # Panics
///
/// Panics under the same conditions as [`solve_lp`].
pub fn solve_lp_counted(
    model: &Model,
    bounds: &[(f64, f64)],
) -> Result<(LpResult, u64), SolveError> {
    let mut pivots = 0u64;
    let result = solve_lp_inner(model, bounds, &mut pivots)?;
    Ok((result, pivots))
}

fn solve_lp_inner(
    model: &Model,
    bounds: &[(f64, f64)],
    pivots: &mut u64,
) -> Result<LpResult, SolveError> {
    assert_eq!(bounds.len(), model.num_vars(), "one bound pair per var");
    for &(lb, ub) in bounds {
        assert!(lb.is_finite(), "lower bounds must be finite");
        assert!(!ub.is_nan() && lb <= ub + EPS, "invalid bounds");
    }

    // Partition variables: fixed (lb == ub) are substituted constants;
    // free ones get tableau columns.
    let n_model = model.num_vars();
    let mut col_of = vec![usize::MAX; n_model];
    let mut free_vars = Vec::new();
    for i in 0..n_model {
        let (lb, ub) = bounds[i];
        if ub - lb > EPS {
            col_of[i] = free_vars.len();
            free_vars.push(i);
        }
    }
    let n = free_vars.len();

    // Objective over shifted free variables (minimization form).
    let sign = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0f64; n];
    let mut obj_base = model.objective_constant();
    for &(v, c) in model.objective() {
        let i = v.index();
        obj_base += c * bounds[i].0;
        if col_of[i] != usize::MAX {
            cost[col_of[i]] += sign * c;
        }
    }

    // Build rows: model constraints + finite-ub rows, shifted, b >= 0.
    struct Row {
        coefs: Vec<f64>, // dense over free columns
        op: ConstraintOp,
        rhs: f64,
        /// Index of the model constraint this row came from (`None`
        /// for variable upper-bound rows) — the dual-extraction key.
        model_idx: Option<usize>,
        /// −1.0 when the b ≥ 0 normalization negated the row (which
        /// also negates its dual).
        flip: f64,
    }
    let n_con = model.constraints().len();
    let mut rows: Vec<Row> = Vec::new();
    for (k, con) in model.constraints().iter().enumerate() {
        let mut coefs = vec![0.0f64; n];
        let mut rhs = con.rhs;
        let mut any = false;
        for &(v, c) in &con.terms {
            let i = v.index();
            rhs -= c * bounds[i].0;
            if col_of[i] != usize::MAX {
                coefs[col_of[i]] += c;
                if c != 0.0 {
                    any = true;
                }
            }
        }
        if !any && coefs.iter().all(|&c| c.abs() <= EPS) {
            // All variables fixed: the row is a pure feasibility check.
            let ok = match con.op {
                ConstraintOp::Le => 0.0 <= rhs + 1e-7,
                ConstraintOp::Ge => 0.0 >= rhs - 1e-7,
                ConstraintOp::Eq => rhs.abs() <= 1e-7,
            };
            if !ok {
                return Ok(LpResult::Infeasible);
            }
            continue;
        }
        rows.push(Row {
            coefs,
            op: con.op,
            rhs,
            model_idx: Some(k),
            flip: 1.0,
        });
    }
    for (j, &i) in free_vars.iter().enumerate() {
        let (lb, ub) = bounds[i];
        if ub.is_finite() {
            let mut coefs = vec![0.0f64; n];
            coefs[j] = 1.0;
            rows.push(Row {
                coefs,
                op: ConstraintOp::Le,
                rhs: ub - lb,
                model_idx: None,
                flip: 1.0,
            });
        }
    }

    // Normalize to b >= 0.
    for row in &mut rows {
        if row.rhs < 0.0 {
            row.rhs = -row.rhs;
            for c in &mut row.coefs {
                *c = -*c;
            }
            row.op = match row.op {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
            row.flip = -1.0;
        }
    }

    let m = rows.len();
    if n == 0 {
        // Everything fixed and all rows checked above. No basis exists,
        // so every constraint reports a zero dual and reduced costs
        // degenerate to the raw objective coefficients.
        let values: Vec<f64> = (0..n_model).map(|i| bounds[i].0).collect();
        let objective = model.eval_objective(&values);
        let duals = vec![0.0f64; n_con];
        let reduced_costs = reduced_costs_from_duals(model, &duals);
        return Ok(LpResult::Optimal {
            values,
            objective,
            duals,
            reduced_costs,
        });
    }

    // Column layout: [structural n][slack/surplus][artificial][rhs].
    let n_slack = rows
        .iter()
        .filter(|r| matches!(r.op, ConstraintOp::Le | ConstraintOp::Ge))
        .count();
    let n_art = rows
        .iter()
        .filter(|r| matches!(r.op, ConstraintOp::Ge | ConstraintOp::Eq))
        .count();
    let total = n + n_slack + n_art;
    let mut t = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let art_start = n + n_slack;
    // Dual provenance: for each model constraint that made it into the
    // tableau, the column whose final phase-2 reduced cost encodes the
    // row's dual, the sign relating that reduced cost to the internal
    // dual (slack: y = −d, surplus: y = +d, artificial: y = −d), and
    // the normalization flip. Reading duals off *columns* keeps this
    // valid even when phase 1 deletes redundant rows.
    let mut dual_cols: Vec<(usize, usize, f64, f64)> = Vec::new();
    {
        let mut s = n;
        let mut a = art_start;
        for (i, row) in rows.iter().enumerate() {
            t[i][..n].copy_from_slice(&row.coefs);
            t[i][total] = row.rhs;
            let (col, col_sign) = match row.op {
                ConstraintOp::Le => {
                    t[i][s] = 1.0;
                    basis[i] = s;
                    s += 1;
                    (s - 1, -1.0)
                }
                ConstraintOp::Ge => {
                    t[i][s] = -1.0;
                    s += 1;
                    t[i][a] = 1.0;
                    basis[i] = a;
                    a += 1;
                    (s - 1, 1.0)
                }
                ConstraintOp::Eq => {
                    t[i][a] = 1.0;
                    basis[i] = a;
                    a += 1;
                    (a - 1, -1.0)
                }
            };
            if let Some(k) = row.model_idx {
                dual_cols.push((k, col, col_sign, row.flip));
            }
        }
    }

    // ---- Phase 1: minimize sum of artificials ----
    if n_art > 0 {
        let mut c1 = vec![0.0f64; total];
        for c in c1.iter_mut().skip(art_start) {
            *c = 1.0;
        }
        let (opt, feasible, _) = run_phase(&mut t, &mut basis, &c1, total, usize::MAX, pivots)?;
        let _ = feasible;
        if opt > 1e-6 {
            return Ok(LpResult::Infeasible);
        }
        // Drive remaining artificials out of the basis.
        let mut i = 0;
        while i < t.len() {
            if basis[i] >= art_start {
                // Pivot on any usable non-artificial column.
                if let Some(j) = (0..art_start).find(|&j| t[i][j].abs() > 1e-7) {
                    pivot(&mut t, &mut basis, i, j, total);
                    *pivots += 1;
                } else {
                    // Redundant row: drop it.
                    t.remove(i);
                    basis.remove(i);
                    continue;
                }
            }
            i += 1;
        }
    }

    // ---- Phase 2: original objective, artificials barred ----
    let mut c2 = vec![0.0f64; total];
    c2[..n].copy_from_slice(&cost);
    let bar_from = if n_art > 0 { art_start } else { usize::MAX };
    let (opt, bounded, d) = run_phase(&mut t, &mut basis, &c2, total, bar_from, pivots)?;
    if !bounded {
        return Ok(LpResult::Unbounded);
    }

    // Extract solution.
    let mut shifted = vec![0.0f64; n];
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            shifted[b] = t[i][total];
        }
    }
    let mut values = vec![0.0f64; n_model];
    for i in 0..n_model {
        values[i] = bounds[i].0;
    }
    for (j, &i) in free_vars.iter().enumerate() {
        values[i] += shifted[j].max(0.0);
    }
    // `opt` equals cost·shifted (minimization form over shifted vars);
    // fold the variable shift and the sense back in.
    let objective = obj_base + sign * opt;
    // Duals: the final phase-2 reduced cost of a row's slack / surplus
    // / artificial column is (up to sign) its internal minimization
    // dual; the sense sign and the b ≥ 0 flip map it back to
    // d(objective)/d(rhs) in model orientation. Constraints skipped as
    // all-fixed (and rows phase 1 proved redundant) keep dual 0.
    let mut duals = vec![0.0f64; n_con];
    for &(k, col, col_sign, flip) in &dual_cols {
        duals[k] = sign * flip * col_sign * d[col];
    }
    let reduced_costs = reduced_costs_from_duals(model, &duals);
    Ok(LpResult::Optimal {
        values,
        objective,
        duals,
        reduced_costs,
    })
}

/// Run simplex with cost vector `c` (columns `>= bar_from` may not
/// enter the basis). Returns `(objective, bounded, reduced_costs)`
/// where `reduced_costs` is the final reduced-cost row over all
/// columns — the raw material for dual extraction; when unbounded,
/// `objective` is meaningless and `bounded` is false.
fn run_phase(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    c: &[f64],
    total: usize,
    bar_from: usize,
    pivots: &mut u64,
) -> Result<(f64, bool, Vec<f64>), SolveError> {
    let m = t.len();
    // Reduced-cost row: z = c_B B^-1 A - c ; store d_j = cbar_j.
    let mut d = c.to_vec();
    let mut obj = 0.0f64;
    for i in 0..m {
        let cb = c[basis[i]];
        if cb != 0.0 {
            obj += cb * t[i][total];
            for j in 0..total {
                d[j] -= cb * t[i][j];
            }
        }
    }

    let mut iters: u64 = 0;
    loop {
        iters += 1;
        if iters > MAX_ITERS {
            return Err(SolveError::IterationLimit);
        }
        let bland = iters > BLAND_AFTER;
        // Entering column: d_j < -eps.
        let mut enter = None;
        if bland {
            for (j, &dj) in d.iter().enumerate() {
                if j >= bar_from {
                    break;
                }
                if dj < -EPS {
                    enter = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -EPS;
            for (j, &dj) in d.iter().enumerate() {
                if j >= bar_from {
                    break;
                }
                if dj < best {
                    best = dj;
                    enter = Some(j);
                }
            }
        }
        let Some(j) = enter else {
            return Ok((obj, true, d));
        };
        // Ratio test; ties broken by smallest basis index (Bland).
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = t[i][j];
            if a > EPS {
                let ratio = t[i][total] / a;
                let take = match leave {
                    None => true,
                    Some(l) => {
                        ratio < best_ratio - EPS
                            || (ratio < best_ratio + EPS && basis[i] < basis[l])
                    }
                };
                if take {
                    best_ratio = ratio.min(best_ratio);
                    leave = Some(i);
                }
            }
        }
        let Some(r) = leave else {
            return Ok((obj, false, d)); // unbounded
        };
        pivot_with_costs(t, basis, &mut d, &mut obj, r, j, total);
        *pivots += 1;
    }
}

fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], r: usize, j: usize, total: usize) {
    let piv = t[r][j];
    debug_assert!(piv.abs() > 1e-12, "zero pivot");
    let inv = 1.0 / piv;
    for v in t[r].iter_mut() {
        *v *= inv;
    }
    let pivot_row = t[r].clone();
    for (i, row) in t.iter_mut().enumerate() {
        if i != r {
            let f = row[j];
            if f != 0.0 {
                for (v, &p) in row.iter_mut().zip(&pivot_row).take(total + 1) {
                    *v -= f * p;
                }
            }
        }
    }
    basis[r] = j;
}

fn pivot_with_costs(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    d: &mut [f64],
    obj: &mut f64,
    r: usize,
    j: usize,
    total: usize,
) {
    pivot(t, basis, r, j, total);
    // After the pivot, the entering variable's basic value is
    // t[r][total] (= the ratio theta). The objective changes by
    // d_j · theta, and the reduced costs by d -= d_j · (pivot row).
    let f = d[j];
    if f != 0.0 {
        *obj += f * t[r][total];
        let row = &t[r];
        for (dv, &p) in d.iter_mut().zip(row.iter()).take(total) {
            *dv -= f * p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn bounds_of(m: &Model) -> Vec<(f64, f64)> {
        m.vars().map(|v| m.var_kind(v).bounds()).collect()
    }

    #[test]
    fn simple_lp_max() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y in [0, 10].
        // Optimum: x=4, y=0, obj=12.
        let mut m = Model::maximize();
        let x = m.continuous("x", 0.0, 10.0);
        let y = m.continuous("y", 0.0, 10.0);
        m.set_objective([(x, 3.0), (y, 2.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], ConstraintOp::Le, 6.0);
        match solve_lp(&m, &bounds_of(&m)).unwrap() {
            LpResult::Optimal {
                values, objective, ..
            } => {
                assert!((values[0] - 4.0).abs() < 1e-6, "x = {}", values[0]);
                assert!(values[1].abs() < 1e-6);
                assert!((objective - 12.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn equality_and_ge_rows() {
        // min x + y s.t. x + y = 3, x >= 1 -> obj 3.
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 3.0);
        m.add_constraint([(x, 1.0)], ConstraintOp::Ge, 1.0);
        match solve_lp(&m, &bounds_of(&m)).unwrap() {
            LpResult::Optimal {
                objective, values, ..
            } => {
                assert!((objective - 3.0).abs() < 1e-6);
                assert!(values[0] >= 1.0 - 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 1.0);
        m.set_objective([(x, 1.0)]);
        m.add_constraint([(x, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(solve_lp(&m, &bounds_of(&m)).unwrap(), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::maximize();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0)]);
        assert_eq!(solve_lp(&m, &bounds_of(&m)).unwrap(), LpResult::Unbounded);
    }

    #[test]
    fn fixed_variables_substituted() {
        // x fixed at 1 by bounds; min y s.t. y >= 2 - x -> y = 1.
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 1.0);
        let y = m.continuous("y", 0.0, 10.0);
        m.set_objective([(y, 1.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 2.0);
        let b = vec![(1.0, 1.0), (0.0, 10.0)];
        match solve_lp(&m, &b).unwrap() {
            LpResult::Optimal {
                values, objective, ..
            } => {
                assert_eq!(values[0], 1.0);
                assert!((values[1] - 1.0).abs() < 1e-6);
                assert!((objective - 1.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn all_fixed_feasibility_check() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 1.0);
        m.set_objective([(x, 1.0)]);
        m.add_constraint([(x, 1.0)], ConstraintOp::Ge, 2.0);
        // x fixed at 1: constraint 1 >= 2 fails.
        assert_eq!(solve_lp(&m, &[(1.0, 1.0)]).unwrap(), LpResult::Infeasible);
        // Relax rhs via fixing x=1 with feasible row.
        let mut m2 = Model::minimize();
        let x2 = m2.continuous("x", 0.0, 1.0);
        m2.set_objective([(x2, 3.0)]);
        m2.add_objective_constant(2.0);
        m2.add_constraint([(x2, 1.0)], ConstraintOp::Le, 2.0);
        match solve_lp(&m2, &[(1.0, 1.0)]).unwrap() {
            LpResult::Optimal { objective, .. } => assert!((objective - 5.0).abs() < 1e-9),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn objective_constant_included() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 5.0);
        m.set_objective([(x, 2.0)]);
        m.add_objective_constant(100.0);
        m.add_constraint([(x, 1.0)], ConstraintOp::Ge, 3.0);
        match solve_lp(&m, &bounds_of(&m)).unwrap() {
            LpResult::Optimal { objective, .. } => {
                assert!((objective - 106.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x, x in [2, 5] -> 2.
        let mut m = Model::minimize();
        let x = m.continuous("x", 2.0, 5.0);
        m.set_objective([(x, 1.0)]);
        match solve_lp(&m, &bounds_of(&m)).unwrap() {
            LpResult::Optimal {
                values, objective, ..
            } => {
                assert!((values[0] - 2.0).abs() < 1e-9);
                assert!((objective - 2.0).abs() < 1e-9);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn counted_pivots_track_search_effort() {
        let mut m = Model::maximize();
        let x = m.continuous("x", 0.0, 10.0);
        let y = m.continuous("y", 0.0, 10.0);
        m.set_objective([(x, 3.0), (y, 2.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], ConstraintOp::Le, 6.0);
        let (res, pivots) = solve_lp_counted(&m, &bounds_of(&m)).unwrap();
        assert!(matches!(res, LpResult::Optimal { .. }));
        assert!(pivots > 0, "a non-trivial LP needs at least one pivot");
        // A model with every variable fixed solves by substitution.
        let (_, pivots) = solve_lp_counted(&m, &[(1.0, 1.0), (1.0, 1.0)]).unwrap();
        assert_eq!(pivots, 0);
    }

    #[test]
    fn duals_and_reduced_costs_textbook_max() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6. Optimum x=4, y=0:
        // row 1 binding (dual 3 = d(obj)/d(rhs)), row 2 slack (dual 0).
        // rc_x = 3 - 3·1 = 0 (basic); rc_y = 2 - 3·1 = -1 (raising y
        // off its bound loses one unit of objective).
        let mut m = Model::maximize();
        let x = m.continuous("x", 0.0, 10.0);
        let y = m.continuous("y", 0.0, 10.0);
        m.set_objective([(x, 3.0), (y, 2.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], ConstraintOp::Le, 6.0);
        match solve_lp(&m, &bounds_of(&m)).unwrap() {
            LpResult::Optimal {
                duals,
                reduced_costs,
                ..
            } => {
                assert_eq!(duals.len(), 2);
                assert!((duals[0] - 3.0).abs() < 1e-9, "duals {duals:?}");
                assert!(duals[1].abs() < 1e-9, "duals {duals:?}");
                assert!(reduced_costs[0].abs() < 1e-9, "rc {reduced_costs:?}");
                assert!(
                    (reduced_costs[1] + 1.0).abs() < 1e-9,
                    "rc {reduced_costs:?}"
                );
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn duals_on_ge_and_eq_rows_min() {
        // min x + 2y s.t. x + y >= 3 -> x=3, dual 1 (each extra unit of
        // rhs costs one more unit of x). rc_y = 2 - 1 = 1.
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0), (y, 2.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        match solve_lp(&m, &bounds_of(&m)).unwrap() {
            LpResult::Optimal {
                duals,
                reduced_costs,
                ..
            } => {
                assert!((duals[0] - 1.0).abs() < 1e-9, "duals {duals:?}");
                assert!(reduced_costs[0].abs() < 1e-9);
                assert!((reduced_costs[1] - 1.0).abs() < 1e-9);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
        // Same with an equality row: duals survive phase 2 because the
        // artificial column's reduced cost keeps being updated.
        let mut m2 = Model::minimize();
        let x2 = m2.continuous("x", 0.0, f64::INFINITY);
        let y2 = m2.continuous("y", 0.0, f64::INFINITY);
        m2.set_objective([(x2, 1.0), (y2, 2.0)]);
        m2.add_constraint([(x2, 1.0), (y2, 1.0)], ConstraintOp::Eq, 3.0);
        match solve_lp(&m2, &bounds_of(&m2)).unwrap() {
            LpResult::Optimal { duals, .. } => {
                assert!((duals[0] - 1.0).abs() < 1e-9, "eq dual {duals:?}");
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn dual_sign_survives_rhs_flip_normalization() {
        // min x s.t. -x <= -2 (i.e. x >= 2 written with a negative rhs
        // that the b >= 0 normalization will negate). In model
        // orientation x = -rhs, so d(obj)/d(rhs) = -1.
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0)]);
        m.add_constraint([(x, -1.0)], ConstraintOp::Le, -2.0);
        match solve_lp(&m, &bounds_of(&m)).unwrap() {
            LpResult::Optimal { values, duals, .. } => {
                assert!((values[0] - 2.0).abs() < 1e-9);
                assert!((duals[0] + 1.0).abs() < 1e-9, "flipped dual {duals:?}");
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn knapsack_lp_dual_is_marginal_density() {
        // Fractional knapsack: max 6a + 5b + 4c, 2a + 2b + 2c <= 5,
        // x in [0,1]. Optimum a=b=1, c=0.5; the capacity dual is the
        // marginal item's value density 4/2 = 2, and rc_i = v_i - 2·w_i.
        let mut m = Model::maximize();
        let a = m.continuous("a", 0.0, 1.0);
        let b = m.continuous("b", 0.0, 1.0);
        let c = m.continuous("c", 0.0, 1.0);
        m.set_objective([(a, 6.0), (b, 5.0), (c, 4.0)]);
        m.add_constraint([(a, 2.0), (b, 2.0), (c, 2.0)], ConstraintOp::Le, 5.0);
        match solve_lp(&m, &bounds_of(&m)).unwrap() {
            LpResult::Optimal {
                values,
                duals,
                reduced_costs,
                ..
            } => {
                assert!((values[2] - 0.5).abs() < 1e-9, "marginal item fractional");
                assert!((duals[0] - 2.0).abs() < 1e-9, "capacity dual {duals:?}");
                assert!((reduced_costs[0] - 2.0).abs() < 1e-9);
                assert!((reduced_costs[1] - 1.0).abs() < 1e-9);
                assert!(reduced_costs[2].abs() < 1e-9, "marginal item rc 0");
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn all_fixed_model_reports_zero_duals_and_raw_cost_rc() {
        // Every variable fixed: the degenerate path reports zero duals
        // and reduced costs equal to the raw objective coefficients.
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 1.0);
        let y = m.continuous("y", 0.0, 1.0);
        m.set_objective([(x, 3.0), (y, -2.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Le, 5.0);
        match solve_lp(&m, &[(1.0, 1.0), (0.0, 0.0)]).unwrap() {
            LpResult::Optimal {
                duals,
                reduced_costs,
                ..
            } => {
                assert_eq!(duals, vec![0.0]);
                assert_eq!(reduced_costs, vec![3.0, -2.0]);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Klee-Minty-ish degenerate rows; just assert it terminates
        // with the right optimum.
        let mut m = Model::maximize();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        let z = m.continuous("z", 0.0, f64::INFINITY);
        m.set_objective([(x, 10.0), (y, 1.0), (z, 0.0)]);
        m.add_constraint([(x, 1.0)], ConstraintOp::Le, 1.0);
        m.add_constraint([(x, 20.0), (y, 1.0)], ConstraintOp::Le, 20.0);
        m.add_constraint([(x, 1.0), (z, 1.0)], ConstraintOp::Le, 1.0);
        m.add_constraint([(x, 1.0), (y, 0.0), (z, -1.0)], ConstraintOp::Le, 1.0);
        match solve_lp(&m, &bounds_of(&m)).unwrap() {
            LpResult::Optimal { objective, .. } => {
                assert!(objective >= 20.0 - 1e-6, "objective {objective}");
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
