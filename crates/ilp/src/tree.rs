//! Branch-and-bound search-tree telemetry.
//!
//! The paper's authors solved the CASA ILP with CPLEX and could only
//! report what the black box printed. Our search is our own, so we can
//! record the tree itself: a [`TreeRecorder`] captures one structured
//! [`TreeEvent`] per interesting search step — node open, branch,
//! prune-by-bound, prune-infeasible, incumbent — with stable node ids,
//! depth, the node's local bound and the global best bound at that
//! moment. Both B&B implementations in the workspace (the generic
//! best-first engine in this crate and the specialized DFS in
//! `casa-core`) emit through the same recorder.
//!
//! Determinism is inherited, not added: node ids are search-order
//! counters and bounds are model arithmetic, so for node-budgeted or
//! unlimited searches the captured log is byte-identical across
//! machines and worker counts. The log is ring-capped
//! (`CASA_TREE_CAP`, default [`DEFAULT_TREE_CAPACITY`]) with
//! drop-oldest eviction and an exact `dropped` counter, like the
//! flight recorder: a multi-million-node search must not turn a
//! diagnostic into an OOM, and for convergence analysis the *end* of
//! the search (where the gap closes) is the interesting part.
//!
//! Exports: [`tree_log_json`] (deterministic JSON, the `--tree-out` /
//! per-request capture format rendered by `diag tree`) and
//! [`tree_chrome_json`] (Chrome `trace_event` instants on a logical
//! timeline where `ts` is the node id, loadable in Perfetto next to a
//! wall-clock trace).

use casa_obs::{chrome_trace_json, jnum, EventKind, TraceEvent};
use std::sync::{Arc, Mutex, PoisonError};

/// Default event capacity when `CASA_TREE_CAP` is unset.
pub const DEFAULT_TREE_CAPACITY: usize = 4096;

/// Schema version of the tree-log JSON document.
pub const TREE_LOG_SCHEMA: u32 = 1;

/// What happened at one search-tree step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeEventKind {
    /// A node was taken from the frontier and its relaxation examined.
    Open,
    /// A node spawned children on a branching variable.
    Branch,
    /// A node was discarded because its bound cannot beat the
    /// incumbent (plus the solver's gap floor).
    PruneBound,
    /// A node's relaxation was infeasible.
    PruneInfeasible,
    /// A new incumbent (best integer solution so far) was adopted.
    Incumbent,
}

impl TreeEventKind {
    /// Stable lowercase tag used in the JSON export.
    pub fn as_str(self) -> &'static str {
        match self {
            TreeEventKind::Open => "open",
            TreeEventKind::Branch => "branch",
            TreeEventKind::PruneBound => "prune_bound",
            TreeEventKind::PruneInfeasible => "prune_infeasible",
            TreeEventKind::Incumbent => "incumbent",
        }
    }

    /// Inverse of [`TreeEventKind::as_str`]; unknown tags are `None`.
    pub fn from_tag(s: &str) -> Option<TreeEventKind> {
        Some(match s {
            "open" => TreeEventKind::Open,
            "branch" => TreeEventKind::Branch,
            "prune_bound" => TreeEventKind::PruneBound,
            "prune_infeasible" => TreeEventKind::PruneInfeasible,
            "incumbent" => TreeEventKind::Incumbent,
            _ => return None,
        })
    }
}

/// One recorded search-tree step.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeEvent {
    /// What happened.
    pub kind: TreeEventKind,
    /// Stable node id: the search-order node counter at the event
    /// (root = 0 in the best-first engine; the DFS numbers nodes in
    /// visit order).
    pub node: u64,
    /// Depth of the node (fixed variables / branching decisions above
    /// it).
    pub depth: u32,
    /// The node's local relaxation bound, in the model's objective
    /// orientation (NaN when no bound was computed yet).
    pub bound: f64,
    /// Objective of the best incumbent known when the event fired
    /// (NaN while no incumbent exists).
    pub best: f64,
    /// Branching variable index, for [`TreeEventKind::Branch`].
    pub var: Option<u32>,
}

/// A drained recorder: capacity bookkeeping plus the surviving events
/// in record order.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeLog {
    /// Ring capacity of the recorder this came from.
    pub cap: usize,
    /// Events evicted because the ring was full.
    pub dropped: u64,
    /// Total search nodes reported via [`TreeRecorder::set_nodes`].
    pub nodes: u64,
    /// Surviving events, oldest first.
    pub events: Vec<TreeEvent>,
}

#[derive(Debug, Default)]
struct TreeState {
    dropped: u64,
    nodes: u64,
    events: std::collections::VecDeque<TreeEvent>,
}

/// Capped recorder of [`TreeEvent`]s, cheap to pass around disabled
/// (same `Option<Arc<Mutex<..>>>` shape as the engine's
/// `SearchRecorder`): a disabled recorder makes every call a no-op so
/// instrumented search loops cost nothing when capture is off.
#[derive(Debug, Clone, Default)]
pub struct TreeRecorder {
    inner: Option<Arc<(usize, Mutex<TreeState>)>>,
}

impl TreeRecorder {
    /// A recorder on which every operation is a no-op.
    pub fn disabled() -> TreeRecorder {
        TreeRecorder { inner: None }
    }

    /// An enabled recorder holding at most `cap` events (clamped to
    /// ≥ 1).
    pub fn with_cap(cap: usize) -> TreeRecorder {
        TreeRecorder {
            inner: Some(Arc::new((cap.max(1), Mutex::new(TreeState::default())))),
        }
    }

    /// An enabled recorder sized from `CASA_TREE_CAP` (default
    /// [`DEFAULT_TREE_CAPACITY`]).
    pub fn from_env() -> TreeRecorder {
        let cap = std::env::var("CASA_TREE_CAP")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_TREE_CAPACITY);
        TreeRecorder::with_cap(cap)
    }

    /// Whether events are being captured.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Append one event, evicting the oldest when the ring is full.
    pub fn record(&self, ev: TreeEvent) {
        if let Some(inner) = &self.inner {
            let (cap, state) = (inner.0, &inner.1);
            let mut st = state.lock().unwrap_or_else(PoisonError::into_inner);
            if st.events.len() == cap {
                st.events.pop_front();
                st.dropped += 1;
            }
            st.events.push_back(ev);
        }
    }

    /// Record the search's final node count (stored alongside the
    /// events so a capped log still reports the true tree size).
    pub fn set_nodes(&self, nodes: u64) {
        if let Some(inner) = &self.inner {
            inner.1.lock().unwrap_or_else(PoisonError::into_inner).nodes = nodes;
        }
    }

    /// Drain the recorded log; `None` when disabled. The recorder is
    /// reset, so one recorder can capture several solves in sequence.
    pub fn take(&self) -> Option<TreeLog> {
        let inner = self.inner.as_ref()?;
        let mut st = inner.1.lock().unwrap_or_else(PoisonError::into_inner);
        let st = std::mem::take(&mut *st);
        Some(TreeLog {
            cap: inner.0,
            dropped: st.dropped,
            nodes: st.nodes,
            events: st.events.into_iter().collect(),
        })
    }
}

/// Serialize a tree log as a deterministic JSON document: fixed field
/// order, events oldest-first, non-finite bounds as `null`.
pub fn tree_log_json(log: &TreeLog) -> String {
    let mut s = format!(
        "{{\"casa_tree\":{TREE_LOG_SCHEMA},\"cap\":{},\"dropped\":{},\"nodes\":{},\"events\":[",
        log.cap, log.dropped, log.nodes
    );
    for (i, e) in log.events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"kind\":\"{}\",\"node\":{},\"depth\":{},\"bound\":{},\"best\":{},\"var\":{}}}",
            e.kind.as_str(),
            e.node,
            e.depth,
            jnum(e.bound),
            jnum(e.best),
            e.var.map_or_else(|| "null".to_string(), |v| v.to_string()),
        ));
    }
    s.push_str("]}");
    s
}

/// Parse a [`tree_log_json`] document back into a [`TreeLog`].
/// Events with unknown kinds are skipped (newer logs still render on
/// an older reader); a document without the `casa_tree` version field
/// is an error.
pub fn parse_tree_log(json: &str) -> Result<TreeLog, String> {
    let v = serde::json::parse(json).map_err(|e| format!("malformed tree JSON: {e:?}"))?;
    parse_tree_value(&v)
}

/// [`parse_tree_log`] over an already-parsed JSON value (so the sweep
/// document's per-cell trees parse without reserializing).
pub fn parse_tree_value(v: &serde::json::Value) -> Result<TreeLog, String> {
    if v.get("casa_tree").and_then(|x| x.as_f64()).is_none() {
        return Err("not a tree log (missing casa_tree version field)".to_string());
    }
    let num = |k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
    let events = v
        .get("events")
        .and_then(|e| e.as_array())
        .ok_or("events array missing")?
        .iter()
        .filter_map(|e| {
            Some(TreeEvent {
                kind: TreeEventKind::from_tag(e.get("kind")?.as_str()?)?,
                node: e.get("node")?.as_f64()? as u64,
                depth: e.get("depth")?.as_f64()? as u32,
                bound: e.get("bound").and_then(|x| x.as_f64()).unwrap_or(f64::NAN),
                best: e.get("best").and_then(|x| x.as_f64()).unwrap_or(f64::NAN),
                var: e.get("var").and_then(|x| x.as_f64()).map(|x| x as u32),
            })
        })
        .collect();
    Ok(TreeLog {
        cap: num("cap") as usize,
        dropped: num("dropped") as u64,
        nodes: num("nodes") as u64,
        events,
    })
}

/// Render a tree log as Chrome `trace_event` instants on a **logical**
/// timeline: `ts` is the node id (microsecond units are fiction here,
/// but the ordering is the search order, which is what matters for
/// convergence analysis), args carry depth/bound/best.
pub fn tree_chrome_json(log: &TreeLog) -> String {
    use casa_obs::ArgValue;
    let events: Vec<TraceEvent> = log
        .events
        .iter()
        .map(|e| {
            let mut args = vec![("depth".to_string(), ArgValue::U64(u64::from(e.depth)))];
            if e.bound.is_finite() {
                args.push(("bound".to_string(), ArgValue::F64(e.bound)));
            }
            if e.best.is_finite() {
                args.push(("best".to_string(), ArgValue::F64(e.best)));
            }
            if let Some(var) = e.var {
                args.push(("var".to_string(), ArgValue::U64(u64::from(var))));
            }
            TraceEvent {
                name: format!("bb.tree.{}", e.kind.as_str()),
                kind: EventKind::Instant,
                tid: 0,
                parent: None,
                ts_us: e.node,
                dur_us: None,
                args,
            }
        })
        .collect();
    chrome_trace_json(&events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TreeEventKind, node: u64, depth: u32, bound: f64, best: f64) -> TreeEvent {
        TreeEvent {
            kind,
            node,
            depth,
            bound,
            best,
            var: None,
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = TreeRecorder::disabled();
        assert!(!r.is_enabled());
        r.record(ev(TreeEventKind::Open, 0, 0, 1.0, f64::NAN));
        r.set_nodes(5);
        assert_eq!(r.take(), None);
    }

    #[test]
    fn ring_caps_with_exact_drop_accounting() {
        let r = TreeRecorder::with_cap(3);
        for i in 0..5 {
            r.record(ev(TreeEventKind::Open, i, i as u32, -(i as f64), f64::NAN));
        }
        r.set_nodes(5);
        let log = r.take().unwrap();
        assert_eq!(log.cap, 3);
        assert_eq!(log.dropped, 2);
        assert_eq!(log.nodes, 5);
        // The newest events survive (the convergence tail).
        let nodes: Vec<u64> = log.events.iter().map(|e| e.node).collect();
        assert_eq!(nodes, vec![2, 3, 4]);
        // Drained: the next take sees a fresh recorder.
        let empty = r.take().unwrap();
        assert_eq!(empty.events.len(), 0);
        assert_eq!(empty.dropped, 0);
    }

    #[test]
    fn cap_clamps_to_one() {
        let r = TreeRecorder::with_cap(0);
        r.record(ev(TreeEventKind::Open, 0, 0, 1.0, f64::NAN));
        r.record(ev(TreeEventKind::Incumbent, 1, 1, 1.0, 2.0));
        let log = r.take().unwrap();
        assert_eq!(log.cap, 1);
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].kind, TreeEventKind::Incumbent);
    }

    #[test]
    fn kind_tags_round_trip() {
        for k in [
            TreeEventKind::Open,
            TreeEventKind::Branch,
            TreeEventKind::PruneBound,
            TreeEventKind::PruneInfeasible,
            TreeEventKind::Incumbent,
        ] {
            assert_eq!(TreeEventKind::from_tag(k.as_str()), Some(k));
        }
        assert_eq!(TreeEventKind::from_tag("bogus"), None);
    }

    #[test]
    fn json_round_trips_and_is_deterministic() {
        let r = TreeRecorder::with_cap(8);
        r.record(ev(TreeEventKind::Open, 0, 0, 10.5, f64::NAN));
        r.record(TreeEvent {
            kind: TreeEventKind::Branch,
            node: 0,
            depth: 0,
            bound: 10.5,
            best: f64::NAN,
            var: Some(3),
        });
        r.record(ev(TreeEventKind::Incumbent, 1, 1, 9.0, 9.0));
        r.record(ev(TreeEventKind::PruneBound, 2, 1, 8.0, 9.0));
        r.set_nodes(3);
        let log = r.take().unwrap();
        let json = tree_log_json(&log);
        assert_eq!(json, tree_log_json(&log), "same log, same bytes");
        assert!(json.contains("\"best\":null"), "NaN best is null: {json}");
        assert!(json.contains("\"var\":3"));
        let back = parse_tree_log(&json).expect("parses back");
        // NaN != NaN, so compare through re-serialization.
        assert_eq!(tree_log_json(&back), json);
        assert!(parse_tree_log("{\"cap\":1}").is_err(), "version gate");
    }

    #[test]
    fn chrome_export_is_valid_trace_json_on_a_logical_timeline() {
        let r = TreeRecorder::with_cap(8);
        r.record(ev(TreeEventKind::Open, 7, 2, 5.0, 4.0));
        let log = r.take().unwrap();
        let json = tree_chrome_json(&log);
        let v = serde::json::parse(&json).expect("valid trace JSON");
        let evs = v.get("traceEvents").and_then(|x| x.as_array()).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(
            evs[0].get("name").and_then(|x| x.as_str()),
            Some("bb.tree.open")
        );
        assert_eq!(evs[0].get("ph").and_then(|x| x.as_str()), Some("i"));
        assert_eq!(
            evs[0].get("ts").and_then(|x| x.as_f64()),
            Some(7.0),
            "ts is the node id, not wall clock"
        );
    }
}
