//! Exact 0/1 knapsack by dynamic programming.
//!
//! Steinke et al. (DATE 2002) formulate scratchpad allocation as a 0/1
//! knapsack over profit-weighted memory objects; this module provides
//! the exact solver the baseline allocator uses. Complexity is
//! `O(n · capacity)`, which is trivial for realistic scratchpad sizes
//! (≤ a few kB).

/// Solution of a 0/1 knapsack instance.
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackSolution {
    /// Indices of the chosen items, ascending.
    pub chosen: Vec<usize>,
    /// Total profit of the chosen items.
    pub profit: u64,
    /// Total weight of the chosen items.
    pub weight: u32,
}

/// Maximize total profit subject to `Σ weight <= capacity`.
///
/// Items with zero weight and positive profit are always taken; items
/// with zero profit are never taken (so the chosen set is minimal
/// among optimal sets with respect to useless items).
///
/// # Panics
///
/// Panics if `weights.len() != profits.len()`.
pub fn knapsack_01(weights: &[u32], profits: &[u64], capacity: u32) -> KnapsackSolution {
    assert_eq!(
        weights.len(),
        profits.len(),
        "weights and profits must be parallel"
    );
    let n = weights.len();
    let cap = capacity as usize;
    // dp[w] = best profit using items seen so far at weight exactly <= w.
    let mut dp = vec![0u64; cap + 1];
    // take[i][w] bitset: whether item i is taken at dp state w.
    let mut take = vec![false; n * (cap + 1)];

    for i in 0..n {
        let wi = weights[i] as usize;
        let pi = profits[i];
        if pi == 0 {
            continue;
        }
        if wi == 0 {
            for w in 0..=cap {
                dp[w] += pi;
                take[i * (cap + 1) + w] = true;
            }
            continue;
        }
        if wi > cap {
            continue;
        }
        for w in (wi..=cap).rev() {
            let cand = dp[w - wi] + pi;
            if cand > dp[w] {
                dp[w] = cand;
                take[i * (cap + 1) + w] = true;
            }
        }
    }

    // Backtrack.
    let mut chosen = Vec::new();
    let mut w = cap;
    for i in (0..n).rev() {
        if take[i * (cap + 1) + w] {
            chosen.push(i);
            w -= (weights[i] as usize).min(w);
        }
    }
    chosen.reverse();
    let profit = chosen.iter().map(|&i| profits[i]).sum();
    let weight = chosen.iter().map(|&i| weights[i]).sum();
    debug_assert_eq!(profit, dp[cap]);
    KnapsackSolution {
        chosen,
        profit,
        weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_instance() {
        // weights 1,3,4,5; profits 1,4,5,7; cap 7 -> take {3,4} = 9.
        let s = knapsack_01(&[1, 3, 4, 5], &[1, 4, 5, 7], 7);
        assert_eq!(s.profit, 9);
        assert_eq!(s.chosen, vec![1, 2]);
        assert_eq!(s.weight, 7);
    }

    #[test]
    fn empty_instance() {
        let s = knapsack_01(&[], &[], 10);
        assert_eq!(s.profit, 0);
        assert!(s.chosen.is_empty());
    }

    #[test]
    fn zero_capacity_takes_only_weightless() {
        let s = knapsack_01(&[0, 2], &[5, 10], 0);
        assert_eq!(s.profit, 5);
        assert_eq!(s.chosen, vec![0]);
    }

    #[test]
    fn item_bigger_than_capacity_skipped() {
        let s = knapsack_01(&[100], &[1000], 10);
        assert_eq!(s.profit, 0);
        assert!(s.chosen.is_empty());
    }

    #[test]
    fn zero_profit_items_never_chosen() {
        let s = knapsack_01(&[1, 1], &[0, 3], 2);
        assert_eq!(s.chosen, vec![1]);
        assert_eq!(s.profit, 3);
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        // Deterministic pseudo-random items.
        let mut state: u64 = 42;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _case in 0..50 {
            let n = (next() % 8 + 1) as usize;
            let cap = next() % 30;
            let weights: Vec<u32> = (0..n).map(|_| next() % 12).collect();
            let profits: Vec<u64> = (0..n).map(|_| (next() % 50) as u64).collect();
            let dp = knapsack_01(&weights, &profits, cap);
            // Brute force.
            let mut best = 0u64;
            for mask in 0u32..(1 << n) {
                let w: u32 = (0..n)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| weights[i])
                    .sum();
                if w <= cap {
                    let p: u64 = (0..n)
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(|i| profits[i])
                        .sum();
                    best = best.max(p);
                }
            }
            assert_eq!(
                dp.profit, best,
                "weights {weights:?} profits {profits:?} cap {cap}"
            );
            assert!(dp.weight <= cap || dp.chosen.iter().all(|&i| weights[i] == 0));
        }
    }
}
