//! CPLEX LP-format export.
//!
//! The paper solved its formulation with CPLEX; this writer emits any
//! [`Model`] in the standard LP file format so a formulation built
//! here can be fed to CPLEX/Gurobi/HiGHS for cross-checking the
//! in-tree solver (or just inspected by eye).

use crate::model::{ConstraintOp, Model, Sense, VarKind};
use std::fmt::Write as _;

fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'x');
    }
    out
}

fn write_terms(out: &mut String, terms: &[(crate::model::Var, f64)], model: &Model) {
    let mut first = true;
    for &(v, c) in terms {
        if c == 0.0 {
            continue;
        }
        let name = sanitize(model.var_name(v));
        if first {
            let _ = write!(out, "{c} {name}");
            first = false;
        } else if c >= 0.0 {
            let _ = write!(out, " + {c} {name}");
        } else {
            let _ = write!(out, " - {} {name}", -c);
        }
    }
    if first {
        out.push('0');
    }
}

/// Render `model` in CPLEX LP format.
pub fn to_lp_format(model: &Model) -> String {
    let mut out = String::new();
    out.push_str(match model.sense() {
        Sense::Minimize => "Minimize\n obj: ",
        Sense::Maximize => "Maximize\n obj: ",
    });
    write_terms(&mut out, model.objective(), model);
    out.push_str("\nSubject To\n");
    for (i, con) in model.constraints().iter().enumerate() {
        let _ = write!(out, " c{i}: ");
        write_terms(&mut out, &con.terms, model);
        let op = match con.op {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
            ConstraintOp::Eq => "=",
        };
        let _ = writeln!(out, " {op} {}", con.rhs);
    }
    // Bounds for non-binary variables.
    let mut bounds = String::new();
    let mut binaries = String::new();
    let mut generals = String::new();
    for v in model.vars() {
        let name = sanitize(model.var_name(v));
        match model.var_kind(v) {
            VarKind::Binary => {
                let _ = writeln!(binaries, " {name}");
            }
            VarKind::Integer { lb, ub } => {
                let _ = writeln!(generals, " {name}");
                let _ = writeln!(bounds, " {lb} <= {name} <= {ub}");
            }
            VarKind::Continuous { lb, ub } => {
                if ub.is_finite() {
                    let _ = writeln!(bounds, " {lb} <= {name} <= {ub}");
                } else {
                    let _ = writeln!(bounds, " {name} >= {lb}");
                }
            }
        }
    }
    if !bounds.is_empty() {
        out.push_str("Bounds\n");
        out.push_str(&bounds);
    }
    if !generals.is_empty() {
        out.push_str("Generals\n");
        out.push_str(&generals);
    }
    if !binaries.is_empty() {
        out.push_str("Binaries\n");
        out.push_str(&binaries);
    }
    out.push_str("End\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn renders_all_sections() {
        let mut m = Model::maximize();
        let x = m.binary("x");
        let y = m.continuous("flow rate", 0.0, 5.5);
        let z = m.integer("z", -2, 7);
        m.set_objective([(x, 1.0), (y, 2.0), (z, -0.5)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint([(z, 2.0)], ConstraintOp::Eq, 2.0);
        let lp = to_lp_format(&m);
        assert!(lp.starts_with("Maximize"));
        assert!(lp.contains("c0: 1 x + 1 flow_rate <= 4"));
        assert!(lp.contains("c1: 2 z = 2"));
        assert!(lp.contains("Bounds"));
        assert!(lp.contains("0 <= flow_rate <= 5.5"));
        assert!(lp.contains("-2 <= z <= 7"));
        assert!(lp.contains("Binaries\n x"));
        assert!(lp.contains("Generals\n z"));
        assert!(lp.ends_with("End\n"));
    }

    #[test]
    fn negative_coefficients_use_minus() {
        let mut m = Model::minimize();
        let a = m.binary("a");
        let b = m.binary("b");
        m.set_objective([(a, 1.0), (b, -3.0)]);
        let lp = to_lp_format(&m);
        assert!(lp.contains("1 a - 3 b"), "{lp}");
    }

    #[test]
    fn empty_objective_renders_zero() {
        let m = Model::minimize();
        let lp = to_lp_format(&m);
        assert!(lp.contains("obj: 0"));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("l(x_1)"), "l_x_1_");
        assert_eq!(sanitize("3abc"), "x3abc");
        assert_eq!(sanitize(""), "x");
    }
}
