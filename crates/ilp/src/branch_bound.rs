//! Best-first branch & bound over the integral variables of a
//! [`Model`], using the simplex LP relaxation for bounds.
//!
//! The search itself lives in [`crate::engine`]; this module keeps the
//! solver tunables ([`SolverOptions`]) and the effort statistics
//! ([`BbStats`]). The pre-engine entry points (`solve` / `solve_obs` /
//! `solve_with_stats`) are gone — build a
//! [`SolveRequest`](crate::engine::SolveRequest) instead.

/// Tunables for the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Integrality tolerance: a relaxation value within `int_tol` of
    /// an integer counts as integral.
    pub int_tol: f64,
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: u64,
    /// Absolute optimality gap at which a node is pruned against the
    /// incumbent.
    pub gap_tol: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            int_tol: 1e-6,
            max_nodes: 2_000_000,
            gap_tol: 1e-9,
        }
    }
}

/// Search-effort statistics from one branch-and-bound run — the
/// numbers the observability layer exposes instead of the old single
/// hand-threaded `solver_nodes` integer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BbStats {
    /// Branch-and-bound nodes popped (LP relaxations attempted).
    pub nodes: u64,
    /// Times a new incumbent replaced the previous best.
    pub incumbent_updates: u64,
    /// Simplex pivots summed over every node LP.
    pub simplex_pivots: u64,
    /// Best proven optimistic bound in the model's own orientation
    /// (equals the objective when the search closed); `None` if no
    /// finite bound was established.
    pub best_bound: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SolveRequest;
    use crate::model::{ConstraintOp, Model};
    use crate::solution::{Solution, SolveError, Status};
    use casa_obs::Obs;

    /// Pre-engine `solve` semantics, pinned through the engine: the
    /// solution alone, budgetless, warm-start-less.
    fn solve(model: &Model, options: &SolverOptions) -> Result<Solution, SolveError> {
        SolveRequest::new(model)
            .options(*options)
            .solve()
            .map(|outcome| outcome.solution)
    }

    /// Pre-engine `solve_obs` semantics through the engine.
    fn solve_obs(
        model: &Model,
        options: &SolverOptions,
        obs: &Obs,
    ) -> Result<Solution, SolveError> {
        SolveRequest::new(model)
            .options(*options)
            .observe(obs)
            .solve()
            .map(|outcome| outcome.solution)
    }

    /// Pre-engine `solve_with_stats` semantics through the engine.
    fn solve_with_stats(
        model: &Model,
        options: &SolverOptions,
        obs: &Obs,
    ) -> (Result<Solution, SolveError>, BbStats) {
        let (result, stats) = SolveRequest::new(model)
            .options(*options)
            .observe(obs)
            .solve_with_stats();
        (result.map(|outcome| outcome.solution), stats)
    }

    #[test]
    fn binary_knapsack_exact() {
        // max 10a + 6b + 4c s.t. a+b+c <= 2 (binaries) -> 16.
        let mut m = Model::maximize();
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.set_objective([(a, 10.0), (b, 6.0), (c, 4.0)]);
        m.add_constraint([(a, 1.0), (b, 1.0), (c, 1.0)], ConstraintOp::Le, 2.0);
        let s = solve(&m, &SolverOptions::default()).unwrap();
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 16.0).abs() < 1e-6);
        assert!(s.bool_value(a) && s.bool_value(b) && !s.bool_value(c));
    }

    #[test]
    fn integer_variable_branching() {
        // max x + y s.t. 2x + y <= 7, x + 3y <= 9, integer x,y >= 0.
        // LP optimum fractional; integer optimum = 4 (e.g. x=3,y=1 or x=2,y=2).
        let mut m = Model::maximize();
        let x = m.integer("x", 0, 10);
        let y = m.integer("y", 0, 10);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_constraint([(x, 2.0), (y, 1.0)], ConstraintOp::Le, 7.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], ConstraintOp::Le, 9.0);
        let s = solve(&m, &SolverOptions::default()).unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-6, "obj {}", s.objective());
    }

    #[test]
    fn infeasible_integer_program() {
        // x + y = 1.5 with binaries: LP feasible, no integral point.
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 1.5);
        assert_eq!(
            solve(&m, &SolverOptions::default()).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn unbounded_reported() {
        let mut m = Model::maximize();
        let x = m.integer("x", 0, i64::MAX >> 8);
        m.set_objective([(x, 1.0)]);
        // Huge but finite domain: not unbounded, returns the ub.
        let s = solve(&m, &SolverOptions::default()).unwrap();
        assert!(s.objective() > 1e10);

        let mut m2 = Model::maximize();
        let y = m2.continuous("y", 0.0, f64::INFINITY);
        let z = m2.binary("z");
        m2.set_objective([(y, 1.0), (z, 1.0)]);
        assert_eq!(
            solve(&m2, &SolverOptions::default()).unwrap_err(),
            SolveError::Unbounded
        );
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 3x + y, x binary, y continuous in [0, 10],
        // s.t. x + y >= 1.5. Best: x=0, y=1.5 -> 1.5.
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.continuous("y", 0.0, 10.0);
        m.set_objective([(x, 3.0), (y, 1.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.5);
        let s = solve(&m, &SolverOptions::default()).unwrap();
        assert!((s.objective() - 1.5).abs() < 1e-6);
        assert!(!s.bool_value(x));
        assert!((s.value(y) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn node_limit_respected() {
        // A problem needing branching, with max_nodes = 1. The shim
        // surfaces the engine behavior: an incumbent in hand means
        // Ok(Feasible); none means Err(NodeLimit).
        let mut m = Model::maximize();
        let x = m.integer("x", 0, 10);
        let y = m.integer("y", 0, 10);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_constraint([(x, 2.0), (y, 1.0)], ConstraintOp::Le, 7.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], ConstraintOp::Le, 9.0);
        let opts = SolverOptions {
            max_nodes: 1,
            ..SolverOptions::default()
        };
        match solve(&m, &opts) {
            Err(SolveError::NodeLimit { limit: 1 }) => {}
            Ok(s) => assert_eq!(s.status(), Status::Feasible),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn incumbent_objective_matches_rounded_point() {
        // With a loose integrality tolerance the root LP solution
        // x = 0.95 already counts as integral; the incumbent must
        // report the objective of the *rounded* point x = 1, not the
        // raw LP objective 0.95.
        let mut m = Model::minimize();
        let x = m.integer("x", 0, 10);
        m.set_objective([(x, 1.0)]);
        m.add_constraint([(x, 1.0)], ConstraintOp::Ge, 0.95);
        let opts = SolverOptions {
            int_tol: 0.1,
            ..SolverOptions::default()
        };
        let s = solve(&m, &opts).unwrap();
        assert!((s.value(x) - 1.0).abs() < 1e-12);
        assert!(
            (s.objective() - 1.0).abs() < 1e-12,
            "objective {} should equal the rounded point's objective",
            s.objective()
        );
    }

    #[test]
    fn observed_solve_records_search_effort() {
        let mut m = Model::maximize();
        let x = m.integer("x", 0, 10);
        let y = m.integer("y", 0, 10);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_constraint([(x, 2.0), (y, 1.0)], ConstraintOp::Le, 7.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], ConstraintOp::Le, 9.0);
        let obs = Obs::enabled();
        let s = solve_obs(&m, &SolverOptions::default(), &obs).unwrap();
        let snap = obs.snapshot();
        let counter = |name: &str| match snap.get(name) {
            Some(casa_obs::MetricValue::Counter(v)) => *v,
            other => panic!("{name}: expected counter, got {other:?}"),
        };
        assert_eq!(counter("ilp.bb.nodes"), s.nodes());
        assert!(counter("ilp.bb.incumbents") >= 1);
        assert!(counter("ilp.simplex.pivots") > 0);
        match snap.get("ilp.bb.best_bound") {
            Some(casa_obs::MetricValue::Gauge(b)) => {
                assert!(
                    (b - s.objective()).abs() < 1e-9,
                    "closed search: bound = obj"
                )
            }
            other => panic!("expected gauge, got {other:?}"),
        }
        // One instant event per incumbent improvement.
        let incumbents = obs
            .events()
            .iter()
            .filter(|e| e.name == "bb.incumbent")
            .count() as u64;
        assert_eq!(incumbents, counter("ilp.bb.incumbents"));
    }

    #[test]
    fn stats_match_between_plain_and_observed_solve() {
        let mut m = Model::maximize();
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.set_objective([(a, 10.0), (b, 6.0), (c, 4.0)]);
        m.add_constraint([(a, 1.0), (b, 1.0), (c, 1.0)], ConstraintOp::Le, 2.0);
        let plain = solve(&m, &SolverOptions::default()).unwrap();
        let (observed, stats) = solve_with_stats(&m, &SolverOptions::default(), &Obs::enabled());
        let observed = observed.unwrap();
        assert_eq!(plain.values(), observed.values());
        assert_eq!(plain.nodes(), stats.nodes);
    }

    #[test]
    fn objective_constant_carried_through() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.set_objective([(x, -2.0)]);
        m.add_objective_constant(5.0);
        let s = solve(&m, &SolverOptions::default()).unwrap();
        // min -2x + 5 -> x=1, obj 3.
        assert!((s.objective() - 3.0).abs() < 1e-9);
        assert!(s.bool_value(x));
    }
}
