//! Linear/integer program construction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Raw column index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Relation of a constraint row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// Domain of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VarKind {
    /// Continuous within `[lb, ub]`.
    Continuous {
        /// Lower bound (may be 0).
        lb: f64,
        /// Upper bound (use `f64::INFINITY` for none).
        ub: f64,
    },
    /// Integer within `[lb, ub]`.
    Integer {
        /// Lower bound.
        lb: i64,
        /// Upper bound.
        ub: i64,
    },
    /// Binary (0 or 1).
    Binary,
}

impl VarKind {
    /// Continuous relaxation bounds of the variable.
    pub fn bounds(&self) -> (f64, f64) {
        match *self {
            VarKind::Continuous { lb, ub } => (lb, ub),
            VarKind::Integer { lb, ub } => (lb as f64, ub as f64),
            VarKind::Binary => (0.0, 1.0),
        }
    }

    /// Whether the variable must take an integral value.
    pub fn is_integral(&self) -> bool {
        matches!(self, VarKind::Integer { .. } | VarKind::Binary)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct VarData {
    pub(crate) name: String,
    pub(crate) kind: VarKind,
}

/// One constraint row: `Σ coef·var (op) rhs`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse row terms `(variable, coefficient)`.
    pub terms: Vec<(Var, f64)>,
    /// Relation.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A mixed 0/1-integer linear program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Model {
    sense: Sense,
    vars: Vec<VarData>,
    objective: Vec<(Var, f64)>,
    objective_constant: f64,
    constraints: Vec<Constraint>,
}

impl Model {
    /// An empty model optimizing in the given direction.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            objective: Vec::new(),
            objective_constant: 0.0,
            constraints: Vec::new(),
        }
    }

    /// Shorthand for `Model::new(Sense::Minimize)`.
    pub fn minimize() -> Self {
        Model::new(Sense::Minimize)
    }

    /// Shorthand for `Model::new(Sense::Maximize)`.
    pub fn maximize() -> Self {
        Model::new(Sense::Maximize)
    }

    /// The optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a binary variable.
    pub fn binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name, VarKind::Binary)
    }

    /// Add a continuous variable bounded to `[lb, ub]`.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or either bound is NaN.
    pub fn continuous(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> Var {
        assert!(!lb.is_nan() && !ub.is_nan(), "bounds must not be NaN");
        assert!(lb <= ub, "lower bound exceeds upper bound");
        self.add_var(name, VarKind::Continuous { lb, ub })
    }

    /// Add an integer variable bounded to `[lb, ub]`.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub`.
    pub fn integer(&mut self, name: impl Into<String>, lb: i64, ub: i64) -> Var {
        assert!(lb <= ub, "lower bound exceeds upper bound");
        self.add_var(name, VarKind::Integer { lb, ub })
    }

    fn add_var(&mut self, name: impl Into<String>, kind: VarKind) -> Var {
        let v = Var(self.vars.len() as u32);
        self.vars.push(VarData {
            name: name.into(),
            kind,
        });
        v
    }

    /// Set the objective to `Σ coef·var` (replaces any previous one).
    pub fn set_objective(&mut self, terms: impl IntoIterator<Item = (Var, f64)>) {
        self.objective = terms.into_iter().collect();
    }

    /// Add `c` to the objective's constant offset (reported in
    /// [`crate::Solution::objective`], irrelevant to the argmin).
    pub fn add_objective_constant(&mut self, c: f64) {
        self.objective_constant += c;
    }

    /// Append a constraint row.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is NaN or any coefficient is NaN, or a term
    /// references a variable not in this model.
    pub fn add_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (Var, f64)>,
        op: ConstraintOp,
        rhs: f64,
    ) {
        let terms: Vec<(Var, f64)> = terms.into_iter().collect();
        assert!(!rhs.is_nan(), "constraint rhs must not be NaN");
        for &(v, c) in &terms {
            assert!(!c.is_nan(), "constraint coefficient must not be NaN");
            assert!(v.index() < self.vars.len(), "variable {v} not in model");
        }
        self.constraints.push(Constraint { terms, op, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Objective terms.
    pub fn objective(&self) -> &[(Var, f64)] {
        &self.objective
    }

    /// Constant offset of the objective.
    pub fn objective_constant(&self) -> f64 {
        self.objective_constant
    }

    /// Kind of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not from this model.
    pub fn var_kind(&self, v: Var) -> VarKind {
        self.vars[v.index()].kind
    }

    /// Name of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not from this model.
    pub fn var_name(&self, v: Var) -> &str {
        &self.vars[v.index()].name
    }

    /// Iterate over all variables.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.vars.len() as u32).map(Var)
    }

    /// Evaluate the objective (including constant) at `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_vars()`.
    pub fn eval_objective(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.num_vars());
        self.objective_constant
            + self
                .objective
                .iter()
                .map(|&(v, c)| c * values[v.index()])
                .sum::<f64>()
    }

    /// Check whether `values` satisfies every constraint and variable
    /// bound to tolerance `tol` (integrality of integer variables is
    /// also required).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_vars()`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        assert_eq!(values.len(), self.num_vars());
        for (i, vd) in self.vars.iter().enumerate() {
            let (lb, ub) = vd.kind.bounds();
            let x = values[i];
            if x < lb - tol || x > ub + tol {
                return false;
            }
            if vd.kind.is_integral() && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for con in &self.constraints {
            let lhs: f64 = con.terms.iter().map(|&(v, c)| c * values[v.index()]).sum();
            let ok = match con.op {
                ConstraintOp::Le => lhs <= con.rhs + tol,
                ConstraintOp::Ge => lhs >= con.rhs - tol,
                ConstraintOp::Eq => (lhs - con.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.continuous("y", 0.0, 5.0);
        let z = m.integer("z", -2, 7);
        m.set_objective([(x, 1.0), (y, -1.0)]);
        m.add_objective_constant(10.0);
        m.add_constraint([(x, 1.0), (z, 2.0)], ConstraintOp::Le, 4.0);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.var_name(y), "y");
        assert!(m.var_kind(x).is_integral());
        assert!(!m.var_kind(y).is_integral());
        assert_eq!(m.var_kind(z).bounds(), (-2.0, 7.0));
        assert_eq!(m.eval_objective(&[1.0, 3.0, 0.0]), 10.0 + 1.0 - 3.0);
    }

    #[test]
    fn feasibility_checks_bounds_and_rows() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.continuous("y", 0.0, 5.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 2.0);
        assert!(m.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[1.0, 0.5], 1e-9)); // row violated
        assert!(!m.is_feasible(&[0.5, 2.0], 1e-9)); // x not integral
        assert!(!m.is_feasible(&[1.0, 6.0], 1e-9)); // y above ub
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds")]
    fn bad_bounds_panic() {
        let mut m = Model::minimize();
        m.continuous("y", 2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "not in model")]
    fn foreign_var_rejected() {
        let mut m1 = Model::minimize();
        let mut m2 = Model::minimize();
        let _x1 = m1.binary("x");
        let x_foreign = Var(5);
        m2.add_constraint([(x_foreign, 1.0)], ConstraintOp::Le, 1.0);
    }

    #[test]
    fn display_var() {
        assert_eq!(Var(3).to_string(), "x3");
    }
}
