//! Presolve: bound propagation, redundant-row elimination and
//! variable fixing.
//!
//! Classic MIP presolve reductions, applied before branch & bound:
//!
//! 1. **Activity bounds.** For each row, the minimum and maximum
//!    achievable left-hand side given current variable bounds. Rows
//!    that are always satisfied are dropped; rows that can never be
//!    satisfied prove infeasibility immediately.
//! 2. **Bound tightening.** From each `≤`/`≥` row, every variable's
//!    bound is tightened against the residual activity of the rest of
//!    the row; integral variables round inward. Iterated to a
//!    fixpoint (bounded passes).
//!
//! Variable indices are preserved — a solution of the presolved model
//! is a solution of the original — so [`solve_presolved`] is a
//! drop-in replacement for [`crate::solve`].

use crate::branch_bound::SolverOptions;
use crate::engine::SolveRequest;
use crate::model::{ConstraintOp, Model, VarKind};
use crate::solution::{Solution, SolveError};
use casa_obs::Obs;

/// Outcome of presolving.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The reduced model (same variable indices as the original).
    pub model: Model,
    /// Rows dropped as always-satisfied.
    pub rows_removed: usize,
    /// Variables whose bounds collapsed to a single value.
    pub vars_fixed: usize,
    /// Bound-tightening passes performed.
    pub passes: usize,
}

const MAX_PASSES: usize = 10;
const EPS: f64 = 1e-9;

/// Presolve `model`.
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] if a row is proven unsatisfiable
/// by activity bounds alone.
pub fn presolve(model: &Model) -> Result<Presolved, SolveError> {
    let n = model.num_vars();
    let mut lb = vec![0.0f64; n];
    let mut ub = vec![0.0f64; n];
    let mut integral = vec![false; n];
    for v in model.vars() {
        let (l, u) = model.var_kind(v).bounds();
        lb[v.index()] = l;
        ub[v.index()] = u;
        integral[v.index()] = model.var_kind(v).is_integral();
    }

    let mut live: Vec<bool> = vec![true; model.num_constraints()];
    let mut passes = 0;
    let mut changed = true;
    while changed && passes < MAX_PASSES {
        changed = false;
        passes += 1;
        for (ri, con) in model.constraints().iter().enumerate() {
            if !live[ri] {
                continue;
            }
            // Activity bounds of the full row.
            let mut min_act = 0.0f64;
            let mut max_act = 0.0f64;
            for &(v, c) in &con.terms {
                let (l, u) = (lb[v.index()], ub[v.index()]);
                if c >= 0.0 {
                    min_act += c * l;
                    max_act += c * u;
                } else {
                    min_act += c * u;
                    max_act += c * l;
                }
            }
            // Feasibility / redundancy by activity.
            match con.op {
                ConstraintOp::Le => {
                    if min_act > con.rhs + 1e-7 {
                        return Err(SolveError::Infeasible);
                    }
                    if max_act <= con.rhs + EPS {
                        live[ri] = false;
                        changed = true;
                        continue;
                    }
                }
                ConstraintOp::Ge => {
                    if max_act < con.rhs - 1e-7 {
                        return Err(SolveError::Infeasible);
                    }
                    if min_act >= con.rhs - EPS {
                        live[ri] = false;
                        changed = true;
                        continue;
                    }
                }
                ConstraintOp::Eq => {
                    if min_act > con.rhs + 1e-7 || max_act < con.rhs - 1e-7 {
                        return Err(SolveError::Infeasible);
                    }
                }
            }
            // Bound tightening per variable: residual activity of the
            // rest of the row bounds this variable's feasible range.
            for &(v, c) in &con.terms {
                if c.abs() < EPS {
                    continue;
                }
                let i = v.index();
                let (self_min, self_max) = if c >= 0.0 {
                    (c * lb[i], c * ub[i])
                } else {
                    (c * ub[i], c * lb[i])
                };
                let rest_min = {
                    // min_act includes this var's contribution.
                    min_act - self_min
                };
                let rest_max = max_act - self_max;
                // Upper-style restriction: c*x <= rhs - rest_min (Le/Eq).
                if matches!(con.op, ConstraintOp::Le | ConstraintOp::Eq) {
                    let limit = con.rhs - rest_min;
                    if c > 0.0 {
                        let mut new_ub = limit / c;
                        if integral[i] {
                            new_ub = (new_ub + EPS).floor();
                        }
                        if new_ub < ub[i] - EPS {
                            ub[i] = new_ub;
                            changed = true;
                        }
                    } else {
                        let mut new_lb = limit / c;
                        if integral[i] {
                            new_lb = (new_lb - EPS).ceil();
                        }
                        if new_lb > lb[i] + EPS {
                            lb[i] = new_lb;
                            changed = true;
                        }
                    }
                }
                // Lower-style restriction: c*x >= rhs - rest_max (Ge/Eq).
                if matches!(con.op, ConstraintOp::Ge | ConstraintOp::Eq) {
                    let limit = con.rhs - rest_max;
                    if c > 0.0 {
                        let mut new_lb = limit / c;
                        if integral[i] {
                            new_lb = (new_lb - EPS).ceil();
                        }
                        if new_lb > lb[i] + EPS {
                            lb[i] = new_lb;
                            changed = true;
                        }
                    } else {
                        let mut new_ub = limit / c;
                        if integral[i] {
                            new_ub = (new_ub + EPS).floor();
                        }
                        if new_ub < ub[i] - EPS {
                            ub[i] = new_ub;
                            changed = true;
                        }
                    }
                }
                if lb[i] > ub[i] + 1e-7 {
                    return Err(SolveError::Infeasible);
                }
            }
        }
    }

    // Rebuild the model with tightened bounds and surviving rows.
    let mut out = Model::new(model.sense());
    let mut vars_fixed = 0;
    for v in model.vars() {
        let i = v.index();
        let name = model.var_name(v).to_owned();
        if (ub[i] - lb[i]).abs() <= EPS {
            vars_fixed += 1;
        }
        match model.var_kind(v) {
            VarKind::Continuous { .. } => {
                out.continuous(name, lb[i], ub[i].max(lb[i]));
            }
            VarKind::Binary | VarKind::Integer { .. } => {
                out.integer(name, lb[i].round() as i64, ub[i].max(lb[i]).round() as i64);
            }
        }
    }
    out.set_objective(model.objective().iter().copied());
    out.add_objective_constant(model.objective_constant());
    let mut rows_removed = 0;
    for (ri, con) in model.constraints().iter().enumerate() {
        if live[ri] {
            out.add_constraint(con.terms.iter().copied(), con.op, con.rhs);
        } else {
            rows_removed += 1;
        }
    }
    Ok(Presolved {
        model: out,
        rows_removed,
        vars_fixed,
        passes,
    })
}

/// Presolve then solve; a drop-in for [`crate::solve`] (variable
/// indices are preserved).
///
/// # Errors
///
/// Same as [`crate::solve`].
pub fn solve_presolved(model: &Model, options: &SolverOptions) -> Result<Solution, SolveError> {
    let pre = presolve(model)?;
    SolveRequest::new(&pre.model)
        .options(*options)
        .solve()
        .map(|outcome| outcome.solution)
}

/// Like [`solve_presolved`], recording presolve reductions (counters
/// `ilp.presolve.rows_removed` / `vars_fixed` / `passes`) and solver
/// internals (see [`crate::engine::SolveRequest::observe`]) into
/// `obs`.
///
/// # Errors
///
/// Same as [`crate::solve`].
pub fn solve_presolved_obs(
    model: &Model,
    options: &SolverOptions,
    obs: &Obs,
) -> Result<Solution, SolveError> {
    let _span = obs.span("presolve");
    let pre = presolve(model)?;
    drop(_span);
    obs.add("ilp.presolve.rows_removed", pre.rows_removed as u64);
    obs.add("ilp.presolve.vars_fixed", pre.vars_fixed as u64);
    obs.add("ilp.presolve.passes", pre.passes as u64);
    SolveRequest::new(&pre.model)
        .options(*options)
        .observe(obs)
        .solve()
        .map(|outcome| outcome.solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model};

    fn solve(model: &Model, options: &SolverOptions) -> Result<Solution, SolveError> {
        SolveRequest::new(model)
            .options(*options)
            .solve()
            .map(|outcome| outcome.solution)
    }

    #[test]
    fn redundant_rows_dropped() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.set_objective([(x, 1.0)]);
        m.add_constraint([(x, 1.0)], ConstraintOp::Le, 5.0); // always true
        m.add_constraint([(x, 1.0)], ConstraintOp::Ge, -3.0); // always true
        let pre = presolve(&m).unwrap();
        assert_eq!(pre.rows_removed, 2);
        assert_eq!(pre.model.num_constraints(), 0);
    }

    #[test]
    fn singleton_row_fixes_binary() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.set_objective([(x, -1.0), (y, -1.0)]);
        m.add_constraint([(x, 1.0)], ConstraintOp::Ge, 1.0); // x = 1
        let pre = presolve(&m).unwrap();
        assert!(pre.vars_fixed >= 1);
        let s = solve_presolved(&m, &SolverOptions::default()).unwrap();
        assert!(s.bool_value(x));
        assert!(s.bool_value(y));
        assert!((s.objective() + 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected_without_search() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.set_objective([(x, 1.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        assert_eq!(presolve(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn implication_fixing_through_le_row() {
        // 5x + y <= 4 with binaries: x must be 0.
        let mut m = Model::maximize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.set_objective([(x, 10.0), (y, 1.0)]);
        m.add_constraint([(x, 5.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        let pre = presolve(&m).unwrap();
        assert!(pre.vars_fixed >= 1, "x should be fixed to 0");
        let s = solve_presolved(&m, &SolverOptions::default()).unwrap();
        assert!(!s.bool_value(x));
        assert!(s.bool_value(y));
    }

    #[test]
    fn presolve_preserves_optimum_on_random_instances() {
        let mut state: u64 = 1234;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        for case in 0..40 {
            let n = (next().unsigned_abs() as usize % 5) + 1;
            let mut m = Model::minimize();
            let vars: Vec<_> = (0..n).map(|i| m.binary(format!("b{i}"))).collect();
            m.set_objective(vars.iter().map(|&v| (v, (next() % 10) as f64)));
            let rows = next().unsigned_abs() as usize % 4;
            for _ in 0..rows {
                let op = match next().unsigned_abs() % 3 {
                    0 => ConstraintOp::Le,
                    1 => ConstraintOp::Ge,
                    _ => ConstraintOp::Eq,
                };
                let rhs = (next() % 6) as f64;
                m.add_constraint(vars.iter().map(|&v| (v, (next() % 5) as f64)), op, rhs);
            }
            let direct = solve(&m, &SolverOptions::default());
            let pre = solve_presolved(&m, &SolverOptions::default());
            match (direct, pre) {
                (Ok(a), Ok(b)) => {
                    assert!(
                        (a.objective() - b.objective()).abs() < 1e-6,
                        "case {case}: direct {} vs presolved {}",
                        a.objective(),
                        b.objective()
                    );
                }
                (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
                (a, b) => panic!("case {case}: direct {a:?} vs presolved {b:?}"),
            }
        }
    }

    #[test]
    fn presolve_shrinks_casa_style_formulations() {
        // Paper linearization rows L <= l_i become redundant once the
        // capacity row fixes enough variables; at minimum the pass
        // count and reductions are reported.
        let mut m = Model::minimize();
        let l0 = m.binary("l0");
        let l1 = m.binary("l1");
        let big_l = m.binary("L01");
        m.set_objective([(l0, 5.0), (l1, 3.0), (big_l, 10.0)]);
        m.add_constraint([(l0, 1.0), (big_l, -1.0)], ConstraintOp::Ge, 0.0);
        m.add_constraint([(l1, 1.0), (big_l, -1.0)], ConstraintOp::Ge, 0.0);
        m.add_constraint([(l0, 1.0), (l1, 1.0), (big_l, -2.0)], ConstraintOp::Le, 1.0);
        // Capacity forcing both on the scratchpad: l0 + l1 <= 0.
        m.add_constraint([(l0, 1.0), (l1, 1.0)], ConstraintOp::Le, 0.0);
        let pre = presolve(&m).unwrap();
        assert_eq!(pre.vars_fixed, 3, "l0 = l1 = 0 forces L01 = 0");
        let s = solve_presolved(&m, &SolverOptions::default()).unwrap();
        assert_eq!(s.objective(), 0.0);
    }
}
