//! Anytime solver engine: budgets, cancellation, warm starts, and
//! gap-reporting outcomes on top of the branch-and-bound search.
//!
//! The pre-engine entry points (a `solve` / `solve_obs` /
//! `solve_with_stats` triplet, since removed) answered "what is the
//! optimum?" and failed outright when the node limit ran out. This
//! module answers the production question instead: *"what is the best
//! allocation you can prove within this budget?"* A [`SolveRequest`]
//! bundles the model, tunables, an optional warm start, a [`Budget`],
//! and an optional [`SearchRecorder`]; [`SolveOutcome`]
//! carries the incumbent together with an [`EngineStatus`] — either
//! proven [`EngineStatus::Optimal`] or [`EngineStatus::Feasible`] with
//! the **absolute optimality gap** proven by the LP relaxation bound at
//! the moment the budget expired.
//!
//! Determinism contract: with a pure node budget the search is exact
//! computation — outcomes are byte-identical across machines and worker
//! counts. Wall-clock deadlines and cancellation are inherently
//! nondeterministic; such stops are labelled by [`BudgetKind`] in
//! [`SolveOutcome::stopped_by`] so downstream serializers can redact
//! wall-clock-dependent fields.

use crate::branch_bound::{BbStats, SolverOptions};
use crate::model::{Model, Sense};
use crate::simplex::{solve_lp_counted, LpResult};
use crate::solution::{Solution, SolveError, Status};
use crate::tree::{TreeEvent, TreeEventKind, TreeRecorder};
use casa_obs::{ArgValue, Obs};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Cooperative cancellation handle, cheaply cloneable and shareable
/// across threads (e.g. one token distributed to every sweep worker).
///
/// Cancellation is *cooperative*: the search polls the token between
/// nodes and stops at the next node boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.0.store(true, AtomicOrdering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(AtomicOrdering::Relaxed)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// The root LP relaxation as provenance material: values, objective,
/// and the dual information the simplex final basis carries for free.
/// Everything is in the model's own orientation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RootLp {
    /// Relaxation value per model variable.
    pub values: Vec<f64>,
    /// Relaxation objective (an optimistic bound on the optimum).
    pub objective: f64,
    /// Shadow price per model constraint: `d(objective)/d(rhs_k)`.
    pub duals: Vec<f64>,
    /// Reduced cost per model variable over model constraints.
    pub reduced_costs: Vec<f64>,
}

/// Everything the branch & bound decided during one search, in the
/// order it decided it — the raw material of a replayable session
/// (see `casa_core::session`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchLog {
    /// Variable index branched on at each branching node, in order.
    pub branched: Vec<u32>,
    /// Every incumbent adoption: `(node, min-oriented objective,
    /// full value vector)`. Node 0 is a warm-start incumbent.
    pub incumbents: Vec<(u64, f64, Vec<f64>)>,
    /// Every strict improvement of the global optimistic bound:
    /// `(node, min-oriented bound)`.
    pub bounds: Vec<(u64, f64)>,
    /// Which budget dimension stopped the search (`None` = closed).
    pub stop: Option<BudgetKind>,
    /// Total nodes popped.
    pub nodes: u64,
    /// The root relaxation with duals and reduced costs, captured the
    /// first time the root LP solves to optimality (provenance for
    /// `casa_core::explain`; `None` when the root never solved).
    pub root_lp: Option<RootLp>,
    /// Per-branch provenance: `(node, variable, LP relaxation value at
    /// the moment of branching)`. Parallel to `branched` (which is
    /// kept as the compact replay order for the session codec).
    pub branch_events: Vec<(u64, u32, f64)>,
}

/// Recorder for the solver decision log, following the [`Obs`]
/// pattern: cheap to clone, a no-op unless explicitly enabled, and
/// shareable across the request/solve boundary.
#[derive(Debug, Clone, Default)]
pub struct SearchRecorder(Option<Arc<Mutex<SearchLog>>>);

impl SearchRecorder {
    /// A recorder that captures the decision log.
    pub fn enabled() -> Self {
        SearchRecorder(Some(Arc::new(Mutex::new(SearchLog::default()))))
    }

    /// The no-op recorder (the default).
    pub fn disabled() -> Self {
        SearchRecorder(None)
    }

    /// Whether this recorder captures anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    fn with<F: FnOnce(&mut SearchLog)>(&self, f: F) {
        if let Some(log) = &self.0 {
            if let Ok(mut log) = log.lock() {
                f(&mut log);
            }
        }
    }

    fn branch(&self, node: u64, var: usize, lp_value: f64) {
        self.with(|l| {
            l.branched.push(var as u32);
            l.branch_events.push((node, var as u32, lp_value));
        });
    }

    fn root_lp(&self, root: &RootLp) {
        self.with(|l| {
            if l.root_lp.is_none() {
                l.root_lp = Some(root.clone());
            }
        });
    }

    fn incumbent(&self, node: u64, min_obj: f64, values: &[f64]) {
        self.with(|l| l.incumbents.push((node, min_obj, values.to_vec())));
    }

    fn bound(&self, node: u64, value: f64) {
        self.with(|l| l.bounds.push((node, value)));
    }

    fn stop(&self, kind: Option<BudgetKind>, nodes: u64) {
        self.with(|l| {
            l.stop = kind;
            l.nodes = nodes;
        });
    }

    /// Take the captured log, leaving an empty one behind. `None` when
    /// the recorder is disabled.
    pub fn take(&self) -> Option<SearchLog> {
        self.0
            .as_ref()
            .and_then(|log| log.lock().ok().map(|mut l| std::mem::take(&mut *l)))
    }
}

/// Which budget dimension stopped a search early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The node limit was exhausted (deterministic stop).
    Nodes,
    /// The wall-clock deadline expired (nondeterministic stop).
    Deadline,
    /// A [`CancelToken`] was triggered (nondeterministic stop).
    Cancelled,
}

impl BudgetKind {
    /// Stable lower-case label for serialization ("nodes" /
    /// "deadline" / "cancelled").
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetKind::Nodes => "nodes",
            BudgetKind::Deadline => "deadline",
            BudgetKind::Cancelled => "cancelled",
        }
    }

    /// Whether this stop depends on wall-clock time (and therefore
    /// breaks cross-run determinism).
    pub fn is_wall_clock(self) -> bool {
        !matches!(self, BudgetKind::Nodes)
    }
}

/// Resource budget for one solve: any combination of a node limit, a
/// wall-clock deadline (monotonic time), and a cooperative
/// [`CancelToken`]. The default budget is unlimited.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Budget {
    /// Maximum branch-and-bound nodes to pop; `None` = unlimited.
    pub max_nodes: Option<u64>,
    /// Wall-clock allowance measured on [`Instant`] from the moment
    /// the solve starts; `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation token polled between nodes.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A pure node budget: deterministic across machines and workers.
    pub fn nodes(max_nodes: u64) -> Self {
        Budget {
            max_nodes: Some(max_nodes),
            ..Self::default()
        }
    }

    /// A wall-clock deadline budget.
    pub fn deadline(allowance: Duration) -> Self {
        Budget {
            deadline: Some(allowance),
            ..Self::default()
        }
    }

    /// Add / replace the node limit.
    pub fn with_nodes(mut self, max_nodes: u64) -> Self {
        self.max_nodes = Some(max_nodes);
        self
    }

    /// Add / replace the wall-clock deadline.
    pub fn with_deadline(mut self, allowance: Duration) -> Self {
        self.deadline = Some(allowance);
        self
    }

    /// Add / replace the cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether no limit of any kind is configured.
    pub fn is_unlimited(&self) -> bool {
        self.max_nodes.is_none() && self.deadline.is_none() && self.cancel.is_none()
    }

    /// Whether any wall-clock-dependent dimension (deadline or cancel
    /// token) is configured. Serializers use this — not whether a stop
    /// actually fired, which is itself timing-dependent — to decide
    /// which fields to redact for determinism.
    pub fn has_wall_clock(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }
}

/// Runtime view of a [`Budget`]: deadline resolved against a start
/// instant, node limit folded with [`SolverOptions::max_nodes`].
struct BudgetClock<'a> {
    max_nodes: u64,
    deadline_at: Option<Instant>,
    cancel: Option<&'a CancelToken>,
}

impl<'a> BudgetClock<'a> {
    fn new(budget: &'a Budget, options: &SolverOptions) -> Self {
        BudgetClock {
            max_nodes: budget.max_nodes.unwrap_or(u64::MAX).min(options.max_nodes),
            deadline_at: budget.deadline.map(|d| Instant::now() + d),
            cancel: budget.cancel.as_ref(),
        }
    }

    /// Returns the budget dimension that is exhausted after popping
    /// `nodes` nodes, if any. Node limits are checked first so that a
    /// node-budgeted run reports the same stop kind everywhere even if
    /// a deadline happens to have passed as well.
    fn exhausted(&self, nodes: u64) -> Option<BudgetKind> {
        if nodes > self.max_nodes {
            return Some(BudgetKind::Nodes);
        }
        if let Some(token) = self.cancel {
            if token.is_cancelled() {
                return Some(BudgetKind::Cancelled);
            }
        }
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                return Some(BudgetKind::Deadline);
            }
        }
        None
    }
}

/// Engine-level status of a finished solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineStatus {
    /// The search closed: the incumbent is proven optimal (within
    /// [`SolverOptions::gap_tol`]).
    Optimal,
    /// The budget expired with an incumbent in hand.
    Feasible {
        /// Absolute optimality gap `|incumbent − proven bound|` in the
        /// model's objective units: the incumbent is within `gap` of
        /// the true optimum. Infinite when the budget expired before
        /// any finite relaxation bound was established.
        gap: f64,
    },
}

/// Result of a budgeted solve: the best-known solution plus proof
/// quality and search effort.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// The incumbent solution (optimal when `status` says so).
    pub solution: Solution,
    /// Proof status: optimal, or feasible with a proven gap.
    pub status: EngineStatus,
    /// Which budget dimension stopped the search, if it did not close.
    pub stopped_by: Option<BudgetKind>,
    /// Search-effort statistics.
    pub stats: BbStats,
}

impl SolveOutcome {
    /// The proven absolute gap: `0.0` for optimal outcomes.
    pub fn gap(&self) -> f64 {
        match self.status {
            EngineStatus::Optimal => 0.0,
            EngineStatus::Feasible { gap } => gap,
        }
    }

    /// Whether optimality was proven.
    pub fn is_optimal(&self) -> bool {
        matches!(self.status, EngineStatus::Optimal)
    }
}

/// A budgeted solve request: the single entry point that replaces the
/// `solve` / `solve_obs` / `solve_with_stats` triplet.
///
/// # Example
///
/// ```
/// use casa_ilp::engine::{Budget, SolveRequest};
/// use casa_ilp::model::{ConstraintOp, Model};
///
/// let mut m = Model::maximize();
/// let x = m.binary("x");
/// let y = m.binary("y");
/// m.set_objective([(x, 1.0), (y, 2.0)]);
/// m.add_constraint([(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.0);
/// let out = SolveRequest::new(&m)
///     .budget(Budget::nodes(1_000))
///     .solve()?;
/// assert!(out.is_optimal());
/// assert_eq!(out.gap(), 0.0);
/// # Ok::<(), casa_ilp::solution::SolveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SolveRequest<'a> {
    model: &'a Model,
    options: SolverOptions,
    budget: Budget,
    warm_start: Option<&'a [f64]>,
    obs: Obs,
    recorder: SearchRecorder,
    tree: TreeRecorder,
}

impl<'a> SolveRequest<'a> {
    /// A request with default options, an unlimited budget, no warm
    /// start, and observability and decision recording disabled.
    pub fn new(model: &'a Model) -> Self {
        SolveRequest {
            model,
            options: SolverOptions::default(),
            budget: Budget::unlimited(),
            warm_start: None,
            obs: Obs::disabled(),
            recorder: SearchRecorder::disabled(),
            tree: TreeRecorder::disabled(),
        }
    }

    /// Replace the solver tunables.
    pub fn options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach a resource budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Seed the search with a candidate point (one value per model
    /// variable, by [`Var::index`](crate::model::Var::index) order).
    /// Integral coordinates are rounded; if the rounded point is
    /// feasible it becomes the initial incumbent, so the engine has a
    /// feasible answer from t=0. Infeasible or mis-sized warm starts
    /// are counted (`ilp.engine.warm_start.rejected`) and ignored.
    pub fn warm_start(mut self, values: &'a [f64]) -> Self {
        self.warm_start = Some(values);
        self
    }

    /// Record solver internals into `obs`: the `ilp.bb.*` counters and
    /// gauge of the old `solve_obs`, plus `ilp.engine.budget.<kind>`
    /// stop counters, the `ilp.engine.gap` gauge, warm-start counters,
    /// and per-incumbent instant events.
    pub fn observe(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Record the solver's decision log — branch order, incumbents,
    /// bound updates, stop reason — into `recorder`. No-op with a
    /// disabled recorder (the default). The log is what makes a solve
    /// replayable offline (`casa_core::session`).
    pub fn record(mut self, recorder: &SearchRecorder) -> Self {
        self.recorder = recorder.clone();
        self
    }

    /// Capture the search tree — one [`TreeEvent`] per node open,
    /// branch, prune, and incumbent adoption, with stable node ids —
    /// into `tree`. No-op with a disabled recorder (the default).
    /// Bounds and objectives in the events are reported in the model's
    /// own objective orientation.
    pub fn trace_tree(mut self, tree: &TreeRecorder) -> Self {
        self.tree = tree.clone();
        self
    }

    /// Run the search.
    ///
    /// Budget exhaustion with an incumbent in hand is **not** an
    /// error: it yields `Ok` with [`EngineStatus::Feasible`] and the
    /// proven gap. Errors are reserved for solves that produced no
    /// usable point at all.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Infeasible`] — the search closed with no
    ///   integral point.
    /// * [`SolveError::Unbounded`] — the root relaxation is unbounded.
    /// * [`SolveError::NodeLimit`] / [`SolveError::Deadline`] /
    ///   [`SolveError::Cancelled`] — the corresponding budget expired
    ///   before any feasible integral point was found.
    /// * [`SolveError::IterationLimit`] — simplex failed to converge.
    pub fn solve(self) -> Result<SolveOutcome, SolveError> {
        let mut stats = BbStats::default();
        let result = search(
            self.model,
            &self.options,
            &self.budget,
            self.warm_start,
            &self.obs,
            &self.recorder,
            &self.tree,
            &mut stats,
        );
        self.export_obs(&result, &stats);
        result
    }

    /// Like [`solve`](Self::solve), but also returns the stats
    /// gathered up to the point of failure when the solve errors.
    pub fn solve_with_stats(self) -> (Result<SolveOutcome, SolveError>, BbStats) {
        let mut stats = BbStats::default();
        let result = search(
            self.model,
            &self.options,
            &self.budget,
            self.warm_start,
            &self.obs,
            &self.recorder,
            &self.tree,
            &mut stats,
        );
        self.export_obs(&result, &stats);
        (result, stats)
    }

    fn export_obs(&self, result: &Result<SolveOutcome, SolveError>, stats: &BbStats) {
        if !self.obs.is_enabled() {
            return;
        }
        self.obs.add("ilp.bb.nodes", stats.nodes);
        self.obs.add("ilp.bb.incumbents", stats.incumbent_updates);
        self.obs.add("ilp.simplex.pivots", stats.simplex_pivots);
        if let Some(b) = stats.best_bound {
            self.obs.gauge_set("ilp.bb.best_bound", b);
        }
        if let Ok(outcome) = result {
            self.obs.gauge_set("ilp.engine.gap", outcome.gap());
        }
        let stopped_by = match result {
            Ok(outcome) => outcome.stopped_by,
            Err(SolveError::NodeLimit { .. }) => Some(BudgetKind::Nodes),
            Err(SolveError::Deadline) => Some(BudgetKind::Deadline),
            Err(SolveError::Cancelled) => Some(BudgetKind::Cancelled),
            Err(_) => None,
        };
        if let Some(kind) = stopped_by {
            self.obs
                .add(&format!("ilp.engine.budget.{}", kind.as_str()), 1);
        }
    }
}

/// The anytime best-first branch-and-bound search. This is the former
/// `branch_bound::solve_inner` extended with warm starts and the
/// budget clock; the node-expansion order is untouched, so unbudgeted
/// engine runs reproduce the old `solve()` byte for byte.
#[allow(clippy::too_many_arguments)]
fn search(
    model: &Model,
    options: &SolverOptions,
    budget: &Budget,
    warm_start: Option<&[f64]>,
    obs: &Obs,
    rec: &SearchRecorder,
    tree: &TreeRecorder,
    stats: &mut BbStats,
) -> Result<SolveOutcome, SolveError> {
    // Work in minimization orientation internally.
    let sense_sign = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let root_bounds: Vec<(f64, f64)> = model.vars().map(|v| model.var_kind(v).bounds()).collect();
    let integral: Vec<usize> = model
        .vars()
        .filter(|&v| model.var_kind(v).is_integral())
        .map(|v| v.index())
        .collect();
    let mut is_integral = vec![false; model.num_vars()];
    for &i in &integral {
        is_integral[i] = true;
    }

    // (values, min-oriented objective)
    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    if let Some(ws) = warm_start {
        match warm_incumbent(model, ws, &is_integral, options, sense_sign) {
            Some((values, obj)) => {
                stats.incumbent_updates += 1;
                obs.instant(
                    "bb.incumbent",
                    vec![
                        ("objective".to_string(), ArgValue::F64(sense_sign * obj)),
                        ("node".to_string(), ArgValue::U64(0)),
                        ("warm_start".to_string(), ArgValue::U64(1)),
                    ],
                );
                obs.add("ilp.engine.warm_start.accepted", 1);
                obs.ts_sample("ilp.bb.incumbent", 0, sense_sign * obj);
                rec.incumbent(0, obj, &values);
                if tree.is_enabled() {
                    tree.record(TreeEvent {
                        kind: TreeEventKind::Incumbent,
                        node: 0,
                        depth: 0,
                        bound: f64::NAN,
                        best: sense_sign * obj,
                        var: None,
                    });
                }
                incumbent = Some((values, obj));
            }
            None => obs.add("ilp.engine.warm_start.rejected", 1),
        }
    }

    let clock = BudgetClock::new(budget, options);
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    heap.push(HeapEntry {
        bound: f64::NEG_INFINITY,
        seq,
        node: Node {
            bounds: root_bounds,
            bound: f64::NEG_INFINITY,
            depth: 0,
        },
    });

    let mut nodes = 0u64;
    let mut root_unbounded = false;
    let mut stopped: Option<BudgetKind> = None;
    // Best-first pops see non-decreasing parent bounds, so the bound
    // of the most recent pop is a valid global optimistic bound.
    let mut bound_floor = f64::NEG_INFINITY;
    // Tree telemetry reports bounds/objectives in the model's own
    // orientation; `best_for_tree` is NaN (exported as null) while no
    // incumbent exists. Node id = pop counter, a search-order value
    // that is deterministic under node budgets (warm-start = node 0).
    let best_for_tree =
        |inc: &Option<(Vec<f64>, f64)>| inc.as_ref().map_or(f64::NAN, |(_, b)| sense_sign * b);

    while let Some(HeapEntry { node, .. }) = heap.pop() {
        nodes += 1;
        stats.nodes = nodes;
        if node.bound > bound_floor && node.bound.is_finite() {
            if rec.is_enabled() {
                rec.bound(nodes, node.bound);
            }
            obs.ts_sample("ilp.bb.bound", nodes, sense_sign * node.bound);
        }
        bound_floor = bound_floor.max(node.bound);
        if tree.is_enabled() {
            tree.record(TreeEvent {
                kind: TreeEventKind::Open,
                node: nodes,
                depth: node.depth,
                bound: sense_sign * node.bound,
                best: best_for_tree(&incumbent),
                var: None,
            });
        }
        if let Some(kind) = clock.exhausted(nodes) {
            stopped = Some(kind);
            break;
        }
        // Prune against incumbent using the parent bound.
        if let Some((_, best)) = &incumbent {
            if node.bound >= *best - options.gap_tol {
                if tree.is_enabled() {
                    tree.record(TreeEvent {
                        kind: TreeEventKind::PruneBound,
                        node: nodes,
                        depth: node.depth,
                        bound: sense_sign * node.bound,
                        best: sense_sign * best,
                        var: None,
                    });
                }
                continue;
            }
        }
        let (lp, pivots) = solve_lp_counted(model, &node.bounds)?;
        stats.simplex_pivots += pivots;
        let (values, objective) = match lp {
            LpResult::Infeasible => {
                if tree.is_enabled() {
                    tree.record(TreeEvent {
                        kind: TreeEventKind::PruneInfeasible,
                        node: nodes,
                        depth: node.depth,
                        bound: sense_sign * node.bound,
                        best: best_for_tree(&incumbent),
                        var: None,
                    });
                }
                continue;
            }
            LpResult::Unbounded => {
                if nodes == 1 {
                    root_unbounded = true;
                    break;
                }
                // A bounded-variable subproblem cannot be unbounded if
                // the root was bounded; treat defensively as a dead end.
                continue;
            }
            LpResult::Optimal {
                values,
                objective,
                duals,
                reduced_costs,
            } => {
                if nodes == 1 && rec.is_enabled() {
                    rec.root_lp(&RootLp {
                        values: values.clone(),
                        objective,
                        duals,
                        reduced_costs,
                    });
                }
                (values, objective)
            }
        };
        let min_obj = sense_sign * objective;
        if let Some((_, best)) = &incumbent {
            if min_obj >= *best - options.gap_tol {
                if tree.is_enabled() {
                    tree.record(TreeEvent {
                        kind: TreeEventKind::PruneBound,
                        node: nodes,
                        depth: node.depth,
                        bound: objective,
                        best: sense_sign * best,
                        var: None,
                    });
                }
                continue;
            }
        }
        // Find the most fractional integral variable.
        let mut branch_var: Option<(usize, f64)> = None;
        let mut best_frac = options.int_tol;
        for &i in &integral {
            let x = values[i];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some((i, x));
            }
        }
        match branch_var {
            None => {
                // Integral: candidate incumbent. Rounding can move each
                // integral coordinate by up to `int_tol`, so the raw LP
                // objective may drift from the rounded point by up to
                // int_tol·Σ|c|; re-evaluate on the rounded vector.
                let rounded: Vec<f64> = values
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| if is_integral[i] { x.round() } else { x })
                    .collect();
                let rounded_obj = sense_sign * model.eval_objective(&rounded);
                match &incumbent {
                    Some((_, best)) if rounded_obj >= *best - options.gap_tol => {}
                    _ => {
                        rec.incumbent(nodes, rounded_obj, &rounded);
                        incumbent = Some((rounded, rounded_obj));
                        stats.incumbent_updates += 1;
                        obs.instant(
                            "bb.incumbent",
                            vec![
                                (
                                    "objective".to_string(),
                                    ArgValue::F64(sense_sign * rounded_obj),
                                ),
                                ("node".to_string(), ArgValue::U64(nodes)),
                            ],
                        );
                        obs.ts_sample("ilp.bb.incumbent", nodes, sense_sign * rounded_obj);
                        if tree.is_enabled() {
                            tree.record(TreeEvent {
                                kind: TreeEventKind::Incumbent,
                                node: nodes,
                                depth: node.depth,
                                bound: objective,
                                best: sense_sign * rounded_obj,
                                var: None,
                            });
                        }
                    }
                }
            }
            Some((i, x)) => {
                rec.branch(nodes, i, x);
                if tree.is_enabled() {
                    tree.record(TreeEvent {
                        kind: TreeEventKind::Branch,
                        node: nodes,
                        depth: node.depth,
                        bound: objective,
                        best: best_for_tree(&incumbent),
                        var: Some(i as u32),
                    });
                }
                let (lb, ub) = node.bounds[i];
                let floor = x.floor();
                let ceil = x.ceil();
                if floor >= lb - options.int_tol {
                    let mut b = node.bounds.clone();
                    b[i] = (lb, floor);
                    seq += 1;
                    heap.push(HeapEntry {
                        bound: min_obj,
                        seq,
                        node: Node {
                            bounds: b,
                            bound: min_obj,
                            depth: node.depth + 1,
                        },
                    });
                }
                if ceil <= ub + options.int_tol {
                    let mut b = node.bounds.clone();
                    b[i] = (ceil, ub);
                    seq += 1;
                    heap.push(HeapEntry {
                        bound: min_obj,
                        seq,
                        node: Node {
                            bounds: b,
                            bound: min_obj,
                            depth: node.depth + 1,
                        },
                    });
                }
            }
        }
    }

    if root_unbounded {
        return Err(SolveError::Unbounded);
    }
    rec.stop(stopped, nodes);
    tree.set_nodes(nodes);

    if let Some(kind) = stopped {
        if bound_floor.is_finite() {
            stats.best_bound = Some(sense_sign * bound_floor);
        }
        return match incumbent {
            Some((values, obj)) => {
                // Absolute gap in minimization orientation; the same
                // number is valid in the model's own orientation since
                // |obj − bound| is sign-invariant.
                let gap = if bound_floor.is_finite() {
                    (obj - bound_floor).max(0.0)
                } else {
                    f64::INFINITY
                };
                Ok(SolveOutcome {
                    solution: Solution::new(values, sense_sign * obj, Status::Feasible, nodes),
                    status: EngineStatus::Feasible { gap },
                    stopped_by: Some(kind),
                    stats: *stats,
                })
            }
            None => Err(match kind {
                BudgetKind::Nodes => SolveError::NodeLimit {
                    limit: clock.max_nodes,
                },
                BudgetKind::Deadline => SolveError::Deadline,
                BudgetKind::Cancelled => SolveError::Cancelled,
            }),
        };
    }

    match incumbent {
        Some((values, obj)) => {
            // Search closed: the incumbent is proven optimal, so the
            // bound equals the objective.
            stats.best_bound = Some(sense_sign * obj);
            Ok(SolveOutcome {
                solution: Solution::new(values, sense_sign * obj, Status::Optimal, nodes),
                status: EngineStatus::Optimal,
                stopped_by: None,
                stats: *stats,
            })
        }
        None => Err(SolveError::Infeasible),
    }
}

/// Validate and round a warm-start vector: integral coordinates are
/// snapped to the nearest integer, the rounded point is checked for
/// feasibility, and its objective is re-evaluated. Returns the
/// min-oriented incumbent candidate, or `None` if unusable.
fn warm_incumbent(
    model: &Model,
    warm: &[f64],
    is_integral: &[bool],
    options: &SolverOptions,
    sense_sign: f64,
) -> Option<(Vec<f64>, f64)> {
    if warm.len() != model.num_vars() {
        return None;
    }
    let rounded: Vec<f64> = warm
        .iter()
        .enumerate()
        .map(|(i, &x)| if is_integral[i] { x.round() } else { x })
        .collect();
    let tol = options.int_tol.max(1e-9);
    if !model.is_feasible(&rounded, tol) {
        return None;
    }
    let obj = sense_sign * model.eval_objective(&rounded);
    Some((rounded, obj))
}

struct Node {
    bounds: Vec<(f64, f64)>,
    /// LP bound of the parent (optimistic value for this node), in
    /// minimization orientation.
    bound: f64,
    /// Branching decisions between the root and this node.
    depth: u32,
}

struct HeapEntry {
    bound: f64,
    seq: u64,
    node: Node,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest bound first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model};

    fn branching_model() -> (Model, crate::model::Var, crate::model::Var) {
        // max x + y s.t. 2x + y <= 7, x + 3y <= 9, integer x,y >= 0.
        // LP optimum fractional; integer optimum = 4.
        let mut m = Model::maximize();
        let x = m.integer("x", 0, 10);
        let y = m.integer("y", 0, 10);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_constraint([(x, 2.0), (y, 1.0)], ConstraintOp::Le, 7.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], ConstraintOp::Le, 9.0);
        (m, x, y)
    }

    #[test]
    fn unbudgeted_engine_matches_closed_search() {
        let (m, _, _) = branching_model();
        let out = SolveRequest::new(&m).solve().unwrap();
        assert!(out.is_optimal());
        assert_eq!(out.gap(), 0.0);
        assert!((out.solution.objective() - 4.0).abs() < 1e-6);
        assert_eq!(out.stopped_by, None);
        assert_eq!(out.stats.nodes, out.solution.nodes());
    }

    #[test]
    fn node_budget_with_incumbent_returns_feasible_with_gap() {
        // Satellite fix: exceeding the node budget with an incumbent in
        // hand must yield Feasible{gap}, not a SolveError. The warm
        // start guarantees the incumbent exists from t=0.
        let (m, x, y) = branching_model();
        let warm = {
            let mut v = vec![0.0; 2];
            v[x.index()] = 1.0;
            v[y.index()] = 1.0;
            v
        };
        let out = SolveRequest::new(&m)
            .budget(Budget::nodes(1))
            .warm_start(&warm)
            .solve()
            .unwrap();
        match out.status {
            EngineStatus::Feasible { gap } => {
                assert!(gap >= 0.0);
                assert!(gap.is_finite(), "root LP bound must make the gap finite");
                // Incumbent obj 2, true optimum 4, LP bound <= 5.2:
                // proven gap covers the real distance to the optimum.
                assert!(gap >= 4.0 - out.solution.objective() - 1e-9);
            }
            other => panic!("expected Feasible, got {other:?}"),
        }
        assert_eq!(out.stopped_by, Some(BudgetKind::Nodes));
        assert_eq!(out.solution.status(), Status::Feasible);
        assert!((out.solution.objective() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn node_budget_without_incumbent_errors() {
        let (m, _, _) = branching_model();
        let err = SolveRequest::new(&m)
            .budget(Budget::nodes(1))
            .solve()
            .unwrap_err();
        assert_eq!(err, SolveError::NodeLimit { limit: 1 });
    }

    #[test]
    fn warm_start_seeds_incumbent_and_optimal_closure_unaffected() {
        let (m, x, y) = branching_model();
        let mut warm = vec![0.0; 2];
        warm[x.index()] = 3.0;
        warm[y.index()] = 1.0; // optimal point
        let out = SolveRequest::new(&m).warm_start(&warm).solve().unwrap();
        assert!(out.is_optimal());
        assert!((out.solution.objective() - 4.0).abs() < 1e-6);
        assert!(out.stats.incumbent_updates >= 1);
    }

    #[test]
    fn infeasible_warm_start_is_ignored() {
        let (m, x, y) = branching_model();
        let mut warm = vec![0.0; 2];
        warm[x.index()] = 10.0; // violates 2x + y <= 7
        warm[y.index()] = 10.0;
        let obs = Obs::enabled();
        let out = SolveRequest::new(&m)
            .warm_start(&warm)
            .observe(&obs)
            .solve()
            .unwrap();
        assert!(out.is_optimal());
        match obs.snapshot().get("ilp.engine.warm_start.rejected") {
            Some(casa_obs::MetricValue::Counter(1)) => {}
            other => panic!("expected rejection counter, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_token_stops_immediately() {
        let (m, x, y) = branching_model();
        let token = CancelToken::new();
        token.cancel();
        let mut warm = vec![0.0; 2];
        warm[x.index()] = 1.0;
        warm[y.index()] = 0.0;
        let out = SolveRequest::new(&m)
            .budget(Budget::unlimited().with_cancel(token.clone()))
            .warm_start(&warm)
            .solve()
            .unwrap();
        assert_eq!(out.stopped_by, Some(BudgetKind::Cancelled));
        assert!((out.solution.objective() - 1.0).abs() < 1e-9);
        // No incumbent and cancelled -> the dedicated error.
        let err = SolveRequest::new(&m)
            .budget(Budget::unlimited().with_cancel(token))
            .solve()
            .unwrap_err();
        assert_eq!(err, SolveError::Cancelled);
    }

    #[test]
    fn expired_deadline_reports_deadline_kind() {
        let (m, x, y) = branching_model();
        let mut warm = vec![0.0; 2];
        warm[x.index()] = 0.0;
        warm[y.index()] = 1.0;
        let out = SolveRequest::new(&m)
            .budget(Budget::deadline(Duration::ZERO))
            .warm_start(&warm)
            .solve()
            .unwrap();
        assert_eq!(out.stopped_by, Some(BudgetKind::Deadline));
        assert!(matches!(out.status, EngineStatus::Feasible { .. }));
        assert_eq!(
            SolveRequest::new(&m)
                .budget(Budget::deadline(Duration::ZERO))
                .solve()
                .unwrap_err(),
            SolveError::Deadline
        );
    }

    #[test]
    fn gap_shrinks_to_zero_as_node_budget_grows() {
        let (m, x, y) = branching_model();
        let mut warm = vec![0.0; 2];
        warm[x.index()] = 1.0;
        warm[y.index()] = 0.0;
        let mut last_gap = f64::INFINITY;
        let mut budget = 1u64;
        loop {
            let out = SolveRequest::new(&m)
                .budget(Budget::nodes(budget))
                .warm_start(&warm)
                .solve()
                .unwrap();
            let gap = out.gap();
            assert!(
                gap <= last_gap + 1e-9,
                "gap must not grow: {gap} after {last_gap}"
            );
            last_gap = gap;
            if out.is_optimal() {
                assert_eq!(gap, 0.0);
                break;
            }
            budget *= 2;
            assert!(budget < 1 << 20, "search failed to close");
        }
    }

    #[test]
    fn engine_obs_exports_budget_counters_and_gap_gauge() {
        let (m, x, y) = branching_model();
        let mut warm = vec![0.0; 2];
        warm[x.index()] = 1.0;
        warm[y.index()] = 0.0;
        let obs = Obs::enabled();
        let out = SolveRequest::new(&m)
            .budget(Budget::nodes(1))
            .warm_start(&warm)
            .observe(&obs)
            .solve()
            .unwrap();
        let snap = obs.snapshot();
        match snap.get("ilp.engine.budget.nodes") {
            Some(casa_obs::MetricValue::Counter(1)) => {}
            other => panic!("expected nodes-stop counter, got {other:?}"),
        }
        match snap.get("ilp.engine.gap") {
            Some(casa_obs::MetricValue::Gauge(g)) => {
                assert!((g - out.gap()).abs() < 1e-12)
            }
            other => panic!("expected gap gauge, got {other:?}"),
        }
        match snap.get("ilp.engine.warm_start.accepted") {
            Some(casa_obs::MetricValue::Counter(1)) => {}
            other => panic!("expected warm-start counter, got {other:?}"),
        }
    }

    #[test]
    fn tree_capture_records_a_convergent_deterministic_search() {
        let (m, _, _) = branching_model();
        let run = || {
            let tree = TreeRecorder::with_cap(1024);
            let out = SolveRequest::new(&m).trace_tree(&tree).solve().unwrap();
            (out, tree.take().unwrap())
        };
        let (out, log) = run();
        assert!(out.is_optimal());
        assert_eq!(log.nodes, out.stats.nodes);
        let opens = log
            .events
            .iter()
            .filter(|e| e.kind == TreeEventKind::Open)
            .count() as u64;
        assert_eq!(opens, log.nodes, "every popped node logs an open event");
        assert!(
            log.events
                .iter()
                .any(|e| e.kind == TreeEventKind::Branch && e.var.is_some() && e.bound.is_finite()),
            "fractional root must branch: {:?}",
            log.events
        );
        let incumbents: Vec<&TreeEvent> = log
            .events
            .iter()
            .filter(|e| e.kind == TreeEventKind::Incumbent)
            .collect();
        assert!(!incumbents.is_empty());
        assert!(
            (incumbents.last().unwrap().best - 4.0).abs() < 1e-6,
            "final incumbent carries the model-oriented optimum"
        );
        assert!(
            log.events.iter().all(|e| e.node <= log.nodes),
            "node ids are pop-counter values"
        );
        // Root opens at depth 0; every branch deepens by exactly one.
        assert_eq!(log.events[0].depth, 0);
        // Same model, same bytes: the capture inherits search determinism.
        let (_, log2) = run();
        assert_eq!(
            crate::tree::tree_log_json(&log),
            crate::tree::tree_log_json(&log2)
        );
        // With capture off, the solve outcome is unchanged.
        let plain = SolveRequest::new(&m).solve().unwrap();
        assert_eq!(plain.solution.values(), out.solution.values());
        assert_eq!(plain.stats.nodes, out.stats.nodes);
    }

    #[test]
    fn tree_instants_respect_a_tiny_flight_ring() {
        // Satellite: tree-adjacent observability must coexist with a
        // tiny flight ring — exact drop accounting, no panic, and a
        // valid deterministic dump of whatever survived.
        let (m, _, _) = branching_model();
        let obs = casa_obs::Obs::with_flight_capacity(3);
        let tree = TreeRecorder::with_cap(2);
        let out = SolveRequest::new(&m)
            .observe(&obs)
            .trace_tree(&tree)
            .solve()
            .unwrap();
        assert!(out.is_optimal());
        let log = tree.take().unwrap();
        assert_eq!(log.cap, 2);
        assert_eq!(log.events.len(), 2, "ring is full, never over");
        assert!(log.dropped > 0, "a real search overflows a 2-event ring");
        // A closed search records Open per pop plus branches/incumbents
        // /prunes; surviving + dropped = everything that was recorded.
        assert!(
            log.dropped + log.events.len() as u64 > log.nodes,
            "recorded more events than nodes: {} + 2 vs {}",
            log.dropped,
            log.nodes
        );
        let flight = obs.flight().expect("enabled obs has a flight ring");
        let events = obs.flight_events();
        assert!(events.len() <= 3, "flight ring respects its cap");
        if let Some(first) = events.first() {
            assert_eq!(
                flight.dropped(),
                first.seq,
                "drop count equals the number of evicted leading seqs"
            );
        }
        let json = obs.dump_flight();
        assert!(serde::json::parse(&json).is_ok(), "valid dump: {json}");
        let tree_json = crate::tree::tree_log_json(&log);
        assert!(serde::json::parse(&tree_json).is_ok());
    }

    #[test]
    fn recorder_captures_root_lp_and_branch_provenance() {
        let (m, _, _) = branching_model();
        let rec = SearchRecorder::enabled();
        let out = SolveRequest::new(&m).record(&rec).solve().unwrap();
        assert!(out.is_optimal());
        let log = rec.take().unwrap();
        let root = log.root_lp.expect("root LP solved to optimality");
        // Model-oriented root relaxation bound of the max problem: at
        // least the integer optimum, with the known LP value 4.6.
        assert!((root.objective - 4.6).abs() < 1e-6, "{}", root.objective);
        assert_eq!(root.values.len(), 2);
        assert_eq!(root.duals.len(), 2);
        assert_eq!(root.reduced_costs.len(), 2);
        assert!(root.duals.iter().all(|d| d.is_finite()));
        // Both constraints bind at the fractional vertex (12/5, 11/5).
        assert!(root.duals.iter().all(|&d| d > 0.0), "{:?}", root.duals);
        // Branch provenance parallels the compact order and records a
        // genuinely fractional LP value for each branch decision.
        assert_eq!(log.branch_events.len(), log.branched.len());
        for (k, &(node, var, x)) in log.branch_events.iter().enumerate() {
            assert_eq!(var, log.branched[k]);
            assert!(node >= 1 && node <= log.nodes);
            assert!((x - x.round()).abs() > 1e-6, "branch value fractional: {x}");
        }
        assert!(!log.branch_events.is_empty(), "fractional root must branch");
    }

    #[test]
    fn cancel_token_equality_is_identity() {
        let a = CancelToken::new();
        let b = a.clone();
        let c = CancelToken::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(BudgetKind::Nodes.as_str(), "nodes");
        assert!(!BudgetKind::Nodes.is_wall_clock());
        assert!(BudgetKind::Deadline.is_wall_clock());
        assert!(Budget::unlimited().is_unlimited());
        assert!(Budget::deadline(Duration::from_millis(1)).has_wall_clock());
        assert!(!Budget::nodes(5).has_wall_clock());
    }
}
