//! Property tests: the ILP solver (simplex + branch & bound) against
//! brute-force enumeration on small random binary programs.

use casa_ilp::model::{ConstraintOp, Model, Sense};
use casa_ilp::{Solution, SolveError, SolveRequest, SolverOptions};
use proptest::prelude::*;

/// The old `solve()` surface, expressed through the engine entry point.
fn solve(model: &Model, options: &SolverOptions) -> Result<Solution, SolveError> {
    SolveRequest::new(model)
        .options(*options)
        .solve()
        .map(|outcome| outcome.solution)
}

/// Build a random binary program with `n` variables and `m`
/// constraints from integer coefficient pools (exact arithmetic in
/// the brute force).
fn build(
    n: usize,
    obj: &[i32],
    rows: &[(Vec<i32>, u8, i32)],
    maximize: bool,
) -> (Model, Vec<casa_ilp::Var>) {
    let mut model = if maximize {
        Model::new(Sense::Maximize)
    } else {
        Model::new(Sense::Minimize)
    };
    let vars: Vec<_> = (0..n).map(|i| model.binary(format!("b{i}"))).collect();
    model.set_objective(vars.iter().zip(obj).map(|(&v, &c)| (v, f64::from(c))));
    for (coefs, op, rhs) in rows {
        let op = match op % 3 {
            0 => ConstraintOp::Le,
            1 => ConstraintOp::Ge,
            _ => ConstraintOp::Eq,
        };
        model.add_constraint(
            vars.iter().zip(coefs).map(|(&v, &c)| (v, f64::from(c))),
            op,
            f64::from(*rhs),
        );
    }
    (model, vars)
}

/// Exhaustive optimum over all 2^n assignments, or None if infeasible.
fn brute_force(n: usize, obj: &[i32], rows: &[(Vec<i32>, u8, i32)], maximize: bool) -> Option<i64> {
    let mut best: Option<i64> = None;
    for mask in 0u32..(1 << n) {
        let x = |i: usize| i64::from((mask >> i) & 1);
        let feasible = rows.iter().all(|(coefs, op, rhs)| {
            let lhs: i64 = coefs
                .iter()
                .enumerate()
                .map(|(i, &c)| i64::from(c) * x(i))
                .sum();
            match op % 3 {
                0 => lhs <= i64::from(*rhs),
                1 => lhs >= i64::from(*rhs),
                _ => lhs == i64::from(*rhs),
            }
        });
        if feasible {
            let val: i64 = obj
                .iter()
                .enumerate()
                .map(|(i, &c)| i64::from(c) * x(i))
                .sum();
            best = Some(match best {
                None => val,
                Some(b) if maximize => b.max(val),
                Some(b) => b.min(val),
            });
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn ilp_matches_brute_force(
        n in 1usize..6,
        maximize in any::<bool>(),
        obj in prop::collection::vec(-9i32..10, 6),
        rows in prop::collection::vec(
            (prop::collection::vec(-5i32..6, 6), any::<u8>(), -8i32..12),
            0..4,
        ),
    ) {
        let obj = &obj[..n];
        let rows: Vec<(Vec<i32>, u8, i32)> = rows
            .into_iter()
            .map(|(c, op, r)| (c[..n].to_vec(), op, r))
            .collect();
        let (model, _) = build(n, obj, &rows, maximize);
        let expected = brute_force(n, obj, &rows, maximize);
        match (solve(&model, &SolverOptions::default()), expected) {
            (Ok(sol), Some(best)) => {
                prop_assert!(
                    (sol.objective() - best as f64).abs() < 1e-6,
                    "solver {} vs brute force {}",
                    sol.objective(),
                    best
                );
                // The returned point must itself be feasible.
                prop_assert!(model.is_feasible(sol.values(), 1e-6));
            }
            (Err(SolveError::Infeasible), None) => {}
            (got, want) => {
                return Err(TestCaseError::fail(format!(
                    "solver {got:?} disagrees with brute force {want:?}"
                )));
            }
        }
    }

    /// Pure knapsack instances: DP and ILP agree.
    #[test]
    fn knapsack_dp_matches_ilp(
        n in 1usize..7,
        weights in prop::collection::vec(0u32..15, 7),
        profits in prop::collection::vec(0u64..50, 7),
        cap in 0u32..40,
    ) {
        let weights = &weights[..n];
        let profits = &profits[..n];
        let dp = casa_ilp::knapsack_01(weights, profits, cap);

        let mut model = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| model.binary(format!("x{i}"))).collect();
        model.set_objective(vars.iter().zip(profits).map(|(&v, &p)| (v, p as f64)));
        model.add_constraint(
            vars.iter().zip(weights).map(|(&v, &w)| (v, f64::from(w))),
            ConstraintOp::Le,
            f64::from(cap),
        );
        let sol = solve(&model, &SolverOptions::default()).expect("knapsack always feasible");
        prop_assert!(
            (sol.objective() - dp.profit as f64).abs() < 1e-6,
            "ilp {} vs dp {}",
            sol.objective(),
            dp.profit
        );
    }
}
