//! Property tests for the anytime engine (satellite of the engine PR):
//!
//! 1. `Optimal` outcomes from a budgetless engine run equal a plain
//!    unbudgeted solve — same objective, same point.
//! 2. `Feasible` gaps are always ≥ 0 and monotonically non-increasing
//!    as the node budget grows (the deterministic best-first search
//!    has the prefix property: the state at node N is identical for
//!    every budget ≥ N, the incumbent never worsens, and the proven
//!    bound never loosens).

use casa_ilp::engine::{Budget, EngineStatus, SolveRequest};
use casa_ilp::model::{ConstraintOp, Model, Sense};
use casa_ilp::{Solution, SolveError, SolverOptions};
use proptest::prelude::*;

/// The pre-engine `solve()` semantics: solution only, no budget.
fn solve(model: &Model, options: &SolverOptions) -> Result<Solution, SolveError> {
    SolveRequest::new(model)
        .options(*options)
        .solve()
        .map(|outcome| outcome.solution)
}

/// Random binary program over integer coefficient pools.
fn build(n: usize, obj: &[i32], rows: &[(Vec<i32>, u8, i32)], maximize: bool) -> Model {
    let mut model = if maximize {
        Model::new(Sense::Maximize)
    } else {
        Model::new(Sense::Minimize)
    };
    let vars: Vec<_> = (0..n).map(|i| model.binary(format!("b{i}"))).collect();
    model.set_objective(vars.iter().zip(obj).map(|(&v, &c)| (v, f64::from(c))));
    for (coefs, op, rhs) in rows {
        let op = match op % 3 {
            0 => ConstraintOp::Le,
            1 => ConstraintOp::Ge,
            _ => ConstraintOp::Eq,
        };
        model.add_constraint(
            vars.iter().zip(coefs).map(|(&v, &c)| (v, f64::from(c))),
            op,
            f64::from(*rhs),
        );
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn optimal_outcomes_match_old_solve_and_gaps_shrink(
        n in 1usize..6,
        maximize in any::<bool>(),
        obj in prop::collection::vec(-9i32..10, 6),
        rows in prop::collection::vec(
            (prop::collection::vec(-5i32..6, 6), any::<u8>(), -8i32..12),
            0..4,
        ),
    ) {
        let obj = &obj[..n];
        let rows: Vec<(Vec<i32>, u8, i32)> = rows
            .into_iter()
            .map(|(c, op, r)| (c[..n].to_vec(), op, r))
            .collect();
        let model = build(n, obj, &rows, maximize);
        let opts = SolverOptions::default();

        let old = solve(&model, &opts);
        let engine = SolveRequest::new(&model).options(opts).solve();
        match (old, engine) {
            (Ok(old_sol), Ok(out)) => {
                // Unbudgeted runs must close the search and agree with
                // the legacy entry point byte for byte.
                prop_assert!(out.is_optimal());
                prop_assert_eq!(out.gap(), 0.0);
                prop_assert_eq!(old_sol.values(), out.solution.values());
                prop_assert!((old_sol.objective() - out.solution.objective()).abs() < 1e-12);

                // Anytime runs: warm-start with the optimum so every
                // budget yields Ok, then check the gap contract.
                let mut last_gap = f64::INFINITY;
                let mut budget = 1u64;
                loop {
                    let budgeted = SolveRequest::new(&model)
                        .options(opts)
                        .budget(Budget::nodes(budget))
                        .warm_start(old_sol.values())
                        .solve();
                    let Ok(b) = budgeted else {
                        return Err(TestCaseError::fail(format!(
                            "warm-started budgeted solve failed: {budgeted:?}"
                        )));
                    };
                    let gap = b.gap();
                    prop_assert!(gap >= 0.0, "negative gap {gap}");
                    prop_assert!(
                        gap <= last_gap + 1e-9,
                        "gap grew from {last_gap} to {gap} at budget {budget}"
                    );
                    if let EngineStatus::Feasible { gap } = b.status {
                        prop_assert!(gap >= 0.0);
                    }
                    // The warm-started incumbent never loses quality.
                    prop_assert!(
                        (b.solution.objective() - old_sol.objective()).abs() < 1e-9,
                        "incumbent {} drifted from optimum {}",
                        b.solution.objective(),
                        old_sol.objective()
                    );
                    last_gap = gap;
                    if b.is_optimal() {
                        break;
                    }
                    budget *= 2;
                    prop_assert!(budget < 1 << 24, "search failed to close");
                }
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (old, engine) => {
                return Err(TestCaseError::fail(format!(
                    "old {old:?} disagrees with engine {engine:?}"
                )));
            }
        }
    }
}
