//! Property tests for trace formation and layout over random
//! programs.

use casa_ir::inst::{InstKind, IsaMode};
use casa_ir::{BlockId, Profile, Program, ProgramBuilder};
use casa_trace::layout::PlacementSemantics;
use casa_trace::trace::TraceConfig;
use casa_trace::{Layout, Region, TraceSet};
use proptest::prelude::*;

/// Unobserved formation, to keep the property bodies terse.
fn form_traces(program: &Program, profile: &Profile, config: TraceConfig) -> TraceSet {
    casa_trace::form_traces(program, profile, config, &casa_obs::Obs::disabled())
}

/// Build a random single-function program: a chain of blocks with a
/// mix of fall-throughs, jumps and branches (all edges forward-or-self
/// to keep it simple; trace formation doesn't care about execution).
fn random_program(block_sizes: &[u8], edge_choice: &[u8]) -> Program {
    let mut b = ProgramBuilder::new(IsaMode::Arm);
    let f = b.function("f");
    let n = block_sizes.len();
    let ids: Vec<BlockId> = (0..n).map(|_| b.block(f)).collect();
    for (i, (&sz, &e)) in block_sizes.iter().zip(edge_choice).enumerate() {
        b.push_n(ids[i], InstKind::Alu, usize::from(sz % 14) + 1);
        if i + 1 == n {
            b.exit(ids[i]);
        } else {
            match e % 3 {
                0 => {
                    b.fall_through(ids[i], ids[i + 1]);
                }
                1 => {
                    b.jump(ids[i], ids[i + 1]);
                }
                _ => {
                    let taken = ids[(usize::from(e) * 7) % (i + 1)];
                    b.branch(ids[i], taken, ids[i + 1]);
                }
            }
        }
    }
    b.finish().expect("valid")
}

fn random_profile(program: &Program, counts: &[u16]) -> Profile {
    let mut p = Profile::new();
    for (block, &c) in program.blocks().iter().zip(counts) {
        p.add_block(block.id(), u64::from(c));
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trace formation is a partition: every block in exactly one
    /// trace, fall-through order preserved inside traces, sizes capped
    /// (except oversized singletons), padding to line multiples.
    #[test]
    fn formation_is_a_partition(
        block_sizes in prop::collection::vec(any::<u8>(), 1..24),
        edges in prop::collection::vec(any::<u8>(), 24),
        cap_pow in 5u32..9,
    ) {
        let p = random_program(&block_sizes, &edges);
        let profile = Profile::new();
        let cap = 1u32 << cap_pow;
        let ts = form_traces(&p, &profile, TraceConfig::new(cap, 16));
        let mut seen = vec![0u32; p.blocks().len()];
        for t in ts.traces() {
            prop_assert!(!t.is_empty());
            for &b in t.blocks() {
                seen[b.index()] += 1;
                prop_assert_eq!(ts.trace_of(b), t.id());
            }
            // Within-trace adjacency is fall-through.
            for w in t.blocks().windows(2) {
                prop_assert_eq!(
                    p.block(w[0]).terminator().fallthrough_successor(),
                    Some(w[1])
                );
            }
            // Size cap (multi-block traces only; single oversized
            // blocks are allowed through as unallocatable).
            if t.len() > 1 {
                prop_assert!(t.code_size() <= cap, "{} > {}", t.code_size(), cap);
            }
            prop_assert_eq!(t.padded_size(16) % 16, 0);
            prop_assert!(t.padded_size(16) >= t.code_size());
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// Layout invariants: main-memory trace slots are disjoint and
    /// line-aligned; copy semantics preserves every non-SPM address
    /// against the initial layout.
    #[test]
    fn layout_slots_disjoint_and_copy_stable(
        block_sizes in prop::collection::vec(any::<u8>(), 1..20),
        edges in prop::collection::vec(any::<u8>(), 20),
        counts in prop::collection::vec(any::<u16>(), 20),
        spm_mask in any::<u32>(),
    ) {
        let p = random_program(&block_sizes, &edges);
        let profile = random_profile(&p, &counts);
        let ts = form_traces(&p, &profile, TraceConfig::new(128, 16));
        let initial = Layout::initial(&p, &ts);
        // Slots: sorted by address, non-overlapping.
        let mut slots: Vec<(u32, u32)> = ts
            .traces()
            .iter()
            .map(|t| {
                let loc = initial.trace_location(t.id());
                prop_assert_eq!(loc.region, Region::Main);
                prop_assert_eq!(loc.addr % 16, 0);
                Ok((loc.addr, t.padded_size(16)))
            })
            .collect::<Result<_, _>>()?;
        slots.sort();
        for w in slots.windows(2) {
            prop_assert!(w[0].0 + w[0].1 <= w[1].0);
        }
        // Copy semantics: unallocated traces keep their addresses.
        let placement: Vec<Option<u8>> = (0..ts.len())
            .map(|i| ((spm_mask >> (i % 32)) & 1 == 1).then_some(0))
            .collect();
        let copied = Layout::with_placement(&p, &ts, &placement, PlacementSemantics::Copy);
        for t in ts.traces() {
            if placement[t.id().index()].is_none() {
                prop_assert_eq!(
                    copied.trace_location(t.id()),
                    initial.trace_location(t.id()),
                    "copy semantics must not move cached traces"
                );
            } else {
                prop_assert!(matches!(
                    copied.trace_location(t.id()).region,
                    Region::Spm(0)
                ));
            }
        }
    }

    /// Fetch-count conservation: the sum of trace fetches equals the
    /// profile's total fetches plus glue-jump traversals.
    #[test]
    fn trace_fetches_conserve_profile(
        block_sizes in prop::collection::vec(any::<u8>(), 1..20),
        edges in prop::collection::vec(any::<u8>(), 20),
        counts in prop::collection::vec(1u16..100, 20),
    ) {
        let p = random_program(&block_sizes, &edges);
        let profile = random_profile(&p, &counts);
        let ts = form_traces(&p, &profile, TraceConfig::new(96, 16));
        let trace_sum: u64 = ts.traces().iter().map(|t| t.fetches(&p, &profile)).sum();
        let base = profile.total_fetches(&p);
        prop_assert!(trace_sum >= base);
        // Glue traversals are bounded by total block executions.
        let execs: u64 = p.blocks().iter().map(|b| profile.block_count(b.id())).sum();
        prop_assert!(trace_sum <= base + execs);
    }
}
