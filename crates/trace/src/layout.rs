//! Code layout: assigning addresses to traces in main memory and in
//! scratchpad banks.
//!
//! Two placement semantics are modeled, because the difference is the
//! second imprecision the paper identifies in Steinke's allocator
//! (§2): CASA **copies** memory objects to the scratchpad — the main
//! memory image and therefore the cache mapping of every remaining
//! trace is untouched — while Steinke's approach **moves** them,
//! compacting the remaining code so previously non-conflicting traces
//! may suddenly share cache lines.

use crate::trace::{TraceId, TraceSet};
use casa_ir::{BlockId, Program};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A memory region instructions can be fetched from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Cacheable off-chip main memory.
    Main,
    /// Non-cacheable on-chip scratchpad bank (bank 0 unless the
    /// multi-scratchpad extension is used).
    Spm(u8),
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Main => write!(f, "main"),
            Region::Spm(b) => write!(f, "spm{b}"),
        }
    }
}

/// A concrete location: region plus byte address within that region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// The region.
    pub region: Region,
    /// Byte address within the region's address space.
    pub addr: u32,
}

/// How scratchpad-resident traces relate to the main-memory image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementSemantics {
    /// CASA semantics: traces are *copied*; the main-memory image
    /// keeps every trace at its original address.
    Copy,
    /// Steinke semantics: traces are *moved*; remaining traces are
    /// compacted, changing their addresses and cache mapping.
    Move,
}

/// A fully resolved code layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    trace_loc: Vec<Location>,
    block_addr: Vec<u32>,
    glue_addr: Vec<Option<u32>>,
    main_image_size: u32,
    spm_used: Vec<u32>,
    line_size: u32,
    semantics: PlacementSemantics,
}

impl Layout {
    /// Layout with every trace in main memory (the pre-allocation
    /// profiling layout of the paper's fig. 3 workflow).
    pub fn initial(program: &Program, traces: &TraceSet) -> Self {
        Self::with_placement(
            program,
            traces,
            &vec![None; traces.len()],
            PlacementSemantics::Copy,
        )
    }

    /// Layout realizing a scratchpad `placement`.
    ///
    /// `placement[i]` is the scratchpad bank for trace `i`, or `None`
    /// to leave it in main memory. Under [`PlacementSemantics::Copy`]
    /// main-memory addresses are identical to [`Layout::initial`];
    /// under [`PlacementSemantics::Move`] remaining traces are
    /// compacted in trace order at cache-line boundaries.
    ///
    /// Scratchpad copies are packed without NOP padding (the paper
    /// strips padding before allocation), so a bank holds exactly the
    /// sum of allocated [`crate::trace::Trace::code_size`]s.
    ///
    /// # Panics
    ///
    /// Panics if `placement.len() != traces.len()`.
    pub fn with_placement(
        program: &Program,
        traces: &TraceSet,
        placement: &[Option<u8>],
        semantics: PlacementSemantics,
    ) -> Self {
        let order: Vec<TraceId> = traces.traces().iter().map(|t| t.id()).collect();
        Self::with_order(program, traces, &order, placement, semantics)
    }

    /// Layout realizing a scratchpad `placement` with traces laid out
    /// in main memory in the given `order` instead of program order.
    ///
    /// This is the primitive behind code-placement optimizers
    /// (Pettis & Hansen; Tomiyama & Yasuura): reordering traces
    /// changes which cache sets they map to and therefore which
    /// traces conflict.
    ///
    /// # Panics
    ///
    /// Panics if `placement.len() != traces.len()`, or `order` is not
    /// a permutation of all trace ids.
    pub fn with_order(
        program: &Program,
        traces: &TraceSet,
        order: &[TraceId],
        placement: &[Option<u8>],
        semantics: PlacementSemantics,
    ) -> Self {
        assert_eq!(
            placement.len(),
            traces.len(),
            "placement must cover every trace"
        );
        assert_eq!(order.len(), traces.len(), "order must cover every trace");
        {
            let mut seen = vec![false; traces.len()];
            for t in order {
                assert!(!seen[t.index()], "duplicate trace {t} in order");
                seen[t.index()] = true;
            }
        }
        let line = traces.line_size();
        let n_banks = placement
            .iter()
            .flatten()
            .map(|&b| b as usize + 1)
            .max()
            .unwrap_or(1);
        let mut spm_cursor = vec![0u32; n_banks];
        let mut main_cursor = 0u32;
        let mut trace_loc = vec![
            Location {
                region: Region::Main,
                addr: 0
            };
            traces.len()
        ];
        let mut block_addr = vec![0u32; program.blocks().len()];
        let mut glue_addr = vec![None; traces.len()];

        for &tid in order {
            let trace = traces.trace(tid);
            let i = trace.id().index();
            let bank = placement[i];
            // Fetch location of the trace's instructions.
            let loc = match bank {
                Some(b) => {
                    let addr = spm_cursor[b as usize];
                    spm_cursor[b as usize] += trace.code_size();
                    Location {
                        region: Region::Spm(b),
                        addr,
                    }
                }
                None => {
                    let addr = main_cursor;
                    main_cursor += trace.padded_size(line);
                    Location {
                        region: Region::Main,
                        addr,
                    }
                }
            };
            // Under copy semantics an SPM trace still occupies its
            // main-memory slot, keeping every other address fixed.
            if bank.is_some() && semantics == PlacementSemantics::Copy {
                main_cursor += trace.padded_size(line);
            }
            trace_loc[i] = loc;
            let mut off = loc.addr;
            for &b in trace.blocks() {
                block_addr[b.index()] = off;
                off += program.block(b).size();
            }
            if trace.glue_jump_size().is_some() {
                glue_addr[i] = Some(off);
            }
        }

        Layout {
            trace_loc,
            block_addr,
            glue_addr,
            main_image_size: main_cursor,
            spm_used: spm_cursor,
            line_size: line,
            semantics,
        }
    }

    /// Where a trace's code is fetched from.
    pub fn trace_location(&self, trace: TraceId) -> Location {
        self.trace_loc[trace.index()]
    }

    /// Where `block`'s first instruction is fetched from. The block's
    /// region is its trace's region.
    pub fn block_location(&self, traces: &TraceSet, block: BlockId) -> Location {
        let region = self.trace_loc[traces.trace_of(block).index()].region;
        Location {
            region,
            addr: self.block_addr[block.index()],
        }
    }

    /// Location of a trace's appended glue jump, if it has one.
    pub fn glue_location(&self, trace: TraceId) -> Option<Location> {
        let region = self.trace_loc[trace.index()].region;
        self.glue_addr[trace.index()].map(|addr| Location { region, addr })
    }

    /// Addresses of every instruction of `block`, in fetch order.
    pub fn inst_locations<'a>(
        &'a self,
        program: &'a Program,
        traces: &TraceSet,
        block: BlockId,
    ) -> impl Iterator<Item = (Location, u32)> + 'a {
        let start = self.block_location(traces, block);
        program
            .block(block)
            .insts()
            .iter()
            .scan(start.addr, move |addr, inst| {
                let loc = Location {
                    region: start.region,
                    addr: *addr,
                };
                *addr += inst.size();
                Some((loc, inst.size()))
            })
    }

    /// Total bytes of the main-memory code image (padded).
    pub fn main_image_size(&self) -> u32 {
        self.main_image_size
    }

    /// Bytes used in each scratchpad bank.
    pub fn spm_used(&self) -> &[u32] {
        &self.spm_used
    }

    /// The placement semantics this layout was built with.
    pub fn semantics(&self) -> PlacementSemantics {
        self.semantics
    }

    /// Cache line size the layout was padded for.
    pub fn line_size(&self) -> u32 {
        self.line_size
    }

    /// The trace whose main-memory slot covers `addr`, when the layout
    /// keeps it there. Used by the conflict recorder to attribute
    /// misses to memory objects.
    pub fn main_trace_at(&self, traces: &TraceSet, addr: u32) -> Option<TraceId> {
        // Linear scan is fine for the sizes we simulate; the simulator
        // caches a line->trace table instead of calling this per access.
        for t in traces.traces() {
            let loc = self.trace_loc[t.id().index()];
            let (start, size) = match loc.region {
                Region::Main => (loc.addr, t.padded_size(self.line_size)),
                Region::Spm(_) if self.semantics == PlacementSemantics::Copy => {
                    continue; // copied: main slot exists but is never fetched
                }
                Region::Spm(_) => continue,
            };
            if addr >= start && addr < start + size {
                return Some(t.id());
            }
        }
        None
    }
}

/// Check that a placement fits the given bank capacities, returning
/// the per-bank usage.
///
/// # Errors
///
/// Returns `Err((bank, used, capacity))` for the first overflowing
/// bank.
pub fn check_capacity(
    traces: &TraceSet,
    placement: &[Option<u8>],
    capacities: &[u32],
) -> Result<Vec<u32>, (u8, u32, u32)> {
    let mut used = vec![0u32; capacities.len()];
    for t in traces.traces() {
        if let Some(b) = placement[t.id().index()] {
            used[b as usize] += t.code_size();
        }
    }
    for (b, (&u, &cap)) in used.iter().zip(capacities).enumerate() {
        if u > cap {
            return Err((b as u8, u, cap));
        }
    }
    Ok(used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{form_traces, TraceConfig};
    use casa_ir::inst::{InstKind, IsaMode};
    use casa_ir::{Profile, ProgramBuilder};

    /// Two traces: t0 = {a (3 alu, jump)}, t1 = {b (2 alu, exit)}.
    fn two_trace_setup() -> (Program, TraceSet, BlockId, BlockId) {
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let f = bld.function("f");
        let a = bld.block(f);
        let b = bld.block(f);
        bld.push_n(a, InstKind::Alu, 3);
        bld.jump(a, b);
        bld.push_n(b, InstKind::Alu, 2);
        bld.exit(b);
        let p = bld.finish().unwrap();
        let prof = Profile::new();
        let ts = form_traces(
            &p,
            &prof,
            TraceConfig::new(256, 16),
            &casa_obs::Obs::disabled(),
        );
        (p, ts, a, b)
    }

    #[test]
    fn initial_layout_is_aligned_and_sequential() {
        let (p, ts, a, b) = two_trace_setup();
        let l = Layout::initial(&p, &ts);
        // t0: 4 insts = 16B -> padded 16. t1: 2 insts = 8 -> padded 16.
        let la = l.block_location(&ts, a);
        let lb = l.block_location(&ts, b);
        assert_eq!(
            la,
            Location {
                region: Region::Main,
                addr: 0
            }
        );
        assert_eq!(
            lb,
            Location {
                region: Region::Main,
                addr: 16
            }
        );
        assert_eq!(l.main_image_size(), 32);
        assert_eq!(l.spm_used(), &[0]);
    }

    #[test]
    fn copy_semantics_keeps_main_addresses() {
        let (p, ts, a, b) = two_trace_setup();
        let t0 = ts.trace_of(a);
        let placement = {
            let mut v = vec![None; ts.len()];
            v[t0.index()] = Some(0);
            v
        };
        let l = Layout::with_placement(&p, &ts, &placement, PlacementSemantics::Copy);
        // t0 fetched from SPM at 0.
        assert_eq!(
            l.block_location(&ts, a),
            Location {
                region: Region::Spm(0),
                addr: 0
            }
        );
        // t1 keeps its original main address 16 (slot for t0 intact).
        assert_eq!(
            l.block_location(&ts, b),
            Location {
                region: Region::Main,
                addr: 16
            }
        );
        assert_eq!(l.spm_used(), &[16]);
        assert_eq!(l.main_image_size(), 32);
    }

    #[test]
    fn move_semantics_compacts_main_memory() {
        let (p, ts, a, b) = two_trace_setup();
        let t0 = ts.trace_of(a);
        let placement = {
            let mut v = vec![None; ts.len()];
            v[t0.index()] = Some(0);
            v
        };
        let l = Layout::with_placement(&p, &ts, &placement, PlacementSemantics::Move);
        // t1 moves down to address 0: the hole left by t0 is closed.
        assert_eq!(
            l.block_location(&ts, b),
            Location {
                region: Region::Main,
                addr: 0
            }
        );
        assert_eq!(l.main_image_size(), 16);
    }

    #[test]
    fn glue_jump_gets_address_after_blocks() {
        // One block falling through to another with a tight cap, so
        // the first trace carries a glue jump.
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let f = bld.function("f");
        let a = bld.block(f);
        let b = bld.block(f);
        bld.push_n(a, InstKind::Alu, 2);
        bld.fall_through(a, b);
        bld.push(b, InstKind::Alu);
        bld.exit(b);
        let p = bld.finish().unwrap();
        let prof = Profile::new();
        let ts = form_traces(
            &p,
            &prof,
            TraceConfig::new(12, 4),
            &casa_obs::Obs::disabled(),
        );
        let ta = ts.trace_of(a);
        assert_eq!(ts.trace(ta).glue_jump_size(), Some(4));
        let l = Layout::initial(&p, &ts);
        let glue = l.glue_location(ta).expect("glue jump placed");
        // Block a spans [0, 8); glue jump at 8.
        assert_eq!(glue.addr, 8);
        assert_eq!(glue.region, Region::Main);
    }

    #[test]
    fn inst_locations_walk_the_block() {
        let (p, ts, a, _) = two_trace_setup();
        let l = Layout::initial(&p, &ts);
        let addrs: Vec<u32> = l
            .inst_locations(&p, &ts, a)
            .map(|(loc, _)| loc.addr)
            .collect();
        assert_eq!(addrs, vec![0, 4, 8, 12]);
    }

    #[test]
    fn main_trace_at_covers_padding() {
        let (p, ts, a, b) = two_trace_setup();
        let l = Layout::initial(&p, &ts);
        let t0 = ts.trace_of(a);
        let t1 = ts.trace_of(b);
        assert_eq!(l.main_trace_at(&ts, 0), Some(t0));
        assert_eq!(l.main_trace_at(&ts, 15), Some(t0));
        assert_eq!(l.main_trace_at(&ts, 16), Some(t1));
        // Padding of t1: code 8B, padded 16 -> addr 30 still t1.
        assert_eq!(l.main_trace_at(&ts, 30), Some(t1));
        assert_eq!(l.main_trace_at(&ts, 32), None);
    }

    #[test]
    fn capacity_check_flags_overflow() {
        let (_, ts, a, b) = two_trace_setup();
        let mut placement = vec![None; ts.len()];
        placement[ts.trace_of(a).index()] = Some(0);
        placement[ts.trace_of(b).index()] = Some(0);
        // t0 code 16 + t1 code 8 = 24 > 20.
        let err = check_capacity(&ts, &placement, &[20]).unwrap_err();
        assert_eq!(err, (0, 24, 20));
        let ok = check_capacity(&ts, &placement, &[24]).unwrap();
        assert_eq!(ok, vec![24]);
    }

    #[test]
    fn with_order_reverses_addresses() {
        let (p, ts, a, b) = two_trace_setup();
        let t0 = ts.trace_of(a);
        let t1 = ts.trace_of(b);
        let order = vec![t1, t0];
        let l = Layout::with_order(
            &p,
            &ts,
            &order,
            &vec![None; ts.len()],
            PlacementSemantics::Move,
        );
        // t1 (8 B code, padded 16) first, then t0.
        assert_eq!(l.trace_location(t1).addr, 0);
        assert_eq!(l.trace_location(t0).addr, 16);
        assert_eq!(l.block_location(&ts, b).addr, 0);
        assert_eq!(l.block_location(&ts, a).addr, 16);
    }

    #[test]
    #[should_panic(expected = "duplicate trace")]
    fn with_order_rejects_duplicates() {
        let (p, ts, a, _) = two_trace_setup();
        let t0 = ts.trace_of(a);
        let _ = Layout::with_order(
            &p,
            &ts,
            &[t0, t0],
            &vec![None; ts.len()],
            PlacementSemantics::Copy,
        );
    }

    #[test]
    #[should_panic(expected = "placement must cover")]
    fn wrong_placement_length_panics() {
        let (p, ts, _, _) = two_trace_setup();
        let _ = Layout::with_placement(&p, &ts, &[None], PlacementSemantics::Copy);
    }
}
