//! # casa-trace — trace formation and code layout
//!
//! Implements the paper's §3.2 preprocessing: programs are partitioned
//! into **traces** — frequently-executed straight-line paths of basic
//! blocks connected by fall-through edges — which become the *memory
//! objects* (MOs) that the allocators place. Key properties preserved
//! from the paper:
//!
//! * traces are capped below the scratchpad size (larger traces could
//!   never be allocated whole),
//! * a trace whose last block would fall through to code outside the
//!   trace gets an **appended unconditional jump**, making the trace an
//!   atomic unit placeable anywhere in memory,
//! * traces are **padded with NOPs** to the next cache-line boundary in
//!   main memory, so every cache miss is attributable to exactly one
//!   trace, and
//! * the NOP padding is **stripped** before a trace is copied to the
//!   scratchpad (paper §4: `S(x_i)` excludes the padding).
//!
//! The [`layout`] module realizes both placement semantics the paper
//! contrasts: CASA **copies** traces to the scratchpad leaving the main
//! memory image untouched, while Steinke's allocator **moves** them,
//! compacting the remaining code and thereby re-mapping every
//! downstream trace onto different cache lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;
pub mod trace;

pub use layout::{Layout, Location, Region};
pub use trace::{form_traces, Trace, TraceConfig, TraceId, TraceSet};
