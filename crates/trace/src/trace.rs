//! Trace formation (paper §3.2, after Tomiyama & Yasuura).

use casa_ir::{BlockId, Profile, Program, Terminator};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a [`Trace`] within a [`TraceSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TraceId(u32);

impl TraceId {
    /// Create a trace id from a raw index.
    pub fn from_raw(raw: u32) -> Self {
        TraceId(raw)
    }

    /// The raw index of this trace inside [`TraceSet::traces`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Parameters controlling trace formation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Upper bound on the *unpadded* size of a trace in bytes. The
    /// paper caps traces at the scratchpad size so any trace can be
    /// allocated whole.
    pub max_trace_size: u32,
    /// Cache line size in bytes; traces are padded to multiples of it.
    pub line_size: u32,
}

impl TraceConfig {
    /// Config for a scratchpad of `spm_size` bytes and the given cache
    /// line size.
    pub fn new(spm_size: u32, line_size: u32) -> Self {
        assert!(line_size.is_power_of_two(), "line size must be 2^k");
        assert!(spm_size >= line_size, "scratchpad smaller than a line");
        TraceConfig {
            max_trace_size: spm_size,
            line_size,
        }
    }
}

/// One trace: a straight-line path of basic blocks connected by
/// fall-through edges, forming a memory object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    id: TraceId,
    blocks: Vec<BlockId>,
    block_size: u32,
    glue_jump: Option<u32>,
}

impl Trace {
    /// This trace's id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The blocks of the trace, in execution (fall-through) order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Size of the appended unconditional jump in bytes, if the trace
    /// needed one (its last block would otherwise fall through to code
    /// outside the trace).
    pub fn glue_jump_size(&self) -> Option<u32> {
        self.glue_jump
    }

    /// Unpadded code size in bytes: block instructions plus the glue
    /// jump. This is the paper's `S(x_i)` — the size charged against
    /// the scratchpad capacity.
    pub fn code_size(&self) -> u32 {
        self.block_size + self.glue_jump.unwrap_or(0)
    }

    /// Size occupied in main memory: [`Self::code_size`] rounded up to
    /// the next multiple of `line_size` with NOP padding.
    pub fn padded_size(&self, line_size: u32) -> u32 {
        round_up(self.code_size(), line_size)
    }

    /// NOP padding bytes added in main memory.
    pub fn padding(&self, line_size: u32) -> u32 {
        self.padded_size(line_size) - self.code_size()
    }

    /// Instruction fetches of this trace under `profile`: the sum over
    /// member blocks of `executions × block length`, plus one fetch of
    /// the glue jump per traversal of the trace-exit fall-through edge.
    ///
    /// This is the conflict-graph vertex weight `f_i` of the paper.
    pub fn fetches(&self, program: &Program, profile: &Profile) -> u64 {
        let mut f: u64 = self
            .blocks
            .iter()
            .map(|&b| profile.fetches(program, b))
            .sum();
        if self.glue_jump.is_some() {
            let last = *self.blocks.last().expect("trace is never empty");
            if let Some(ft) = program.block(last).terminator().fallthrough_successor() {
                f += profile.edge_count(last, ft);
            }
        }
        f
    }

    /// Number of blocks in the trace.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the trace has no blocks (never true for built traces).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// The result of trace formation: a partition of all program blocks
/// into traces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSet {
    traces: Vec<Trace>,
    block_trace: Vec<TraceId>,
    line_size: u32,
}

impl TraceSet {
    /// All traces, indexed by [`TraceId::index`]. Ordered by the
    /// original program position of their first block, so laying them
    /// out in this order reproduces the source layout.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// The trace containing `block`.
    pub fn trace_of(&self, block: BlockId) -> TraceId {
        self.block_trace[block.index()]
    }

    /// Look up a trace.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this set.
    pub fn trace(&self, id: TraceId) -> &Trace {
        &self.traces[id.index()]
    }

    /// The cache line size traces were padded for.
    pub fn line_size(&self) -> u32 {
        self.line_size
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether there are no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total padded size of all traces (the main-memory image size).
    pub fn total_padded_size(&self) -> u32 {
        self.traces
            .iter()
            .map(|t| t.padded_size(self.line_size))
            .sum()
    }
}

fn round_up(v: u32, to: u32) -> u32 {
    v.div_ceil(to) * to
}

/// Partition `program` into traces.
///
/// Seeds are chosen hottest-first (by block execution count); each
/// seed grows forward along fall-through edges while the target block
/// is unassigned, is in the same function, is the seed's *hottest*
/// continuation, and the grown trace still fits `config.max_trace_size`
/// (including a potential glue jump). Every block ends up in exactly
/// one trace; cold blocks become singleton traces.
///
/// A single block larger than the cap becomes a singleton trace that
/// exceeds `max_trace_size`; such a trace can never be allocated to
/// the scratchpad (the capacity constraint excludes it), matching the
/// paper's rule that only traces smaller than the scratchpad are
/// candidates.
///
/// Formation is wrapped in a `trace.form` span on `obs`, recording how
/// many traces were built, how many needed glue jumps, the total NOP
/// padding, and a histogram of padded trace sizes. Pass
/// [`casa_obs::Obs::disabled`] (free) when observability is not
/// wanted: the result is identical either way.
pub fn form_traces(
    program: &Program,
    profile: &Profile,
    config: TraceConfig,
    obs: &casa_obs::Obs,
) -> TraceSet {
    let span = obs.span("trace.form");
    let ts = form_traces_impl(program, profile, config);
    obs.add("trace.objects", ts.len() as u64);
    obs.add(
        "trace.glue_jumps",
        ts.traces()
            .iter()
            .filter(|t| t.glue_jump_size().is_some())
            .count() as u64,
    );
    obs.add(
        "trace.padding_bytes",
        ts.traces()
            .iter()
            .map(|t| u64::from(t.padding(ts.line_size())))
            .sum(),
    );
    for t in ts.traces() {
        obs.record(
            "trace.object_size",
            u64::from(t.padded_size(ts.line_size())),
        );
    }
    drop(span);
    ts
}

fn form_traces_impl(program: &Program, profile: &Profile, config: TraceConfig) -> TraceSet {
    let n = program.blocks().len();
    let jump_size = program.mode().inst_bytes();
    let mut assigned = vec![false; n];

    // Hottest blocks first; ties by id for determinism.
    let mut seeds: Vec<BlockId> = program.blocks().iter().map(|b| b.id()).collect();
    seeds.sort_by_key(|&b| (std::cmp::Reverse(profile.block_count(b)), b));

    let mut raw_traces: Vec<Vec<BlockId>> = Vec::new();
    for seed in seeds {
        if assigned[seed.index()] {
            continue;
        }
        let mut blocks = vec![seed];
        assigned[seed.index()] = true;
        let mut size = program.block(seed).size();
        // Grow forward along fall-through edges.
        let mut cur = seed;
        loop {
            let term = program.block(cur).terminator();
            let Some(next) = term.fallthrough_successor() else {
                break;
            };
            if assigned[next.index()]
                || program.block(next).function() != program.block(cur).function()
            {
                break;
            }
            // Only extend along the dominant direction out of `cur`:
            // if the branch is taken more often than it falls through,
            // the fall-through block is cold relative to this path.
            if let Terminator::Branch { taken, fallthrough } = term {
                if profile.edge_count(cur, taken) > profile.edge_count(cur, fallthrough) {
                    break;
                }
            }
            let next_size = program.block(next).size();
            // Reserve room for a glue jump: the grown trace may still
            // end in a fall-through.
            if size + next_size + jump_size > config.max_trace_size {
                break;
            }
            blocks.push(next);
            assigned[next.index()] = true;
            size += next_size;
            cur = next;
        }
        raw_traces.push(blocks);
    }

    // Order traces by original program position of their first block.
    raw_traces.sort_by_key(|blocks| blocks[0]);

    let mut traces = Vec::with_capacity(raw_traces.len());
    let mut block_trace = vec![TraceId::from_raw(0); n];
    for (i, blocks) in raw_traces.into_iter().enumerate() {
        let id = TraceId::from_raw(i as u32);
        let block_size: u32 = blocks.iter().map(|&b| program.block(b).size()).sum();
        let last = *blocks.last().expect("non-empty");
        // A glue jump is needed when the last block's terminator can
        // fall through to a block outside this trace.
        let glue_jump = match program.block(last).terminator().fallthrough_successor() {
            Some(ft) if !blocks.contains(&ft) => Some(jump_size),
            _ => None,
        };
        for &b in &blocks {
            block_trace[b.index()] = id;
        }
        traces.push(Trace {
            id,
            blocks,
            block_size,
            glue_jump,
        });
    }

    TraceSet {
        traces,
        block_trace,
        line_size: config.line_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unobserved formation; shadows the canonical 4-arg function so
    /// the many assertions below stay focused on trace shapes.
    fn form_traces(program: &Program, profile: &Profile, config: TraceConfig) -> TraceSet {
        super::form_traces(program, profile, config, &casa_obs::Obs::disabled())
    }
    use casa_ir::inst::{InstKind, IsaMode};
    use casa_ir::ProgramBuilder;

    /// Three blocks in a fall-through chain plus one jump target.
    fn chain_program() -> (Program, [BlockId; 4]) {
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("f");
        let a = b.block(f);
        let c = b.block(f);
        let d = b.block(f);
        let e = b.block(f);
        b.push_n(a, InstKind::Alu, 2);
        b.fall_through(a, c);
        b.push_n(c, InstKind::Alu, 2);
        b.fall_through(c, d);
        b.push_n(d, InstKind::Alu, 1);
        b.jump(d, e);
        b.push(e, InstKind::Alu);
        b.exit(e);
        (b.finish().unwrap(), [a, c, d, e])
    }

    fn hot_profile(blocks: &[BlockId]) -> Profile {
        let mut p = Profile::new();
        for &b in blocks {
            p.add_block(b, 100);
        }
        p
    }

    #[test]
    fn chain_merges_into_one_trace() {
        let (p, ids) = chain_program();
        let prof = hot_profile(&ids);
        let ts = form_traces(&p, &prof, TraceConfig::new(1024, 16));
        // a+c+d merge (fall-through chain ending in jump); e separate.
        assert_eq!(ts.len(), 2);
        let t0 = ts.trace(ts.trace_of(ids[0]));
        assert_eq!(t0.blocks(), &ids[..3]);
        assert_eq!(ts.trace_of(ids[1]), t0.id());
        assert_eq!(ts.trace_of(ids[2]), t0.id());
        assert_ne!(ts.trace_of(ids[3]), t0.id());
        // Ends in an explicit jump: no glue needed.
        assert_eq!(t0.glue_jump_size(), None);
    }

    #[test]
    fn size_cap_limits_growth() {
        let (p, ids) = chain_program();
        let prof = hot_profile(&ids);
        // a = 8B, c = 8B, d = 8B (incl jump). Cap 20B: a+c=16 +4 glue = 20 fits,
        // adding d (8B) would need 24+ -> stop after c.
        let ts = form_traces(&p, &prof, TraceConfig::new(20, 4));
        let t0 = ts.trace(ts.trace_of(ids[0]));
        assert_eq!(t0.len(), 2);
        // Trace ends at c which falls through to d outside the trace.
        assert_eq!(t0.glue_jump_size(), Some(4));
        assert_eq!(t0.code_size(), 8 + 8 + 4);
    }

    #[test]
    fn padding_rounds_to_line() {
        let (p, ids) = chain_program();
        let prof = hot_profile(&ids);
        let ts = form_traces(&p, &prof, TraceConfig::new(1024, 16));
        let t0 = ts.trace(ts.trace_of(ids[0]));
        // code = 2+2 alu + 1 alu + 1 jump = 6 insts * 4B = 24B -> pad to 32.
        assert_eq!(t0.code_size(), 24);
        assert_eq!(t0.padded_size(16), 32);
        assert_eq!(t0.padding(16), 8);
    }

    #[test]
    fn every_block_assigned_exactly_once() {
        let (p, ids) = chain_program();
        let prof = hot_profile(&ids);
        let ts = form_traces(&p, &prof, TraceConfig::new(64, 16));
        let mut seen = vec![0usize; p.blocks().len()];
        for t in ts.traces() {
            for &b in t.blocks() {
                seen[b.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn fetches_count_glue_jump_traversals() {
        let (p, ids) = chain_program();
        let mut prof = Profile::new();
        prof.add_block(ids[0], 10);
        prof.add_block(ids[1], 10);
        prof.add_edge(ids[0], ids[1], 10);
        // Cap so the trace is only {a}: a falls through to c.
        let ts = form_traces(&p, &prof, TraceConfig::new(12, 4));
        let ta = ts.trace(ts.trace_of(ids[0]));
        assert_eq!(ta.blocks(), &[ids[0]]);
        assert_eq!(ta.glue_jump_size(), Some(4));
        // 10 execs * 2 insts + 10 glue-jump fetches.
        assert_eq!(ta.fetches(&p, &prof), 30);
    }

    #[test]
    fn observed_formation_matches_plain_and_records_metrics() {
        let (p, ids) = chain_program();
        let prof = hot_profile(&ids);
        let config = TraceConfig::new(20, 4);
        let plain = form_traces(&p, &prof, config);

        let obs = casa_obs::Obs::enabled();
        let observed = super::form_traces(&p, &prof, config, &obs);
        assert_eq!(plain, observed);

        let snap = obs.snapshot();
        use casa_obs::MetricValue;
        assert_eq!(
            snap.get("trace.objects"),
            Some(&MetricValue::Counter(observed.len() as u64))
        );
        let glue = observed
            .traces()
            .iter()
            .filter(|t| t.glue_jump_size().is_some())
            .count() as u64;
        assert_eq!(
            snap.get("trace.glue_jumps"),
            Some(&MetricValue::Counter(glue))
        );
        match snap.get("trace.object_size") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, observed.len() as u64),
            other => panic!("expected size histogram, got {other:?}"),
        }
        // One span covering formation.
        assert_eq!(obs.events().len(), 1);

        // A disabled Obs records nothing but returns the same traces.
        let off = casa_obs::Obs::disabled();
        assert_eq!(super::form_traces(&p, &prof, config, &off), plain);
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn cold_fallthrough_not_merged_when_branch_prefers_taken() {
        // head branches: taken (hot) vs fallthrough (cold).
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("f");
        let head = b.block(f);
        let cold = b.block(f);
        let hot = b.block(f);
        b.push(head, InstKind::Alu);
        b.branch(head, hot, cold);
        b.push(cold, InstKind::Alu);
        b.jump(cold, hot);
        b.push(hot, InstKind::Alu);
        b.exit(hot);
        let p = b.finish().unwrap();
        let mut prof = Profile::new();
        prof.add_block(head, 100);
        prof.add_block(hot, 95);
        prof.add_block(cold, 5);
        prof.add_edge(head, hot, 95);
        prof.add_edge(head, cold, 5);
        prof.add_edge(cold, hot, 5);
        let ts = form_traces(&p, &prof, TraceConfig::new(1024, 16));
        // head must NOT merge with its cold fall-through.
        assert_ne!(ts.trace_of(head), ts.trace_of(cold));
    }

    #[test]
    fn trace_order_follows_program_order() {
        let (p, ids) = chain_program();
        // Make e hottest so it seeds first.
        let mut prof = Profile::new();
        prof.add_block(ids[3], 1000);
        prof.add_block(ids[0], 1);
        let ts = form_traces(&p, &prof, TraceConfig::new(1024, 16));
        // Still ordered by first-block position: trace 0 starts at a.
        assert_eq!(ts.traces()[0].blocks()[0], ids[0]);
    }

    #[test]
    fn oversized_block_becomes_unallocatable_singleton() {
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("f");
        let x = b.block(f);
        b.push_n(x, InstKind::Alu, 100); // 400B > 64B cap
        b.exit(x);
        let p = b.finish().unwrap();
        let prof = Profile::new();
        let ts = form_traces(&p, &prof, TraceConfig::new(64, 16));
        assert_eq!(ts.len(), 1);
        let t = &ts.traces()[0];
        assert_eq!(t.len(), 1);
        // Larger than the cap: the capacity constraint will exclude it.
        assert!(t.code_size() > 64);
    }

    #[test]
    fn total_padded_size_sums() {
        let (p, ids) = chain_program();
        let prof = hot_profile(&ids);
        let ts = form_traces(&p, &prof, TraceConfig::new(1024, 16));
        let sum: u32 = ts.traces().iter().map(|t| t.padded_size(16)).sum();
        assert_eq!(ts.total_padded_size(), sum);
    }
}
