//! Multi-threaded writer storm over `Obs::child()` registries sharing
//! one flight ring: per-child metric counts must be exact (isolated
//! registries lose nothing) and the shared ring must stay bounded at
//! `CASA_FLIGHT_CAP` with honest drop accounting.

use casa_obs::{MetricValue, Obs};

const FLIGHT_CAP: usize = 64;
const WRITERS: usize = 8;
const OPS_PER_WRITER: u64 = 500;

#[test]
fn writer_storm_keeps_registries_exact_and_ring_bounded() {
    // Sized via env because `Obs::enabled()` builds its recorder with
    // `FlightRecorder::from_env()`. This is the only test in this
    // integration binary, so nothing races the variable.
    std::env::set_var("CASA_FLIGHT_CAP", FLIGHT_CAP.to_string());
    let parent = Obs::enabled();
    assert_eq!(parent.flight().unwrap().capacity(), FLIGHT_CAP);

    let children: Vec<Obs> = (0..WRITERS).map(|_| parent.child()).collect();
    std::thread::scope(|s| {
        for (t, child) in children.iter().enumerate() {
            s.spawn(move || {
                for j in 0..OPS_PER_WRITER {
                    child.add("storm.count", 1);
                    child.record("storm.hist", j + 1);
                    if j % 64 == 0 {
                        child.gauge_set("storm.gauge", t as f64);
                    }
                }
            });
        }
    });

    // No lost increments: every child registry holds exactly its own
    // writes, unpolluted by its siblings.
    let mut merged_total = 0u64;
    for child in &children {
        let snap = child.snapshot();
        assert_eq!(
            snap.get("storm.count"),
            Some(&MetricValue::Counter(OPS_PER_WRITER))
        );
        match snap.get("storm.hist") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, OPS_PER_WRITER);
                assert_eq!(h.sum, OPS_PER_WRITER * (OPS_PER_WRITER + 1) / 2);
            }
            other => panic!("histogram expected, got {other:?}"),
        }
        parent.merge_metrics(&snap);
        merged_total += OPS_PER_WRITER;
    }
    // Merging the isolated snapshots into the parent (what the sweep
    // does per finished cell) loses nothing either.
    assert_eq!(
        parent.snapshot().get("storm.count"),
        Some(&MetricValue::Counter(merged_total))
    );

    // One shared ring, bounded at CASA_FLIGHT_CAP, with every evicted
    // event counted. Gauge writes fire every 64th iteration from each
    // writer (including j == 0).
    let gauge_writes = WRITERS as u64 * OPS_PER_WRITER.div_ceil(64);
    let total_pushes = WRITERS as u64 * OPS_PER_WRITER * 2 + gauge_writes;
    let flight = parent.flight().unwrap();
    assert_eq!(flight.len(), FLIGHT_CAP);
    assert_eq!(flight.dropped(), total_pushes - FLIGHT_CAP as u64);
    // The surviving tail is contiguous: sequence numbers are the last
    // FLIGHT_CAP of the total push count, in order.
    let events = parent.flight_events();
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    let expect: Vec<u64> = (total_pushes - FLIGHT_CAP as u64..total_pushes).collect();
    assert_eq!(seqs, expect);
}
