//! Hierarchical spans with monotonic timings.
//!
//! A [`TraceCollector`] accumulates span and instant events from any
//! number of threads; timestamps are microseconds since the
//! collector's epoch, measured with [`std::time::Instant`] (monotonic,
//! immune to wall-clock steps). Spans are RAII guards ([`Span`]):
//! opening one records a begin event and pushes it on the current
//! thread's span stack, dropping it fills in the duration. Parent
//! links are recorded explicitly at begin time, so tree reconstruction
//! does not depend on timestamp resolution.
//!
//! Events re-imported from an exported Chrome trace lose the explicit
//! parent links; [`span_tree`] falls back to timestamp-containment
//! nesting in that case.
//!
//! Live consumers (the `/events` SSE endpoint of [`crate::serve`])
//! attach through [`TraceCollector::subscribe`]: a **bounded** channel
//! that tees every span begin/end and instant event as a
//! [`StreamEvent`]. Subscribers never slow the instrumented path — a
//! full channel drops the event (counted in
//! [`TraceCollector::subscriber_dropped`]) and a disconnected
//! subscriber is pruned on the next notification.

use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// A typed argument attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
}

/// What kind of event a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration span (Chrome phase `X`).
    Span,
    /// A point event (Chrome phase `i`).
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name.
    pub name: String,
    /// Span or instant.
    pub kind: EventKind,
    /// Track ordinal: threads are numbered in first-event order.
    pub tid: u32,
    /// Index of the enclosing span in the event list, if known.
    pub parent: Option<usize>,
    /// Microseconds since the collector epoch.
    pub ts_us: u64,
    /// Span duration in microseconds; `None` while still open (or for
    /// instant events).
    pub dur_us: Option<u64>,
    /// Attached arguments, in insertion order.
    pub args: Vec<(String, ArgValue)>,
}

/// One live notification tee'd to a subscriber: the collector's view
/// of a span opening, a span closing (duration filled in), or an
/// instant event firing.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A span just opened; `dur_us` is `None`.
    SpanBegin(TraceEvent),
    /// A span just closed; `dur_us` is filled in.
    SpanEnd(TraceEvent),
    /// An instant event fired.
    Instant(TraceEvent),
}

impl StreamEvent {
    /// Stable lowercase tag (the SSE `event:` field).
    pub fn kind_str(&self) -> &'static str {
        match self {
            StreamEvent::SpanBegin(_) => "span_begin",
            StreamEvent::SpanEnd(_) => "span_end",
            StreamEvent::Instant(_) => "instant",
        }
    }

    /// The carried event.
    pub fn event(&self) -> &TraceEvent {
        match self {
            StreamEvent::SpanBegin(e) | StreamEvent::SpanEnd(e) | StreamEvent::Instant(e) => e,
        }
    }
}

#[derive(Debug, Default)]
struct CollectorState {
    events: Vec<TraceEvent>,
    /// Thread ordinal assignment, in first-event order.
    threads: Vec<ThreadId>,
    /// Per-ordinal stack of open span indices.
    stacks: Vec<Vec<usize>>,
    /// Live subscribers (bounded channels) with their registration
    /// ids; pruned when disconnected or explicitly unsubscribed.
    subscribers: Vec<(SubscriberId, SyncSender<StreamEvent>)>,
    /// Registration id handed to the next subscriber.
    next_sub_id: u64,
    /// Events dropped because a subscriber's channel was full.
    sub_dropped: u64,
}

impl CollectorState {
    /// Fan an event out to every subscriber without ever blocking: a
    /// full channel drops the event (counted), a dead one is pruned.
    fn notify(&mut self, ev: &StreamEvent) {
        let mut i = 0;
        while i < self.subscribers.len() {
            match self.subscribers[i].1.try_send(ev.clone()) {
                Ok(()) => i += 1,
                Err(TrySendError::Full(_)) => {
                    self.sub_dropped += 1;
                    i += 1;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.subscribers.swap_remove(i);
                }
            }
        }
    }
}

/// Opaque handle identifying one live subscription, returned by
/// [`TraceCollector::subscribe_tracked`] and accepted by
/// [`TraceCollector::unsubscribe`]. Send-failure pruning inside
/// `notify` still works without it; the id exists so a serving loop
/// can drop its tee **immediately** when the client goes away instead
/// of waiting for the next event to flow (which, on an idle
/// collector, never comes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriberId(u64);

/// Thread-safe accumulator of span / instant events.
#[derive(Debug)]
pub struct TraceCollector {
    epoch: Instant,
    state: Mutex<CollectorState>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::new()
    }
}

impl TraceCollector {
    /// A fresh collector; its epoch is `now`.
    pub fn new() -> Self {
        TraceCollector {
            epoch: Instant::now(),
            state: Mutex::new(CollectorState::default()),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Microseconds elapsed since the collector's epoch — the timebase
    /// every event in this collector (and the flight recorder sharing
    /// it) is stamped with.
    pub fn elapsed_us(&self) -> u64 {
        self.now_us()
    }

    fn ordinal(state: &mut CollectorState, id: ThreadId) -> u32 {
        if let Some(i) = state.threads.iter().position(|&t| t == id) {
            return i as u32;
        }
        state.threads.push(id);
        state.stacks.push(Vec::new());
        (state.threads.len() - 1) as u32
    }

    /// Open a span; the returned guard closes it on drop.
    pub fn begin_span(
        self: &Arc<Self>,
        name: impl Into<String>,
        args: Vec<(String, ArgValue)>,
    ) -> Span {
        let ts = self.now_us();
        let mut st = self.state.lock().unwrap();
        let tid = Self::ordinal(&mut st, std::thread::current().id());
        let parent = st.stacks[tid as usize].last().copied();
        let idx = st.events.len();
        st.events.push(TraceEvent {
            name: name.into(),
            kind: EventKind::Span,
            tid,
            parent,
            ts_us: ts,
            dur_us: None,
            args,
        });
        st.stacks[tid as usize].push(idx);
        let tee = StreamEvent::SpanBegin(st.events[idx].clone());
        st.notify(&tee);
        Span {
            inner: Some((Arc::clone(self), idx)),
        }
    }

    fn end_span(&self, idx: usize) {
        let ts = self.now_us();
        let mut st = self.state.lock().unwrap();
        let ev = &mut st.events[idx];
        ev.dur_us = Some(ts.saturating_sub(ev.ts_us));
        let tid = ev.tid as usize;
        let tee = StreamEvent::SpanEnd(st.events[idx].clone());
        // Guards drop LIFO per thread in normal use; `retain` keeps
        // the stack sane even if one escapes its scope out of order.
        st.stacks[tid].retain(|&i| i != idx);
        st.notify(&tee);
    }

    /// Record a point event on the current thread.
    pub fn instant(&self, name: impl Into<String>, args: Vec<(String, ArgValue)>) {
        let ts = self.now_us();
        let mut st = self.state.lock().unwrap();
        let tid = Self::ordinal(&mut st, std::thread::current().id());
        let parent = st.stacks[tid as usize].last().copied();
        st.events.push(TraceEvent {
            name: name.into(),
            kind: EventKind::Instant,
            tid,
            parent,
            ts_us: ts,
            dur_us: None,
            args,
        });
        let tee = StreamEvent::Instant(st.events.last().expect("just pushed").clone());
        st.notify(&tee);
    }

    /// Attach a live subscriber: returns a **replay** of everything
    /// recorded so far (closed spans as [`StreamEvent::SpanEnd`], still
    /// open ones as [`StreamEvent::SpanBegin`]) plus a bounded channel
    /// that receives every subsequent event. Replay and registration
    /// happen under one lock, so no event is missed or duplicated
    /// between them. A subscriber that falls `capacity` events behind
    /// loses events (see [`Self::subscriber_dropped`]); one that is
    /// dropped is pruned on the next notification.
    pub fn subscribe(&self, capacity: usize) -> (Vec<StreamEvent>, Receiver<StreamEvent>) {
        let (replay, rx, _id) = self.subscribe_tracked(capacity);
        (replay, rx)
    }

    /// Like [`Self::subscribe`], but also returns a [`SubscriberId`]
    /// the caller passes to [`Self::unsubscribe`] the moment it stops
    /// reading. Long-lived serving loops must use this form: relying
    /// on send-failure pruning alone leaks the channel (and its
    /// buffered events) until the *next* notification, which on an
    /// idle collector is forever.
    pub fn subscribe_tracked(
        &self,
        capacity: usize,
    ) -> (Vec<StreamEvent>, Receiver<StreamEvent>, SubscriberId) {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
        let mut st = self.state.lock().unwrap();
        let replay = st
            .events
            .iter()
            .map(|e| match (e.kind, e.dur_us) {
                (EventKind::Span, Some(_)) => StreamEvent::SpanEnd(e.clone()),
                (EventKind::Span, None) => StreamEvent::SpanBegin(e.clone()),
                (EventKind::Instant, _) => StreamEvent::Instant(e.clone()),
            })
            .collect();
        let id = SubscriberId(st.next_sub_id);
        st.next_sub_id += 1;
        st.subscribers.push((id, tx));
        (replay, rx, id)
    }

    /// Drop the subscription registered under `id`; returns whether it
    /// was still present (false when send-failure pruning already
    /// removed it, or on a double unsubscribe). Idempotent.
    pub fn unsubscribe(&self, id: SubscriberId) -> bool {
        let mut st = self.state.lock().unwrap();
        let before = st.subscribers.len();
        st.subscribers.retain(|(sid, _)| *sid != id);
        st.subscribers.len() != before
    }

    /// Live subscribers currently attached (dead ones may linger until
    /// the next notification prunes them).
    pub fn subscriber_count(&self) -> usize {
        self.state.lock().unwrap().subscribers.len()
    }

    /// Events dropped across all subscribers because a bounded channel
    /// was full.
    pub fn subscriber_dropped(&self) -> u64 {
        self.state.lock().unwrap().sub_dropped
    }

    /// Snapshot all events. Spans still open are reported with their
    /// duration so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        let now = self.now_us();
        let st = self.state.lock().unwrap();
        st.events
            .iter()
            .map(|e| {
                let mut e = e.clone();
                if e.kind == EventKind::Span && e.dur_us.is_none() {
                    e.dur_us = Some(now.saturating_sub(e.ts_us));
                }
                e
            })
            .collect()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII guard for an open span; ends the span when dropped. A no-op
/// guard ([`Span::noop`]) is free.
#[must_use = "a span measures the scope it is alive in"]
#[derive(Debug)]
pub struct Span {
    inner: Option<(Arc<TraceCollector>, usize)>,
}

impl Span {
    /// A guard that records nothing.
    pub fn noop() -> Span {
        Span { inner: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((collector, idx)) = self.inner.take() {
            collector.end_span(idx);
        }
    }
}

/// One row of an aggregated span tree: siblings with the same name are
/// merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Nesting depth (0 = root).
    pub depth: usize,
    /// Span name.
    pub name: String,
    /// Number of merged spans.
    pub count: u64,
    /// Total duration, microseconds.
    pub total_us: u64,
    /// Duration not covered by child spans, microseconds.
    pub self_us: u64,
}

/// Nesting fallback for events without parent links (e.g. re-imported
/// Chrome traces): a span's parent is the most recent earlier span on
/// the same track that contains it.
fn containment_parents(events: &[TraceEvent]) -> Vec<Option<usize>> {
    let mut parents = vec![None; events.len()];
    let mut stacks: Vec<Vec<usize>> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let tid = e.tid as usize;
        if stacks.len() <= tid {
            stacks.resize(tid + 1, Vec::new());
        }
        let end = e.ts_us + e.dur_us.unwrap_or(0);
        let stack = &mut stacks[tid];
        while let Some(&top) = stack.last() {
            let t = &events[top];
            let t_end = t.ts_us + t.dur_us.unwrap_or(0);
            // Pop spans that closed strictly before this one starts;
            // on equal boundaries insertion order decides (earlier
            // event = outer scope).
            if t.ts_us <= e.ts_us && end <= t_end {
                break;
            }
            stack.pop();
        }
        parents[i] = stack.last().copied();
        if e.kind == EventKind::Span {
            stack.push(i);
        }
    }
    parents
}

/// Aggregate spans into a tree, merging same-name siblings; rows come
/// out in depth-first order (children ordered by first occurrence).
pub fn span_tree(events: &[TraceEvent]) -> Vec<SpanSummary> {
    let parents: Vec<Option<usize>> = if events.iter().any(|e| e.parent.is_some()) {
        events.iter().map(|e| e.parent).collect()
    } else {
        containment_parents(events)
    };
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); events.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if e.kind != EventKind::Span {
            continue;
        }
        match parents[i] {
            Some(p) if events[p].kind == EventKind::Span => children[p].push(i),
            _ => roots.push(i),
        }
    }

    fn emit(
        events: &[TraceEvent],
        children: &[Vec<usize>],
        group: &[usize],
        depth: usize,
        out: &mut Vec<SpanSummary>,
    ) {
        // Merge same-name spans in this sibling group, keeping first
        // occurrence order.
        let mut names: Vec<&str> = Vec::new();
        for &i in group {
            if !names.contains(&events[i].name.as_str()) {
                names.push(&events[i].name);
            }
        }
        for name in names {
            let members: Vec<usize> = group
                .iter()
                .copied()
                .filter(|&i| events[i].name == name)
                .collect();
            let total: u64 = members.iter().map(|&i| events[i].dur_us.unwrap_or(0)).sum();
            let child_total: u64 = members
                .iter()
                .flat_map(|&i| &children[i])
                .map(|&c| events[c].dur_us.unwrap_or(0))
                .sum();
            let row = SpanSummary {
                depth,
                name: name.to_string(),
                count: members.len() as u64,
                total_us: total,
                self_us: total.saturating_sub(child_total),
            };
            out.push(row);
            let grand: Vec<usize> = members
                .iter()
                .flat_map(|&i| children[i].iter().copied())
                .collect();
            if !grand.is_empty() {
                emit(events, children, &grand, depth + 1, out);
            }
        }
    }

    let mut out = Vec::new();
    emit(events, &children, &roots, 0, &mut out);
    out
}

/// Render [`span_tree`] as a fixed-width table.
pub fn render_span_table(events: &[TraceEvent]) -> String {
    let rows = span_tree(events);
    let mut s = String::new();
    s.push_str(&format!(
        "{:<44} {:>7} {:>12} {:>12}\n",
        "span", "calls", "total ms", "self ms"
    ));
    for r in &rows {
        let name = format!("{}{}", "  ".repeat(r.depth), r.name);
        s.push_str(&format!(
            "{:<44} {:>7} {:>12.3} {:>12.3}\n",
            name,
            r.count,
            r.total_us as f64 / 1000.0,
            r.self_us as f64 / 1000.0
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, tid: u32, parent: Option<usize>, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            kind: EventKind::Span,
            tid,
            parent,
            ts_us: ts,
            dur_us: Some(dur),
            args: Vec::new(),
        }
    }

    #[test]
    fn guards_nest_and_time() {
        let c = Arc::new(TraceCollector::new());
        {
            let _outer = c.begin_span("outer", Vec::new());
            {
                let _inner = c.begin_span("inner", Vec::new());
                c.instant("tick", vec![("n".to_string(), ArgValue::U64(1))]);
            }
        }
        let events = c.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[0].parent, None);
        assert_eq!(events[1].parent, Some(0), "inner nests under outer");
        assert_eq!(events[2].parent, Some(1), "instant nests under inner");
        assert!(events[0].dur_us.unwrap() >= events[1].dur_us.unwrap());
    }

    #[test]
    fn tree_merges_same_name_siblings() {
        let events = vec![
            ev("run", 0, None, 0, 100),
            ev("cell", 0, Some(0), 0, 40),
            ev("solve", 0, Some(1), 10, 20),
            ev("cell", 0, Some(0), 40, 40),
            ev("solve", 0, Some(3), 50, 30),
        ];
        let rows = span_tree(&events);
        assert_eq!(rows.len(), 3);
        assert_eq!((rows[0].name.as_str(), rows[0].count), ("run", 1));
        assert_eq!((rows[1].name.as_str(), rows[1].count), ("cell", 2));
        assert_eq!(rows[1].total_us, 80);
        assert_eq!(rows[1].self_us, 80 - 50);
        assert_eq!((rows[2].name.as_str(), rows[2].count), ("solve", 2));
        assert_eq!(rows[2].depth, 2);
    }

    #[test]
    fn containment_fallback_reconstructs_nesting() {
        let mut events = vec![
            ev("root", 0, None, 0, 100),
            ev("child", 0, None, 10, 20),
            ev("sibling", 0, None, 40, 10),
            ev("other-thread", 1, None, 0, 50),
        ];
        for e in &mut events {
            e.parent = None;
        }
        let rows = span_tree(&events);
        let root = rows.iter().find(|r| r.name == "root").unwrap();
        assert_eq!(root.depth, 0);
        assert_eq!(rows.iter().find(|r| r.name == "child").unwrap().depth, 1);
        assert_eq!(rows.iter().find(|r| r.name == "sibling").unwrap().depth, 1);
        assert_eq!(
            rows.iter()
                .find(|r| r.name == "other-thread")
                .unwrap()
                .depth,
            0,
            "tracks do not nest across threads"
        );
        assert_eq!(root.self_us, 100 - 30);
    }

    #[test]
    fn render_produces_indented_rows() {
        let events = vec![ev("a", 0, None, 0, 1000), ev("b", 0, Some(0), 0, 500)];
        let table = render_span_table(&events);
        assert!(table.contains("a "));
        assert!(table.contains("  b"));
        assert!(table.contains("1.000"));
    }

    #[test]
    fn open_spans_report_partial_duration() {
        let c = Arc::new(TraceCollector::new());
        let _open = c.begin_span("open", Vec::new());
        let events = c.events();
        assert_eq!(events.len(), 1);
        assert!(events[0].dur_us.is_some(), "open span gets duration-so-far");
    }

    #[test]
    fn collector_is_send_sync() {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceCollector>();
    }

    #[test]
    fn subscribers_get_replay_then_live_events() {
        let c = Arc::new(TraceCollector::new());
        {
            let _g = c.begin_span("history", Vec::new());
        }
        let (replay, rx) = c.subscribe(16);
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].kind_str(), "span_end");
        assert_eq!(replay[0].event().name, "history");
        {
            let _g = c.begin_span("live", Vec::new());
            c.instant("tick", Vec::new());
        }
        let kinds: Vec<&str> = rx.try_iter().map(|e| e.kind_str()).collect();
        assert_eq!(kinds, vec!["span_begin", "instant", "span_end"]);
        assert_eq!(c.subscriber_count(), 1);
    }

    #[test]
    fn open_spans_replay_as_begin() {
        let c = Arc::new(TraceCollector::new());
        let _open = c.begin_span("still-open", Vec::new());
        let (replay, _rx) = c.subscribe(4);
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].kind_str(), "span_begin");
        assert_eq!(replay[0].event().dur_us, None);
    }

    #[test]
    fn full_subscriber_drops_events_without_blocking() {
        let c = Arc::new(TraceCollector::new());
        let (_replay, rx) = c.subscribe(2);
        for i in 0..5 {
            c.instant(format!("e{i}"), Vec::new());
        }
        // Channel holds the first two; the rest were dropped, counted,
        // and the instrumented path never blocked.
        assert_eq!(rx.try_iter().count(), 2);
        assert_eq!(c.subscriber_dropped(), 3);
    }

    #[test]
    fn disconnected_subscribers_are_pruned() {
        let c = Arc::new(TraceCollector::new());
        let (_replay, rx) = c.subscribe(4);
        assert_eq!(c.subscriber_count(), 1);
        drop(rx);
        c.instant("after-drop", Vec::new());
        assert_eq!(c.subscriber_count(), 0);
        // Disconnection is not a drop: nothing was lost to a full
        // buffer.
        assert_eq!(c.subscriber_dropped(), 0);
    }

    #[test]
    fn tracked_unsubscribe_removes_without_any_notification() {
        // The regression scenario: a subscriber goes away while the
        // collector is idle. Send-failure pruning never fires (no
        // events flow), so only an explicit unsubscribe can clean up.
        let c = Arc::new(TraceCollector::new());
        let (_replay, rx, id) = c.subscribe_tracked(4);
        assert_eq!(c.subscriber_count(), 1);
        drop(rx);
        assert!(c.unsubscribe(id));
        assert_eq!(c.subscriber_count(), 0);
        // Idempotent: a second unsubscribe is a no-op.
        assert!(!c.unsubscribe(id));
    }

    #[test]
    fn unsubscribe_targets_only_its_own_subscription() {
        let c = Arc::new(TraceCollector::new());
        let (_r1, rx1, id1) = c.subscribe_tracked(4);
        let (_r2, _rx2, _id2) = c.subscribe_tracked(4);
        assert_eq!(c.subscriber_count(), 2);
        drop(rx1);
        assert!(c.unsubscribe(id1));
        assert_eq!(c.subscriber_count(), 1);
        // The surviving subscription still receives events.
        c.instant("still-live", Vec::new());
        assert_eq!(c.subscriber_count(), 1);
    }
}
