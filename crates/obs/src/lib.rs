//! `casa-obs`: zero-dependency structured observability for the CASA
//! workspace.
//!
//! Three pieces, all pure `std`:
//!
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`])
//!   — typed, `Send + Sync`, global-free. Snapshots are
//!   [`BTreeMap`](std::collections::BTreeMap)s, so JSON export
//!   iterates in sorted key order and is deterministic by
//!   construction.
//! * **Tracing** ([`TraceCollector`], RAII [`Span`] guards, instant
//!   events) — hierarchical spans with monotonic microsecond
//!   timestamps and explicit parent links, exportable as Chrome
//!   `trace_event` JSON ([`chrome_trace_json`]) for
//!   `chrome://tracing` / Perfetto, or summarized as an indented
//!   table ([`render_span_table`]).
//! * **The [`Obs`] handle** — a cheap clonable facade the allocation
//!   flow threads through its phases. A disabled handle
//!   ([`Obs::disabled`]) makes every call a no-op without heap
//!   traffic, so instrumented code paths cost nothing when
//!   observability is off; [`Obs::from_env`] enables it when
//!   `CASA_TRACE` is set.
//!
//! Timing lives only in trace events; metric snapshots carry counts
//! and values, never wall clock — that split is what lets
//! deterministic report sections include metrics while quarantining
//! timing to the non-deterministic sections.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod fnv;
pub mod metrics;
pub mod serve;
pub mod span;
pub mod timeseries;
pub mod watchdog;

pub use export::{chrome_trace_json, jnum, json_escape, snapshot_to_json};
pub use flight::{
    flight_dump_json, render_flight_table, FlightEvent, FlightKind, FlightRecorder,
    DEFAULT_FLIGHT_CAPACITY, FLIGHT_DUMP_SCHEMA,
};
pub use fnv::{fnv1a_64, Fnv1a, FNV_OFFSET, FNV_PRIME};
pub use metrics::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, merge_snapshot, Counter, Gauge,
    Histogram, HistogramSnapshot, LocalCounter, MetricValue, MetricsSnapshot, Registry,
    HISTOGRAM_BUCKETS,
};
pub use serve::{
    collect_sse, header_value, http_get, http_post, http_request, prometheus_name, prometheus_text,
    status_text, valid_request_id, validate_exposition, ExpositionStats, JournalEntry, Request,
    RequestJournal, Response, Router, ServeHandle, ServeOptions, SolveAttribution,
    REQUEST_ID_HEADER, SSE_SUBSCRIBER_CAPACITY,
};
pub use span::{
    render_span_table, span_tree, ArgValue, EventKind, Span, SpanSummary, StreamEvent,
    SubscriberId, TraceCollector, TraceEvent,
};
pub use timeseries::{
    timeseries_json, TimePoint, TimeSeriesSnapshot, TimeSeriesStore, DEFAULT_TIMESERIES_CAPACITY,
    TIMESERIES_SCHEMA,
};
pub use watchdog::{
    watchdog_ms_from_env, Heartbeats, WatchdogConfig, WatchdogHandle, WATCHDOG_ENV,
};

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct ObsInner {
    registry: Registry,
    collector: Arc<TraceCollector>,
    flight: Arc<FlightRecorder>,
    heartbeats: Arc<Heartbeats>,
    timeseries: TimeSeriesStore,
    docs: Mutex<BTreeMap<String, String>>,
}

/// Handle threaded through the allocation flow. Clones share the same
/// registry and trace collector; a disabled handle is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A handle on which every operation is a no-op.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle with a fresh registry and trace collector.
    pub fn enabled() -> Obs {
        Obs::with_collector(Arc::new(TraceCollector::new()))
    }

    /// An enabled handle with a fresh registry but a shared trace
    /// collector — lets parallel per-cell registries feed one
    /// timeline. The flight recorder is fresh; use [`Obs::child`] to
    /// share it too.
    pub fn with_collector(collector: Arc<TraceCollector>) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry: Registry::new(),
                collector,
                flight: Arc::new(FlightRecorder::from_env()),
                heartbeats: Arc::new(Heartbeats::new()),
                timeseries: TimeSeriesStore::from_env(),
                docs: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// An enabled handle whose flight ring holds at most `cap` events
    /// — for tests and tools that exercise ring-wrap behaviour without
    /// touching `CASA_FLIGHT_CAP` (environment writes race across
    /// threads).
    pub fn with_flight_capacity(cap: usize) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry: Registry::new(),
                collector: Arc::new(TraceCollector::new()),
                flight: Arc::new(FlightRecorder::new(cap)),
                heartbeats: Arc::new(Heartbeats::new()),
                timeseries: TimeSeriesStore::from_env(),
                docs: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// A child handle: fresh registry and time-series store, shared
    /// trace collector **and** shared flight recorder (including its
    /// dump sink). This is what the sweep gives each cell — per-cell
    /// metric/series isolation, one timeline, one post-mortem ring.
    /// Disabled parents produce disabled children.
    pub fn child(&self) -> Obs {
        match &self.inner {
            Some(i) => Obs {
                inner: Some(Arc::new(ObsInner {
                    registry: Registry::new(),
                    collector: Arc::clone(&i.collector),
                    flight: Arc::clone(&i.flight),
                    heartbeats: Arc::clone(&i.heartbeats),
                    timeseries: TimeSeriesStore::from_env(),
                    docs: Mutex::new(BTreeMap::new()),
                })),
            },
            None => Obs::disabled(),
        }
    }

    /// Enabled iff `CASA_TRACE` is set to a non-empty value other
    /// than `0`.
    pub fn from_env() -> Obs {
        match std::env::var("CASA_TRACE") {
            Ok(v) if !v.is_empty() && v != "0" => Obs::enabled(),
            _ => Obs::disabled(),
        }
    }

    /// Publish a named JSON document for the telemetry server to
    /// serve (e.g. `"explain"` behind `/explain.json`). Documents are
    /// an output channel: publishing replaces any earlier document of
    /// the same name and is a no-op on a disabled handle.
    pub fn publish_doc(&self, name: &str, json: String) {
        if let Some(i) = &self.inner {
            if let Ok(mut docs) = i.docs.lock() {
                docs.insert(name.to_string(), json);
            }
        }
    }

    /// The most recently published document under `name`, if any.
    pub fn published_doc(&self, name: &str) -> Option<String> {
        let i = self.inner.as_deref()?;
        i.docs.lock().ok()?.get(name).cloned()
    }

    /// Whether instrumentation is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metric registry, if enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// The trace collector, if enabled.
    pub fn collector(&self) -> Option<&Arc<TraceCollector>> {
        self.inner.as_deref().map(|i| &i.collector)
    }

    /// Open a span (no-op guard when disabled).
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            Some(i) => {
                i.flight
                    .push(FlightKind::Span, name, i.collector.elapsed_us(), None);
                i.collector.begin_span(name, Vec::new())
            }
            None => Span::noop(),
        }
    }

    /// Open a span with arguments (no-op guard when disabled).
    pub fn span_with(&self, name: &str, args: Vec<(String, ArgValue)>) -> Span {
        match &self.inner {
            Some(i) => {
                i.flight
                    .push(FlightKind::Span, name, i.collector.elapsed_us(), None);
                i.collector.begin_span(name, args)
            }
            None => Span::noop(),
        }
    }

    /// Record an instant event.
    pub fn instant(&self, name: &str, args: Vec<(String, ArgValue)>) {
        if let Some(i) = &self.inner {
            i.flight
                .push(FlightKind::Instant, name, i.collector.elapsed_us(), None);
            i.collector.instant(name, args);
        }
    }

    /// Add to a named counter.
    pub fn add(&self, name: &str, v: u64) {
        if let Some(i) = &self.inner {
            i.flight.push(
                FlightKind::Counter,
                name,
                i.collector.elapsed_us(),
                Some(ArgValue::U64(v)),
            );
            i.registry.counter(name).add(v);
        }
    }

    /// Set a named gauge.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(i) = &self.inner {
            i.flight.push(
                FlightKind::Gauge,
                name,
                i.collector.elapsed_us(),
                Some(ArgValue::F64(v)),
            );
            i.registry.gauge(name).set(v);
        }
    }

    /// Record a histogram observation.
    pub fn record(&self, name: &str, v: u64) {
        if let Some(i) = &self.inner {
            i.flight.push(
                FlightKind::Histogram,
                name,
                i.collector.elapsed_us(),
                Some(ArgValue::U64(v)),
            );
            i.registry.histogram(name).record(v);
        }
    }

    /// Snapshot the registry; empty when disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(i) => i.registry.snapshot(),
            None => MetricsSnapshot::new(),
        }
    }

    /// Snapshot the trace events; empty when disabled.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(i) => i.collector.events(),
            None => Vec::new(),
        }
    }

    /// The flight recorder, if enabled.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.inner.as_deref().map(|i| &i.flight)
    }

    /// Snapshot the flight-recorder ring, oldest first; empty when
    /// disabled.
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        match &self.inner {
            Some(i) => i.flight.events(),
            None => Vec::new(),
        }
    }

    /// Serialize the flight ring (plus this handle's metric snapshot)
    /// as a deterministic JSON document. Empty-but-valid when
    /// disabled.
    pub fn dump_flight(&self) -> String {
        match &self.inner {
            Some(i) => flight_dump_json(
                i.flight.capacity(),
                i.flight.dropped(),
                &i.flight.events(),
                &i.registry.snapshot(),
            ),
            None => flight_dump_json(0, 0, &[], &MetricsSnapshot::new()),
        }
    }

    /// Configure where automatic flight dumps (panic hook, engine
    /// degradation) are written. The sink lives on the flight
    /// recorder, so [`Obs::child`] handles inherit it.
    pub fn set_flight_sink(&self, path: Option<PathBuf>) {
        if let Some(i) = &self.inner {
            i.flight.set_sink(path);
        }
    }

    /// The configured automatic-dump sink, if any.
    pub fn flight_sink(&self) -> Option<PathBuf> {
        self.inner.as_deref().and_then(|i| i.flight.sink())
    }

    /// Write [`Obs::dump_flight`] to the configured sink, **falling
    /// back to `fallback`** when no sink is set or the sink write
    /// fails (unwritable directory, read-only mount — exactly the
    /// situations a post-mortem dump must survive). Returns the path
    /// actually written; `None` when disabled or when both writes
    /// fail. Concurrent dumps (panic hook, degradation note, watchdog)
    /// serialize on the flight recorder's dump lock so no file ever
    /// holds two interleaved documents.
    pub fn dump_flight_to_sink_or(&self, fallback: &str) -> Option<PathBuf> {
        let i = self.inner.as_deref()?;
        let _guard = i.flight.dump_guard();
        let body = self.dump_flight();
        if let Some(sink) = self.flight_sink() {
            if std::fs::write(&sink, &body).is_ok() {
                return Some(sink);
            }
        }
        let fallback = PathBuf::from(fallback);
        std::fs::write(&fallback, &body).ok()?;
        Some(fallback)
    }

    /// Record a degradation note (e.g. the allocation engine
    /// substituting a fallback allocator) and trigger an automatic
    /// flight dump to the configured sink. Returns the dump path when
    /// one was written. No-op (returning `None`) when disabled or when
    /// no sink is configured — the note is still buffered for later
    /// on-demand dumps.
    pub fn note_degradation(&self, name: &str, reason: &str) -> Option<PathBuf> {
        let i = self.inner.as_deref()?;
        i.flight.push(
            FlightKind::Note,
            name,
            i.collector.elapsed_us(),
            Some(ArgValue::Str(reason.to_string())),
        );
        let sink = i.flight.sink()?;
        let _guard = i.flight.dump_guard();
        std::fs::write(&sink, self.dump_flight()).ok()?;
        Some(sink)
    }

    /// Buffer a note in the flight ring **without** triggering a dump
    /// — the quiet sibling of [`Obs::note_degradation`]. The server
    /// uses this to stamp each request's correlation ID into the
    /// post-mortem ring, so a captured flight dump can be filtered to
    /// one request without every request forcing a disk write.
    pub fn annotate(&self, name: &str, value: &str) {
        if let Some(i) = &self.inner {
            i.flight.push(
                FlightKind::Note,
                name,
                i.collector.elapsed_us(),
                Some(ArgValue::Str(value.to_string())),
            );
        }
    }

    /// Merge a metrics snapshot into this handle's registry —
    /// counters add, gauges last-write-wins, histograms merge
    /// bucket-wise. Unlike the per-event recording methods this does
    /// **not** mirror into the flight ring: it exists so the sweep can
    /// publish each finished cell's (deterministic, isolated) metrics
    /// to the live telemetry registry without flooding the post-mortem
    /// buffer. No-op when disabled.
    pub fn merge_metrics(&self, snap: &MetricsSnapshot) {
        if let Some(i) = &self.inner {
            i.registry.merge_from(snap);
        }
    }

    /// Append one time-series sample at an explicit **logical** tick
    /// (phase ordinal, B&B node count, request-completion counter —
    /// never a wall-clock reading, or the series stops being
    /// comparable across runs). Like [`Obs::merge_metrics`] this does
    /// **not** mirror into the flight ring: the sampling path is the
    /// deterministic one, and per-node samples would flood the
    /// post-mortem buffer. No-op when disabled.
    pub fn ts_sample(&self, series: &str, tick: u64, value: f64) {
        if let Some(i) = &self.inner {
            i.timeseries.sample(series, tick, value);
        }
    }

    /// Snapshot the time-series store; empty when disabled.
    pub fn timeseries_snapshot(&self) -> TimeSeriesSnapshot {
        match &self.inner {
            Some(i) => i.timeseries.snapshot(),
            None => TimeSeriesSnapshot::default(),
        }
    }

    /// Merge a time-series snapshot into this handle's store —
    /// points append in the snapshot's order, drop evidence carries
    /// over. The sweep uses this to publish each finished cell's
    /// isolated series to the live telemetry store. No-op when
    /// disabled.
    pub fn merge_timeseries(&self, snap: &TimeSeriesSnapshot) {
        if let Some(i) = &self.inner {
            i.timeseries.merge(snap);
        }
    }

    /// Record a liveness beat for `phase`: stamps the shared heartbeat
    /// table (monitored by [`Obs::start_watchdog`]) and publishes the
    /// timestamp as a `heartbeat_us.<phase>` gauge so scrapers see it
    /// too. Children beat into the same table as their parent.
    pub fn heartbeat(&self, phase: &str) {
        if let Some(i) = &self.inner {
            let now = i.collector.elapsed_us();
            i.heartbeats.beat(phase, now);
            i.registry
                .gauge(&format!("heartbeat_us.{phase}"))
                .set(now as f64);
        }
    }

    /// Stop monitoring `phase` (it completed); a phase that is done is
    /// never reported as stalled.
    pub fn heartbeat_done(&self, phase: &str) {
        if let Some(i) = &self.inner {
            i.heartbeats.done(phase);
        }
    }

    /// The shared heartbeat table, if enabled.
    pub fn heartbeats(&self) -> Option<&Arc<Heartbeats>> {
        self.inner.as_deref().map(|i| &i.heartbeats)
    }

    /// Start the live telemetry HTTP server on `addr` (for example
    /// `127.0.0.1:9464`, or `127.0.0.1:0` to pick a free port — read
    /// it back from [`ServeHandle::local_addr`]). See [`crate::serve`]
    /// for the endpoints. Errors with
    /// [`std::io::ErrorKind::Unsupported`] on a disabled handle.
    pub fn serve(&self, addr: &str) -> std::io::Result<ServeHandle> {
        serve::start(self, addr)
    }

    /// Start a watchdog thread monitoring the heartbeat table: any
    /// phase silent longer than `cfg.silence` gets a `watchdog_stall`
    /// instant event (with `phase` and `silent_us` args), a
    /// `watchdog.stalls` counter bump, and a flight dump via
    /// [`Obs::dump_flight_to_sink_or`]. Each stall fires once; a fresh
    /// heartbeat re-arms the phase. `None` when disabled.
    pub fn start_watchdog(&self, cfg: WatchdogConfig) -> Option<WatchdogHandle> {
        let i = self.inner.as_deref()?;
        let obs = self.clone();
        let heartbeats = Arc::clone(&i.heartbeats);
        let collector = Arc::clone(&i.collector);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let t_stop = Arc::clone(&stop);
        let silence_us = cfg.silence.as_micros() as u64;
        let thread = std::thread::Builder::new()
            .name("casa-watchdog".to_string())
            .spawn(move || {
                while !t_stop.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::sleep(cfg.poll);
                    let now = collector.elapsed_us();
                    for (phase, silent_us) in heartbeats.newly_stalled(now, silence_us) {
                        obs.instant(
                            "watchdog_stall",
                            vec![
                                ("phase".to_string(), ArgValue::Str(phase.clone())),
                                ("silent_us".to_string(), ArgValue::U64(silent_us)),
                            ],
                        );
                        obs.add("watchdog.stalls", 1);
                        obs.dump_flight_to_sink_or(&cfg.fallback_dump_path);
                    }
                }
            })
            .ok()?;
        Some(WatchdogHandle::new(stop, thread))
    }

    /// Install a process-wide panic hook that writes the flight dump
    /// (to the sink, else `casa_flight_dump.json` in the working
    /// directory) before delegating to the previous hook. Intended for
    /// binaries; installing from more than one handle chains the
    /// hooks. No-op when disabled.
    pub fn install_panic_hook(&self) {
        if !self.is_enabled() {
            return;
        }
        let obs = self.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(path) = obs.dump_flight_to_sink_or("casa_flight_dump.json") {
                eprintln!(
                    "flight recorder: dumped {} events to {}",
                    obs.flight_events().len(),
                    path.display()
                );
            }
            prev(info);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        let _g = obs.span("phase");
        obs.add("n", 5);
        obs.gauge_set("g", 1.0);
        obs.record("h", 9);
        obs.instant("i", Vec::new());
        assert!(!obs.is_enabled());
        assert!(obs.snapshot().is_empty());
        assert!(obs.events().is_empty());
    }

    #[test]
    fn enabled_handle_records_and_clones_share() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        {
            let _g = obs.span("outer");
            clone.add("n", 2);
            clone.add("n", 3);
        }
        let snap = obs.snapshot();
        assert_eq!(snap.get("n"), Some(&MetricValue::Counter(5)));
        let events = obs.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "outer");
        assert!(events[0].dur_us.is_some());
    }

    #[test]
    fn shared_collector_distinct_registries() {
        let collector = Arc::new(TraceCollector::new());
        let a = Obs::with_collector(Arc::clone(&collector));
        let b = Obs::with_collector(Arc::clone(&collector));
        a.add("x", 1);
        b.add("x", 10);
        {
            let _ga = a.span("a");
        }
        {
            let _gb = b.span("b");
        }
        assert_eq!(a.snapshot().get("x"), Some(&MetricValue::Counter(1)));
        assert_eq!(b.snapshot().get("x"), Some(&MetricValue::Counter(10)));
        assert_eq!(collector.events().len(), 2, "one timeline for both");
    }

    #[test]
    fn timeseries_is_isolated_per_child_and_merges_back() {
        let parent = Obs::enabled();
        let child = parent.child();
        child.ts_sample("bb.incumbent", 3, 42.0);
        child.ts_sample("bb.incumbent", 9, 40.0);
        parent.ts_sample("sweep.cells_done", 0, 1.0);
        // Stores are isolated (like registries)...
        assert!(!parent
            .timeseries_snapshot()
            .series
            .contains_key("bb.incumbent"));
        assert_eq!(child.timeseries_snapshot().points(), 2);
        // ...and merge publishes the child's series to the parent.
        parent.merge_timeseries(&child.timeseries_snapshot());
        let snap = parent.timeseries_snapshot();
        assert_eq!(
            snap.series.get("bb.incumbent"),
            Some(&vec![(3, 42.0), (9, 40.0)])
        );
        assert_eq!(snap.series.get("sweep.cells_done"), Some(&vec![(0, 1.0)]));
        // Disabled handles stay inert and snapshot empty.
        let off = Obs::disabled();
        off.ts_sample("s", 0, 1.0);
        assert!(off.timeseries_snapshot().is_empty());
    }

    #[test]
    fn ts_sample_does_not_mirror_into_the_flight_ring() {
        let obs = Obs::enabled();
        obs.ts_sample("bb.bound", 1, 2.0);
        assert!(obs.flight_events().is_empty());
    }

    #[test]
    fn obs_is_send_sync() {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
        assert_send_sync::<FlightRecorder>();
    }

    #[test]
    fn flight_ring_mirrors_obs_activity() {
        let obs = Obs::enabled();
        {
            let _g = obs.span("phase");
            obs.add("n", 2);
            obs.gauge_set("g", 0.5);
            obs.record("h", 8);
            obs.instant("tick", Vec::new());
        }
        let evs = obs.flight_events();
        let kinds: Vec<FlightKind> = evs.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FlightKind::Span,
                FlightKind::Counter,
                FlightKind::Gauge,
                FlightKind::Histogram,
                FlightKind::Instant,
            ]
        );
        // Sequence numbers are monotone and the payloads survive.
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(evs[1].value, Some(ArgValue::U64(2)));
        assert_eq!(evs[2].value, Some(ArgValue::F64(0.5)));
        // Disabled handles record nothing.
        let off = Obs::disabled();
        off.add("n", 1);
        assert!(off.flight_events().is_empty());
        assert!(off.flight().is_none());
    }

    #[test]
    fn child_shares_flight_ring_and_sink_but_not_registry() {
        let parent = Obs::enabled();
        parent.set_flight_sink(Some(std::path::PathBuf::from("/tmp/never-written.json")));
        let child = parent.child();
        child.add("x", 3);
        parent.add("y", 1);
        // One shared ring sees both, in order.
        let names: Vec<String> = parent.flight_events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["x".to_string(), "y".to_string()]);
        assert_eq!(child.flight_sink(), parent.flight_sink());
        // Registries stay isolated.
        assert!(parent.snapshot().contains_key("y"));
        assert!(!parent.snapshot().contains_key("x"));
        assert!(child.snapshot().contains_key("x"));
        // Disabled parents produce disabled children.
        assert!(!Obs::disabled().child().is_enabled());
    }

    #[test]
    fn dump_flight_round_trips_through_the_json_parser() {
        let obs = Obs::enabled();
        obs.add("solver.nodes", 41);
        obs.record("trace.size", 64);
        let dump = obs.dump_flight();
        let v = serde::json::parse(&dump).expect("flight dump must be valid JSON");
        let events = v.get("events").and_then(|x| x.as_array()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("name").and_then(|x| x.as_str()),
            Some("solver.nodes")
        );
        // The registry snapshot rides along for post-mortem context.
        let metrics = v.get("metrics").and_then(|x| x.as_object()).unwrap();
        assert!(metrics.contains_key("solver.nodes"));
        // A disabled handle still dumps a valid (empty) document.
        let empty = serde::json::parse(&Obs::disabled().dump_flight()).unwrap();
        assert_eq!(
            empty
                .get("events")
                .and_then(|x| x.as_array())
                .map(<[_]>::len),
            Some(0)
        );
    }

    #[test]
    fn dump_falls_back_when_sink_write_fails() {
        let obs = Obs::enabled();
        obs.add("n", 1);
        // A sink inside a directory that does not exist: the write
        // must fail and the dump must land on the fallback path
        // instead of vanishing.
        let bad = std::env::temp_dir()
            .join(format!("casa_no_such_dir_{}", std::process::id()))
            .join("sink.json");
        obs.set_flight_sink(Some(bad.clone()));
        let fallback = std::env::temp_dir().join(format!(
            "casa_fallback_test_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&fallback);
        let written = obs
            .dump_flight_to_sink_or(&fallback.display().to_string())
            .expect("fallback write succeeds");
        assert_eq!(written, fallback);
        assert!(!bad.exists());
        let body = std::fs::read_to_string(&fallback).unwrap();
        assert!(serde::json::parse(&body).is_ok(), "fallback dump is valid");
        let _ = std::fs::remove_file(&fallback);
    }

    #[test]
    fn concurrent_dumps_do_not_interleave() {
        let obs = Obs::enabled();
        let sink = std::env::temp_dir().join(format!(
            "casa_dump_race_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&sink);
        obs.set_flight_sink(Some(sink.clone()));
        let fallback = sink.display().to_string();
        // Panic-hook-style dumps and degradation notes race onto the
        // same sink from many threads; the dump lock serializes the
        // writes so the file never ends up holding two interleaved
        // documents. (Readers racing an in-progress write can still
        // see a truncated file — the guarantee is about writers, so
        // the file is only inspected after the storm.)
        std::thread::scope(|s| {
            for t in 0..4 {
                let obs = obs.clone();
                let fallback = fallback.clone();
                s.spawn(move || {
                    for j in 0..25 {
                        if t % 2 == 0 {
                            obs.note_degradation("engine.fallback", &format!("t{t} i{j}"));
                        } else {
                            obs.dump_flight_to_sink_or(&fallback);
                        }
                    }
                });
            }
        });
        let final_body = std::fs::read_to_string(&sink).unwrap();
        assert!(
            serde::json::parse(&final_body).is_ok(),
            "sink must hold one complete JSON document"
        );
        let _ = std::fs::remove_file(&sink);
    }

    #[test]
    fn annotate_buffers_a_note_without_dumping() {
        let obs = Obs::enabled();
        let sink =
            std::env::temp_dir().join(format!("casa_annotate_never_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&sink);
        obs.set_flight_sink(Some(sink.clone()));
        obs.annotate("server.request", "r000001");
        assert!(!sink.exists(), "annotate must not write the sink");
        let evs = obs.flight_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, FlightKind::Note);
        assert_eq!(evs[0].name, "server.request");
        assert_eq!(evs[0].value, Some(ArgValue::Str("r000001".to_string())));
        // Disabled handles stay inert.
        Obs::disabled().annotate("x", "y");
    }

    #[test]
    fn note_degradation_buffers_and_dumps_to_sink() {
        let obs = Obs::enabled();
        // Without a sink: buffered, no file written.
        assert_eq!(obs.note_degradation("engine.fallback", "no sink yet"), None);
        let path =
            std::env::temp_dir().join(format!("casa_flight_test_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        obs.set_flight_sink(Some(path.clone()));
        let written = obs
            .note_degradation("engine.fallback", "ilp solve failed: singular basis")
            .expect("sink configured");
        assert_eq!(written, path);
        let dump = std::fs::read_to_string(&path).unwrap();
        let v = serde::json::parse(&dump).unwrap();
        let events = v.get("events").and_then(|x| x.as_array()).unwrap();
        let notes: Vec<_> = events
            .iter()
            .filter(|e| e.get("kind").and_then(|k| k.as_str()) == Some("note"))
            .collect();
        assert_eq!(notes.len(), 2, "both degradation notes buffered");
        assert_eq!(
            notes[1].get("value").and_then(|x| x.as_str()),
            Some("ilp solve failed: singular basis")
        );
        let _ = std::fs::remove_file(&path);
    }
}
