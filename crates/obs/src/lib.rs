//! `casa-obs`: zero-dependency structured observability for the CASA
//! workspace.
//!
//! Three pieces, all pure `std`:
//!
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`])
//!   — typed, `Send + Sync`, global-free. Snapshots are
//!   [`BTreeMap`](std::collections::BTreeMap)s, so JSON export
//!   iterates in sorted key order and is deterministic by
//!   construction.
//! * **Tracing** ([`TraceCollector`], RAII [`Span`] guards, instant
//!   events) — hierarchical spans with monotonic microsecond
//!   timestamps and explicit parent links, exportable as Chrome
//!   `trace_event` JSON ([`chrome_trace_json`]) for
//!   `chrome://tracing` / Perfetto, or summarized as an indented
//!   table ([`render_span_table`]).
//! * **The [`Obs`] handle** — a cheap clonable facade the allocation
//!   flow threads through its phases. A disabled handle
//!   ([`Obs::disabled`]) makes every call a no-op without heap
//!   traffic, so instrumented code paths cost nothing when
//!   observability is off; [`Obs::from_env`] enables it when
//!   `CASA_TRACE` is set.
//!
//! Timing lives only in trace events; metric snapshots carry counts
//! and values, never wall clock — that split is what lets
//! deterministic report sections include metrics while quarantining
//! timing to the non-deterministic sections.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod span;

pub use export::{chrome_trace_json, jnum, json_escape, snapshot_to_json};
pub use metrics::{
    bucket_index, bucket_upper_bound, merge_snapshot, Counter, Gauge, Histogram, HistogramSnapshot,
    LocalCounter, MetricValue, MetricsSnapshot, Registry, HISTOGRAM_BUCKETS,
};
pub use span::{
    render_span_table, span_tree, ArgValue, EventKind, Span, SpanSummary, TraceCollector,
    TraceEvent,
};

use std::sync::Arc;

#[derive(Debug)]
struct ObsInner {
    registry: Registry,
    collector: Arc<TraceCollector>,
}

/// Handle threaded through the allocation flow. Clones share the same
/// registry and trace collector; a disabled handle is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A handle on which every operation is a no-op.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle with a fresh registry and trace collector.
    pub fn enabled() -> Obs {
        Obs::with_collector(Arc::new(TraceCollector::new()))
    }

    /// An enabled handle with a fresh registry but a shared trace
    /// collector — lets parallel per-cell registries feed one
    /// timeline.
    pub fn with_collector(collector: Arc<TraceCollector>) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry: Registry::new(),
                collector,
            })),
        }
    }

    /// Enabled iff `CASA_TRACE` is set to a non-empty value other
    /// than `0`.
    pub fn from_env() -> Obs {
        match std::env::var("CASA_TRACE") {
            Ok(v) if !v.is_empty() && v != "0" => Obs::enabled(),
            _ => Obs::disabled(),
        }
    }

    /// Whether instrumentation is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metric registry, if enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// The trace collector, if enabled.
    pub fn collector(&self) -> Option<&Arc<TraceCollector>> {
        self.inner.as_deref().map(|i| &i.collector)
    }

    /// Open a span (no-op guard when disabled).
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            Some(i) => i.collector.begin_span(name, Vec::new()),
            None => Span::noop(),
        }
    }

    /// Open a span with arguments (no-op guard when disabled).
    pub fn span_with(&self, name: &str, args: Vec<(String, ArgValue)>) -> Span {
        match &self.inner {
            Some(i) => i.collector.begin_span(name, args),
            None => Span::noop(),
        }
    }

    /// Record an instant event.
    pub fn instant(&self, name: &str, args: Vec<(String, ArgValue)>) {
        if let Some(i) = &self.inner {
            i.collector.instant(name, args);
        }
    }

    /// Add to a named counter.
    pub fn add(&self, name: &str, v: u64) {
        if let Some(i) = &self.inner {
            i.registry.counter(name).add(v);
        }
    }

    /// Set a named gauge.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(i) = &self.inner {
            i.registry.gauge(name).set(v);
        }
    }

    /// Record a histogram observation.
    pub fn record(&self, name: &str, v: u64) {
        if let Some(i) = &self.inner {
            i.registry.histogram(name).record(v);
        }
    }

    /// Snapshot the registry; empty when disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(i) => i.registry.snapshot(),
            None => MetricsSnapshot::new(),
        }
    }

    /// Snapshot the trace events; empty when disabled.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(i) => i.collector.events(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        let _g = obs.span("phase");
        obs.add("n", 5);
        obs.gauge_set("g", 1.0);
        obs.record("h", 9);
        obs.instant("i", Vec::new());
        assert!(!obs.is_enabled());
        assert!(obs.snapshot().is_empty());
        assert!(obs.events().is_empty());
    }

    #[test]
    fn enabled_handle_records_and_clones_share() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        {
            let _g = obs.span("outer");
            clone.add("n", 2);
            clone.add("n", 3);
        }
        let snap = obs.snapshot();
        assert_eq!(snap.get("n"), Some(&MetricValue::Counter(5)));
        let events = obs.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "outer");
        assert!(events[0].dur_us.is_some());
    }

    #[test]
    fn shared_collector_distinct_registries() {
        let collector = Arc::new(TraceCollector::new());
        let a = Obs::with_collector(Arc::clone(&collector));
        let b = Obs::with_collector(Arc::clone(&collector));
        a.add("x", 1);
        b.add("x", 10);
        {
            let _ga = a.span("a");
        }
        {
            let _gb = b.span("b");
        }
        assert_eq!(a.snapshot().get("x"), Some(&MetricValue::Counter(1)));
        assert_eq!(b.snapshot().get("x"), Some(&MetricValue::Counter(10)));
        assert_eq!(collector.events().len(), 2, "one timeline for both");
    }

    #[test]
    fn obs_is_send_sync() {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
    }
}
