//! Deterministic JSON exporters.
//!
//! Everything here is hand-rolled `String` building: the workspace's
//! vendored `serde` is a compile-time stand-in without a serializer,
//! and determinism (sorted keys, shortest-round-trip floats, no
//! whitespace variance) is easier to guarantee by construction anyway.

use crate::metrics::{MetricValue, MetricsSnapshot};
use crate::span::{ArgValue, EventKind, TraceEvent};

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number: shortest round-trip form, `null`
/// for non-finite values (JSON has no NaN/Inf).
pub fn jnum(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    // `{}` on an integral f64 prints no decimal point; keep it — the
    // value round-trips either way and stays deterministic.
    s
}

/// Serialize a metrics snapshot. Keys come out in sorted order (the
/// snapshot is a `BTreeMap`), counters and gauges as bare numbers,
/// histograms as `{"count":..,"sum":..,"buckets":[[le,count],..],
/// "p50":..,"p90":..,"p99":..,"min":..,"max":..}` with only
/// non-empty buckets listed, quantiles interpolated within the log₂
/// buckets ([`crate::metrics::HistogramSnapshot::quantile`]), and the
/// exact recorded extremes (`null` when the histogram is empty).
pub fn snapshot_to_json(snap: &MetricsSnapshot) -> String {
    let mut s = String::from("{");
    let mut first = true;
    for (name, value) in snap {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!("\"{}\":", json_escape(name)));
        match value {
            MetricValue::Counter(v) => s.push_str(&v.to_string()),
            MetricValue::Gauge(v) => s.push_str(&jnum(*v)),
            MetricValue::Histogram(h) => {
                s.push_str(&format!(
                    "{{\"count\":{},\"sum\":{},\"buckets\":[",
                    h.count, h.sum
                ));
                for (i, (le, c)) in h.buckets.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("[{le},{c}]"));
                }
                let q = |v: Option<f64>| v.map_or_else(|| "null".to_string(), jnum);
                let e = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |v| v.to_string());
                s.push_str(&format!(
                    "],\"p50\":{},\"p90\":{},\"p99\":{},\"min\":{},\"max\":{}}}",
                    q(h.p50()),
                    q(h.p90()),
                    q(h.p99()),
                    e(h.min),
                    e(h.max)
                ));
            }
        }
    }
    s.push('}');
    s
}

fn arg_json(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(n) => n.to_string(),
        ArgValue::F64(n) => jnum(*n),
        ArgValue::Str(s) => format!("\"{}\"", json_escape(s)),
    }
}

/// Serialize events in Chrome `trace_event` JSON-object format, ready
/// for `chrome://tracing` / Perfetto: spans become phase-`X` complete
/// events, instants phase-`i` thread-scoped events. `ts`/`dur` are
/// microseconds per the format spec.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"casa\",\"pid\":1,\"tid\":{},\"ts\":{}",
            json_escape(&e.name),
            e.tid,
            e.ts_us
        ));
        match e.kind {
            EventKind::Span => {
                s.push_str(&format!(",\"ph\":\"X\",\"dur\":{}", e.dur_us.unwrap_or(0)));
            }
            EventKind::Instant => s.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        }
        if !e.args.is_empty() {
            s.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\":{}", json_escape(k), arg_json(v)));
            }
            s.push('}');
        }
        s.push('}');
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::span::{ArgValue, EventKind, TraceEvent};

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn jnum_is_finite_or_null() {
        assert_eq!(jnum(1.5), "1.5");
        assert_eq!(jnum(2.0), "2");
        assert_eq!(jnum(f64::NAN), "null");
        assert_eq!(jnum(f64::INFINITY), "null");
    }

    #[test]
    fn snapshot_json_is_sorted_and_typed() {
        let r = Registry::new();
        r.counter("z.count").add(3);
        r.gauge("a.gauge").set(0.5);
        r.histogram("m.hist").record(4);
        let json = snapshot_to_json(&r.snapshot());
        let za = json.find("\"z.count\"").unwrap();
        let aa = json.find("\"a.gauge\"").unwrap();
        let ma = json.find("\"m.hist\"").unwrap();
        assert!(aa < ma && ma < za, "keys sorted: {json}");
        assert!(json.contains("\"z.count\":3"));
        assert!(json.contains("\"a.gauge\":0.5"));
        assert!(json.contains("\"count\":1,\"sum\":4"));
        // Quantile summaries ride along with every histogram; a
        // single sample clamps every quantile to that exact value.
        assert!(json.contains("\"p50\":4,\"p90\":4,\"p99\":4"), "{json}");
        assert!(json.contains("\"min\":4,\"max\":4"), "{json}");
    }

    #[test]
    fn empty_histogram_exports_null_quantiles() {
        let r = Registry::new();
        let _ = r.histogram("h");
        let json = snapshot_to_json(&r.snapshot());
        assert!(
            json.contains("\"p50\":null,\"p90\":null,\"p99\":null,\"min\":null,\"max\":null"),
            "{json}"
        );
    }

    #[test]
    fn chrome_trace_shape() {
        let events = vec![
            TraceEvent {
                name: "solve".to_string(),
                kind: EventKind::Span,
                tid: 0,
                parent: None,
                ts_us: 10,
                dur_us: Some(25),
                args: vec![("nodes".to_string(), ArgValue::U64(7))],
            },
            TraceEvent {
                name: "incumbent".to_string(),
                kind: EventKind::Instant,
                tid: 0,
                parent: Some(0),
                ts_us: 20,
                dur_us: None,
                args: Vec::new(),
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\",\"dur\":25"));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\""));
        assert!(json.contains("\"args\":{\"nodes\":7}"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn control_characters_in_names_stay_valid_json_everywhere() {
        // Regression: a span / metric name carrying raw control
        // characters (U+0000–U+001F) must come out `\u00XX`-escaped in
        // every JSON writer, or the Chrome trace, `/snapshot.json`,
        // and the flight dump all emit invalid documents.
        let nasty = "phase\nwith\ttabs\u{1}and\u{0}nul";
        let events = vec![TraceEvent {
            name: nasty.to_string(),
            kind: EventKind::Span,
            tid: 0,
            parent: None,
            ts_us: 5,
            dur_us: Some(10),
            args: vec![(
                "why\u{2}".to_string(),
                ArgValue::Str("ctrl\u{3}arg".to_string()),
            )],
        }];
        let trace = chrome_trace_json(&events);
        let v = serde::json::parse(&trace).expect("chrome trace stays valid JSON");
        let e = &v.get("traceEvents").and_then(|x| x.as_array()).unwrap()[0];
        assert_eq!(e.get("name").and_then(|x| x.as_str()), Some(nasty));
        assert_eq!(
            e.get("args")
                .and_then(|a| a.get("why\u{2}"))
                .and_then(|x| x.as_str()),
            Some("ctrl\u{3}arg")
        );

        let r = Registry::new();
        r.counter(nasty).add(7);
        let snap_json = snapshot_to_json(&r.snapshot());
        let v = serde::json::parse(&snap_json).expect("snapshot stays valid JSON");
        assert_eq!(
            v.get(nasty).and_then(|x| x.as_f64()),
            Some(7.0),
            "escaped key round-trips: {snap_json}"
        );

        let ring = crate::flight::FlightRecorder::new(4);
        ring.push(
            crate::flight::FlightKind::Note,
            nasty,
            1,
            Some(ArgValue::Str("r\u{1f}eason".to_string())),
        );
        let dump = crate::flight::flight_dump_json(
            ring.capacity(),
            ring.dropped(),
            &ring.events(),
            &r.snapshot(),
        );
        let v = serde::json::parse(&dump).expect("flight dump stays valid JSON");
        let ev = &v.get("events").and_then(|x| x.as_array()).unwrap()[0];
        assert_eq!(ev.get("name").and_then(|x| x.as_str()), Some(nasty));
        assert_eq!(
            ev.get("value").and_then(|x| x.as_str()),
            Some("r\u{1f}eason")
        );
    }

    #[test]
    fn chrome_trace_parses_back_with_vendored_serde() {
        let events = vec![TraceEvent {
            name: "a \"quoted\" name".to_string(),
            kind: EventKind::Span,
            tid: 3,
            parent: None,
            ts_us: 0,
            dur_us: Some(12),
            args: vec![
                ("k".to_string(), ArgValue::Str("v\n".to_string())),
                ("x".to_string(), ArgValue::F64(1.25)),
            ],
        }];
        let json = chrome_trace_json(&events);
        let value = serde::json::parse(&json).expect("exported trace must be valid JSON");
        let trace_events = value
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert_eq!(trace_events.len(), 1);
        let e = &trace_events[0];
        assert_eq!(
            e.get("name").and_then(|v| v.as_str()),
            Some("a \"quoted\" name")
        );
        assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(e.get("dur").and_then(|v| v.as_f64()), Some(12.0));
        assert_eq!(e.get("tid").and_then(|v| v.as_f64()), Some(3.0));
        let args = e.get("args").expect("args object");
        assert_eq!(args.get("k").and_then(|v| v.as_str()), Some("v\n"));
        assert_eq!(args.get("x").and_then(|v| v.as_f64()), Some(1.25));
    }
}
