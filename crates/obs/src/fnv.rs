//! FNV-1a 64-bit hashing, shared by every fingerprint in the
//! workspace (sweep-grid identity stamps, the allocation server's
//! solution-cache keys).
//!
//! FNV-1a is tiny, stable across platforms and releases, and
//! dependency-free — exactly what a *persisted* fingerprint needs.
//! It is **not** collision-resistant: anything keyed by an FNV
//! fingerprint must verify the full key on a hit (see the solution
//! cache's verify-on-hit rule) or tolerate collisions (the sweep
//! fingerprint only gates longitudinal comparability).

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher.
///
/// ```
/// use casa_obs::Fnv1a;
/// let mut h = Fnv1a::new();
/// h.update(b"foo");
/// h.update(b"bar");
/// assert_eq!(h.finish(), casa_obs::fnv1a_64(b"foobar"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorb `bytes`. Chunking is irrelevant: `update(a); update(b)`
    /// equals `update(ab)`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current 64-bit digest (the hasher remains usable).
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The digest as the canonical 16-hex-digit string used wherever
    /// fingerprints are persisted.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

/// One-shot FNV-1a 64 of `bytes`.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"hello ");
        h.update(b"");
        h.update(b"world");
        assert_eq!(h.finish(), fnv1a_64(b"hello world"));
        assert_eq!(h.hex(), format!("{:016x}", fnv1a_64(b"hello world")));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(fnv1a_64(b"adpcm:1:42"), fnv1a_64(b"adpcm:1:43"));
    }
}
