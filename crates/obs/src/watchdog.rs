//! Phase watchdog: heartbeat tracking plus a monitor thread that flags
//! phases which have gone silent.
//!
//! Long-running phases (a branch-and-bound solve chewing through a
//! node budget, a simulation over a large trace) call
//! [`Obs::heartbeat`] periodically; the watchdog thread started by
//! [`Obs::start_watchdog`] wakes every [`WatchdogConfig::poll`] and
//! compares each live phase's last beat against
//! [`WatchdogConfig::silence`]. A phase that has been silent longer
//! than the threshold is flagged **once per stall**: the watchdog
//! emits a `watchdog_stall` instant event, bumps the
//! `watchdog.stalls` counter, and triggers a flight dump through
//! [`Obs::dump_flight_to_sink_or`] so the post-mortem ring survives
//! even if the process is later killed. A fresh heartbeat re-arms the
//! phase.
//!
//! The heartbeat table lives on the shared [`Obs`] inner state (like
//! the flight recorder), so [`Obs::child`] handles beat into the same
//! table the parent's watchdog monitors.
//!
//! [`Obs`]: crate::Obs
//! [`Obs::heartbeat`]: crate::Obs::heartbeat
//! [`Obs::start_watchdog`]: crate::Obs::start_watchdog
//! [`Obs::child`]: crate::Obs::child
//! [`Obs::dump_flight_to_sink_or`]: crate::Obs::dump_flight_to_sink_or

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable holding the watchdog silence threshold in
/// milliseconds. Unset, empty, or `0` disables the watchdog.
pub const WATCHDOG_ENV: &str = "CASA_WATCHDOG_MS";

#[derive(Debug, Clone, Copy)]
struct Beat {
    last_us: u64,
    flagged: bool,
}

/// Shared table of per-phase heartbeat timestamps (µs on the owning
/// collector's clock). One table per `Obs` family — children share it.
#[derive(Debug, Default)]
pub struct Heartbeats {
    beats: Mutex<BTreeMap<String, Beat>>,
}

impl Heartbeats {
    /// An empty table.
    pub fn new() -> Heartbeats {
        Heartbeats::default()
    }

    /// Record a beat for `phase` at `now_us`, re-arming a flagged
    /// stall.
    pub fn beat(&self, phase: &str, now_us: u64) {
        let mut beats = self.beats.lock().unwrap();
        match beats.get_mut(phase) {
            Some(b) => {
                b.last_us = now_us;
                b.flagged = false;
            }
            None => {
                beats.insert(
                    phase.to_string(),
                    Beat {
                        last_us: now_us,
                        flagged: false,
                    },
                );
            }
        }
    }

    /// Remove `phase` from monitoring (the phase completed).
    pub fn done(&self, phase: &str) {
        self.beats.lock().unwrap().remove(phase);
    }

    /// Phases currently being monitored, sorted.
    pub fn live(&self) -> Vec<String> {
        self.beats.lock().unwrap().keys().cloned().collect()
    }

    /// Phases whose last beat is older than `silence_us` and which
    /// have not yet been flagged for this stall. Returns
    /// `(phase, silent_us)` pairs in sorted phase order and marks them
    /// flagged so each stall fires exactly once.
    pub fn newly_stalled(&self, now_us: u64, silence_us: u64) -> Vec<(String, u64)> {
        let mut beats = self.beats.lock().unwrap();
        let mut stalled = Vec::new();
        for (phase, b) in beats.iter_mut() {
            let silent = now_us.saturating_sub(b.last_us);
            if !b.flagged && silent > silence_us {
                b.flagged = true;
                stalled.push((phase.clone(), silent));
            }
        }
        stalled
    }
}

/// Watchdog thread configuration.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// A phase silent longer than this is flagged as stalled.
    pub silence: Duration,
    /// How often the monitor thread checks. Defaults to
    /// `silence / 4`, clamped to ≥ 1 ms, so a stall is detected well
    /// within 2 × `silence`.
    pub poll: Duration,
    /// Fallback flight-dump path used when no sink is configured.
    pub fallback_dump_path: String,
}

impl WatchdogConfig {
    /// A config with the default poll cadence for `silence`.
    pub fn new(silence: Duration) -> WatchdogConfig {
        WatchdogConfig {
            silence,
            poll: (silence / 4).max(Duration::from_millis(1)),
            fallback_dump_path: "casa_watchdog_dump.json".to_string(),
        }
    }
}

/// The silence threshold from [`WATCHDOG_ENV`], if the watchdog is
/// enabled (`None` when unset, unparsable, or zero).
pub fn watchdog_ms_from_env() -> Option<u64> {
    let ms = std::env::var(WATCHDOG_ENV)
        .ok()?
        .trim()
        .parse::<u64>()
        .ok()?;
    if ms == 0 {
        None
    } else {
        Some(ms)
    }
}

/// Handle to a running watchdog thread; stops and joins on drop.
#[derive(Debug)]
pub struct WatchdogHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl WatchdogHandle {
    pub(crate) fn new(stop: Arc<AtomicBool>, thread: JoinHandle<()>) -> WatchdogHandle {
        WatchdogHandle {
            stop,
            thread: Some(thread),
        }
    }

    /// Signal the monitor thread to exit and wait for it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WatchdogHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::ArgValue;
    use crate::Obs;

    #[test]
    fn beats_rearm_and_flag_once() {
        let hb = Heartbeats::new();
        hb.beat("solve", 0);
        hb.beat("simulate", 0);
        assert!(hb.newly_stalled(50, 100).is_empty(), "within threshold");
        let stalled = hb.newly_stalled(200, 100);
        assert_eq!(stalled.len(), 2);
        assert_eq!(stalled[0].0, "simulate");
        assert_eq!(stalled[1].0, "solve");
        assert_eq!(stalled[1].1, 200);
        // Already flagged — not reported again for the same stall.
        assert!(hb.newly_stalled(400, 100).is_empty());
        // A fresh beat re-arms exactly that phase.
        hb.beat("solve", 500);
        let again = hb.newly_stalled(700, 100);
        assert_eq!(
            again.iter().map(|(p, _)| p.as_str()).collect::<Vec<_>>(),
            vec!["solve"]
        );
    }

    #[test]
    fn done_removes_phase_from_monitoring() {
        let hb = Heartbeats::new();
        hb.beat("layout", 0);
        assert_eq!(hb.live(), vec!["layout".to_string()]);
        hb.done("layout");
        assert!(hb.live().is_empty());
        assert!(hb.newly_stalled(u64::MAX, 1).is_empty());
    }

    #[test]
    fn env_parsing_rejects_zero_and_garbage() {
        // Avoid mutating the process env (other tests run in
        // parallel): exercise the parse contract directly.
        assert_eq!("250".trim().parse::<u64>().ok(), Some(250));
        assert!(watchdog_ms_from_env().is_none() || watchdog_ms_from_env().unwrap() > 0);
    }

    #[test]
    fn watchdog_flags_stalled_phase_and_dumps_flight() {
        let obs = Obs::enabled();
        let dump = std::env::temp_dir().join(format!(
            "casa_watchdog_test_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&dump);
        obs.set_flight_sink(Some(dump.clone()));
        let mut cfg = WatchdogConfig::new(Duration::from_millis(40));
        cfg.fallback_dump_path = dump.display().to_string();
        let mut wd = obs.start_watchdog(cfg).expect("enabled obs starts");
        obs.heartbeat("selftest.stall");
        // Never beat again: the phase must be flagged within a few
        // poll cycles. Generous deadline for loaded CI machines.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut stall_seen = false;
        while std::time::Instant::now() < deadline {
            if obs.events().iter().any(|e| e.name == "watchdog_stall") {
                stall_seen = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        wd.stop();
        assert!(stall_seen, "watchdog_stall instant event must be emitted");
        let ev = obs
            .events()
            .into_iter()
            .find(|e| e.name == "watchdog_stall")
            .unwrap();
        assert!(ev
            .args
            .iter()
            .any(|(k, v)| k == "phase" && *v == ArgValue::Str("selftest.stall".to_string())));
        assert!(dump.exists(), "stall must trigger a flight dump");
        let body = std::fs::read_to_string(&dump).unwrap();
        assert!(serde::json::parse(&body).is_ok(), "dump is valid JSON");
        // Counter recorded exactly one stall (flag-once semantics).
        let snap = obs.snapshot();
        assert_eq!(
            snap.get("watchdog.stalls"),
            Some(&crate::MetricValue::Counter(1))
        );
        let _ = std::fs::remove_file(&dump);
    }

    #[test]
    fn heartbeats_from_children_feed_parent_watchdog() {
        let parent = Obs::enabled();
        let child = parent.child();
        child.heartbeat("cell");
        // The beat landed in the shared table the parent monitors.
        assert_eq!(
            parent.heartbeats().map(|h| h.live()),
            Some(vec!["cell".to_string()])
        );
        child.heartbeat_done("cell");
        assert_eq!(parent.heartbeats().map(|h| h.live()), Some(Vec::new()));
        // Disabled handles no-op.
        let off = Obs::disabled();
        off.heartbeat("x");
        assert!(off.heartbeats().is_none());
        assert!(off
            .start_watchdog(WatchdogConfig::new(Duration::from_millis(10)))
            .is_none());
    }
}
