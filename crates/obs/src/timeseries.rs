//! Bounded, deterministic time-series store.
//!
//! Metrics snapshots answer "how much, in total"; this module answers
//! "how did it evolve". A [`TimeSeriesStore`] holds named series of
//! `(tick, value)` points where the tick is an explicit **logical
//! clock** supplied by the caller — a phase ordinal, a B&B node count,
//! a request-completion counter — never a wall-clock timestamp. That
//! restriction is the whole point: a series sampled at logical ticks
//! is byte-identical across worker counts and machines, so the sweep
//! can diff time-series between runs the same way it diffs the
//! deterministic report (and the sentinel can point at the first tick
//! where two runs diverged).
//!
//! The store is bounded **keep-first**: once `cap` points are held,
//! further samples are counted in `dropped` and discarded. Unlike the
//! flight ring (which keeps the *newest* events because it exists for
//! post-mortems), a time-series exists to show convergence from the
//! start, so the head of each series is the part worth keeping — and
//! keep-first drops are deterministic in sample order by construction.
//!
//! Export is [`timeseries_json`]: sorted series names (the map is a
//! `BTreeMap`), fixed field order, `jnum` floats — same deterministic
//! JSON discipline as every other exporter in this crate.

use crate::export::{jnum, json_escape};
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Default point capacity when `CASA_TS_CAP` is unset.
pub const DEFAULT_TIMESERIES_CAPACITY: usize = 4096;

/// Schema version of the time-series JSON document.
pub const TIMESERIES_SCHEMA: u32 = 1;

/// One sample: `(logical tick, value)`.
pub type TimePoint = (u64, f64);

/// A point-in-time copy of a [`TimeSeriesStore`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeriesSnapshot {
    /// Point capacity of the store this was taken from.
    pub cap: usize,
    /// Samples discarded because the store was full.
    pub dropped: u64,
    /// Series name → points, in sample order.
    pub series: BTreeMap<String, Vec<TimePoint>>,
}

impl TimeSeriesSnapshot {
    /// Total points across all series.
    pub fn points(&self) -> usize {
        self.series.values().map(Vec::len).sum()
    }

    /// Whether no series holds any point.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[derive(Debug, Default)]
struct TsState {
    points: usize,
    dropped: u64,
    series: BTreeMap<String, Vec<TimePoint>>,
}

/// Bounded store of named logical-tick series.
#[derive(Debug)]
pub struct TimeSeriesStore {
    cap: usize,
    state: Mutex<TsState>,
}

impl TimeSeriesStore {
    /// A store holding at most `cap` points across all series
    /// (clamped to ≥ 1).
    pub fn new(cap: usize) -> TimeSeriesStore {
        TimeSeriesStore {
            cap: cap.max(1),
            state: Mutex::new(TsState::default()),
        }
    }

    /// A store sized from `CASA_TS_CAP` (default
    /// [`DEFAULT_TIMESERIES_CAPACITY`]).
    pub fn from_env() -> TimeSeriesStore {
        let cap = std::env::var("CASA_TS_CAP")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_TIMESERIES_CAPACITY);
        TimeSeriesStore::new(cap)
    }

    /// Point capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TsState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Append one sample to `series` at logical `tick`. Once the
    /// store holds `cap` points the sample is dropped (keep-first) and
    /// counted.
    pub fn sample(&self, series: &str, tick: u64, value: f64) {
        let mut st = self.lock();
        if st.points >= self.cap {
            st.dropped += 1;
            return;
        }
        st.points += 1;
        st.series
            .entry(series.to_string())
            .or_default()
            .push((tick, value));
    }

    /// Append every point of `snap` (series by series, in point
    /// order), subject to this store's capacity. `snap.dropped` is
    /// carried over so evidence of truncation survives a merge chain.
    pub fn merge(&self, snap: &TimeSeriesSnapshot) {
        let mut st = self.lock();
        st.dropped += snap.dropped;
        for (name, points) in &snap.series {
            for &(tick, value) in points {
                if st.points >= self.cap {
                    st.dropped += 1;
                    continue;
                }
                st.points += 1;
                st.series
                    .entry(name.clone())
                    .or_default()
                    .push((tick, value));
            }
        }
    }

    /// Copy out the current contents.
    pub fn snapshot(&self) -> TimeSeriesSnapshot {
        let st = self.lock();
        TimeSeriesSnapshot {
            cap: self.cap,
            dropped: st.dropped,
            series: st.series.clone(),
        }
    }
}

/// Serialize a snapshot as a deterministic JSON document: fixed field
/// order, sorted series names, points as `[tick,value]` pairs in
/// sample order, non-finite values as `null`.
pub fn timeseries_json(snap: &TimeSeriesSnapshot) -> String {
    let mut s = format!(
        "{{\"casa_timeseries\":{TIMESERIES_SCHEMA},\"cap\":{},\"dropped\":{},\"series\":{{",
        snap.cap, snap.dropped
    );
    for (i, (name, points)) in snap.series.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":[", json_escape(name)));
        for (j, (tick, value)) in points.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{tick},{}]", jnum(*value)));
        }
        s.push(']');
    }
    s.push_str("}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_accumulate_in_order() {
        let ts = TimeSeriesStore::new(16);
        ts.sample("bb.incumbent", 1, 10.0);
        ts.sample("bb.incumbent", 7, 12.5);
        ts.sample("flow.progress", 0, 3.0);
        let snap = ts.snapshot();
        assert_eq!(snap.points(), 3);
        assert_eq!(
            snap.series.get("bb.incumbent"),
            Some(&vec![(1, 10.0), (7, 12.5)])
        );
        assert_eq!(snap.series.get("flow.progress"), Some(&vec![(0, 3.0)]));
    }

    #[test]
    fn keep_first_cap_counts_drops() {
        let ts = TimeSeriesStore::new(2);
        ts.sample("s", 0, 1.0);
        ts.sample("s", 1, 2.0);
        ts.sample("s", 2, 3.0);
        ts.sample("t", 0, 4.0);
        let snap = ts.snapshot();
        assert_eq!(snap.points(), 2);
        assert_eq!(snap.dropped, 2);
        // The head of the series survives, not the tail.
        assert_eq!(snap.series.get("s"), Some(&vec![(0, 1.0), (1, 2.0)]));
        assert!(!snap.series.contains_key("t"));
    }

    #[test]
    fn capacity_clamped_to_one() {
        let ts = TimeSeriesStore::new(0);
        assert_eq!(ts.capacity(), 1);
        ts.sample("s", 0, 1.0);
        ts.sample("s", 1, 2.0);
        assert_eq!(ts.snapshot().points(), 1);
    }

    #[test]
    fn merge_appends_and_carries_drops() {
        let a = TimeSeriesStore::new(8);
        a.sample("x", 0, 1.0);
        let b = TimeSeriesStore::new(2);
        b.sample("x", 5, 2.0);
        b.sample("y", 0, 3.0);
        b.sample("y", 1, 4.0); // dropped at b's cap
        let dst = TimeSeriesStore::new(8);
        dst.merge(&a.snapshot());
        dst.merge(&b.snapshot());
        let snap = dst.snapshot();
        assert_eq!(snap.series.get("x"), Some(&vec![(0, 1.0), (5, 2.0)]));
        assert_eq!(snap.series.get("y"), Some(&vec![(0, 3.0)]));
        assert_eq!(snap.dropped, 1, "b's drop evidence survives the merge");
    }

    #[test]
    fn merge_respects_destination_cap() {
        let src = TimeSeriesStore::new(8);
        for i in 0..5 {
            src.sample("s", i, i as f64);
        }
        let dst = TimeSeriesStore::new(3);
        dst.merge(&src.snapshot());
        let snap = dst.snapshot();
        assert_eq!(snap.points(), 3);
        assert_eq!(snap.dropped, 2);
        assert_eq!(
            snap.series.get("s"),
            Some(&vec![(0, 0.0), (1, 1.0), (2, 2.0)])
        );
    }

    #[test]
    fn json_is_deterministic_and_parses_back() {
        let ts = TimeSeriesStore::new(8);
        ts.sample("z.series", 3, 1.5);
        ts.sample("a.series", 0, f64::NAN);
        let snap = ts.snapshot();
        let json = timeseries_json(&snap);
        assert_eq!(json, timeseries_json(&snap), "same snapshot, same bytes");
        let a = json.find("a.series").unwrap();
        let z = json.find("z.series").unwrap();
        assert!(a < z, "series names sorted: {json}");
        assert!(json.contains("[0,null]"), "NaN exports as null: {json}");
        let v = serde::json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("casa_timeseries").and_then(|x| x.as_f64()), Some(1.0));
        let series = v.get("series").and_then(|x| x.as_object()).unwrap();
        assert!(series.contains_key("z.series"));
    }

    #[test]
    fn empty_store_exports_valid_json() {
        let json = timeseries_json(&TimeSeriesStore::new(4).snapshot());
        let v = serde::json::parse(&json).expect("valid JSON");
        assert_eq!(
            v.get("series").and_then(|x| x.as_object()).map(|m| m.len()),
            Some(0)
        );
    }
}
