//! Typed counters, gauges and histograms in a global-free [`Registry`].
//!
//! Two counter flavours serve two regimes:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] are atomic handles vended
//!   by a [`Registry`]; the registry is `Send + Sync`, so handles can
//!   be updated from the sweep thread pool without coordination.
//! * [`LocalCounter`] is a plain `u64` for single-owner hot paths (the
//!   fetch engine increments one per simulated instruction); it costs
//!   exactly an integer add and is flushed into a registry — or viewed
//!   as a snapshot struct — after the run.
//!
//! Exported state is always read through [`Registry::snapshot`], which
//! returns a [`MetricsSnapshot`] — a `BTreeMap`, so iteration (and the
//! JSON rendering in [`crate::export`]) is in sorted key order and
//! therefore deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A plain single-owner counter for hot paths: no atomics, no
/// allocation, `Copy`. The uninstrumented path pays one integer add.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LocalCounter(u64);

impl LocalCounter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        LocalCounter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

/// A monotonically increasing atomic counter handle.
///
/// Cloning shares the underlying cell; all updates use relaxed
/// ordering (counters are statistics, not synchronization).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere (useful for tests).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic `f64` gauge handle (stored as bit pattern; last write
/// wins).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not registered anywhere.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: one for zero plus one per power of
/// two, covering the whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    // Exact extremes, so quantile interpolation can be clamped to the
    // observed range instead of the (up to 2x wider) bucket bounds.
    // Sentinels (u64::MAX / 0) are never exported while count == 0.
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// An atomic histogram handle over `u64` samples with power-of-two
/// buckets: bucket 0 holds zeros, bucket `k >= 1` holds values in
/// `[2^(k-1), 2^k)`.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

/// The bucket index a value falls into.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The largest value bucket `k` can hold (inclusive).
pub fn bucket_upper_bound(k: usize) -> u64 {
    match k {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << k) - 1,
    }
}

/// The smallest value bucket `k` can hold.
pub fn bucket_lower_bound(k: usize) -> u64 {
    match k {
        0 => 0,
        _ => 1u64 << (k - 1),
    }
}

impl Histogram {
    /// A histogram not registered anywhere.
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.min.fetch_min(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Merge a snapshot's buckets into this live histogram (bucket-wise
    /// atomic adds). This is how the sweep publishes finished per-cell
    /// histograms into the registry a live exporter serves.
    pub fn add_snapshot(&self, s: &HistogramSnapshot) {
        self.0.count.fetch_add(s.count, Ordering::Relaxed);
        self.0.sum.fetch_add(s.sum, Ordering::Relaxed);
        if let Some(m) = s.min_estimate() {
            self.0.min.fetch_min(m, Ordering::Relaxed);
        }
        if let Some(m) = s.max_estimate() {
            self.0.max.fetch_max(m, Ordering::Relaxed);
        }
        for &(ub, c) in &s.buckets {
            self.0.buckets[bucket_index(ub)].fetch_add(c, Ordering::Relaxed);
        }
    }

    /// Snapshot the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = (0..HISTOGRAM_BUCKETS)
            .filter_map(|k| {
                let c = self.0.buckets[k].load(Ordering::Relaxed);
                (c > 0).then_some((bucket_upper_bound(k), c))
            })
            .collect();
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            buckets,
            min: (count > 0).then(|| self.0.min.load(Ordering::Relaxed)),
            max: (count > 0).then(|| self.0.max.load(Ordering::Relaxed)),
        }
    }
}

/// Immutable view of a histogram: non-empty buckets as
/// `(inclusive upper bound, count)` in ascending bound order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// `(upper_bound, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
    /// Smallest recorded sample (`None` when empty or the snapshot
    /// was built without extremes, e.g. by hand in tests).
    pub min: Option<u64>,
    /// Largest recorded sample (`None` when empty or unknown).
    pub max: Option<u64>,
}

impl HistogramSnapshot {
    /// The smallest sample, falling back to the first non-empty
    /// bucket's lower bound when exact extremes are absent.
    pub fn min_estimate(&self) -> Option<u64> {
        self.min.or_else(|| {
            self.buckets
                .first()
                .map(|&(ub, _)| bucket_lower_bound(bucket_index(ub)))
        })
    }

    /// The largest sample, falling back to the last non-empty
    /// bucket's upper bound when exact extremes are absent.
    pub fn max_estimate(&self) -> Option<u64> {
        self.max.or_else(|| self.buckets.last().map(|&(ub, _)| ub))
    }

    /// The `q`-quantile (`0.0 <= q <= 1.0`) with within-bucket linear
    /// interpolation, clamped to the exact observed `[min, max]`.
    ///
    /// The cumulative target `q·count` is located in the bucket walk;
    /// the estimate interpolates linearly between that bucket's bounds
    /// by the fraction of its samples below the target. The first and
    /// last buckets are tightened to the recorded min/max, so a
    /// single-sample histogram reports the sample exactly, `q -> 0`
    /// approaches the minimum, and `q = 1` is the maximum. Monotone in
    /// `q` by construction. `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        let last_idx = self.buckets.len().checked_sub(1)?;
        for (bi, &(ub, c)) in self.buckets.iter().enumerate() {
            let next = cum + c;
            if (next as f64) >= target || bi == last_idx {
                let k = bucket_index(ub);
                let mut lo = bucket_lower_bound(k) as f64;
                let mut hi = ub as f64;
                if bi == 0 {
                    if let Some(m) = self.min {
                        lo = lo.max(m as f64);
                    }
                }
                if bi == last_idx {
                    if let Some(m) = self.max {
                        hi = hi.min(m as f64);
                    }
                }
                if hi < lo {
                    hi = lo;
                }
                let frac = if c == 0 {
                    1.0
                } else {
                    ((target - cum as f64) / c as f64).clamp(0.0, 1.0)
                };
                let mut v = lo + (hi - lo) * frac;
                if let (Some(mn), Some(mx)) = (self.min, self.max) {
                    v = v.clamp(mn as f64, mx as f64);
                }
                return Some(v);
            }
            cum = next;
        }
        None
    }

    /// Median estimate ([`Self::quantile`] at 0.5).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.9)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Merge another snapshot into this one (bucket-wise addition;
    /// extremes combine, estimating from bucket bounds for a side
    /// that lacks them).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mins = (self.min_estimate(), other.min_estimate());
        let maxs = (self.max_estimate(), other.max_estimate());
        self.min = match mins {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match maxs {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.count += other.count;
        self.sum += other.sum;
        for &(le, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&le, |&(b, _)| b) {
                Ok(i) => self.buckets[i].1 += c,
                Err(i) => self.buckets.insert(i, (le, c)),
            }
        }
    }
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter(u64),
    /// A last-write-wins gauge.
    Gauge(f64),
    /// A bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// A point-in-time view of a registry: metric name → value, sorted by
/// name (it is a `BTreeMap`), which is what makes the JSON export
/// deterministic.
pub type MetricsSnapshot = BTreeMap<String, MetricValue>;

/// Merge `from` into `into`: counters add, histograms merge, gauges
/// take `from`'s value; a kind mismatch is resolved in `from`'s
/// favour.
pub fn merge_snapshot(into: &mut MetricsSnapshot, from: &MetricsSnapshot) {
    for (name, v) in from {
        match (into.get_mut(name), v) {
            (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
            (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(b),
            (slot, v) => {
                let v = v.clone();
                match slot {
                    Some(s) => *s = v,
                    None => {
                        into.insert(name.clone(), v);
                    }
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A global-free metric registry: create one per scope you want to
/// aggregate over (one per sweep cell, one per process, ...), pass it
/// by reference, snapshot it at the end. `Send + Sync`; handle lookup
/// takes a lock, updates through handles are lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.write().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.write().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name} is not a gauge: {other:?}"),
        }
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.write().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.read().unwrap().len()
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge a finished snapshot into the **live** registry: counters
    /// add, histograms add bucket-wise, gauges take the snapshot's
    /// value. The live-telemetry counterpart of [`merge_snapshot`] —
    /// the sweep pool calls it after each cell so an attached exporter
    /// sees per-cell metrics as they complete, not at the end.
    ///
    /// # Panics
    ///
    /// Panics if a name in `snap` is already registered here as a
    /// different kind.
    pub fn merge_from(&self, snap: &MetricsSnapshot) {
        for (name, v) in snap {
            match v {
                MetricValue::Counter(n) => self.counter(name).add(*n),
                MetricValue::Gauge(g) => self.gauge(name).set(*g),
                MetricValue::Histogram(h) => self.histogram(name).add_snapshot(h),
            }
        }
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .read()
            .unwrap()
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_single_sample_is_the_sample_at_every_q() {
        let h = Histogram::detached();
        h.record(37);
        let snap = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), Some(37.0), "q={q}");
        }
    }

    #[test]
    fn quantile_extremes_clamp_to_exact_min_and_max() {
        let h = Histogram::detached();
        for v in [5, 9, 100, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        // q=0 is the recorded minimum exactly (not the first bucket's
        // lower bound), q=1 the recorded maximum exactly (not the last
        // bucket's upper bound).
        assert_eq!(snap.quantile(0.0), Some(5.0));
        assert_eq!(snap.quantile(1.0), Some(1000.0));
        // Every interior quantile stays inside [min, max].
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let v = snap.quantile(q).unwrap();
            assert!((5.0..=1000.0).contains(&v), "q={q} escaped: {v}");
        }
    }

    #[test]
    fn quantile_out_of_range_q_clamps_into_unit_interval() {
        let h = Histogram::detached();
        h.record(4);
        h.record(64);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(-3.5), snap.quantile(0.0));
        assert_eq!(snap.quantile(7.0), snap.quantile(1.0));
        assert_eq!(snap.quantile(f64::NEG_INFINITY), snap.quantile(0.0));
        assert_eq!(snap.quantile(f64::INFINITY), snap.quantile(1.0));
        assert_eq!(snap.quantile(-0.0), Some(4.0));
    }

    #[test]
    fn local_counter_is_a_plain_add() {
        let mut c = LocalCounter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn bucket_index_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's upper bound falls into that bucket, and its
        // successor into the next.
        for k in 0..HISTOGRAM_BUCKETS {
            let ub = bucket_upper_bound(k);
            assert_eq!(bucket_index(ub), k, "upper bound of bucket {k}");
            if k < 64 {
                assert_eq!(bucket_index(ub + 1), k + 1);
            }
        }
    }

    #[test]
    fn histogram_records_into_expected_buckets() {
        let h = Histogram::detached();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        // 0 -> bucket 0 (le 0); 1 -> le 1; 2,3 -> le 3; 4 -> le 7;
        // 1000 -> le 1023.
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        a.record(1);
        a.record(100);
        b.record(1);
        b.record(5);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 107);
        assert_eq!(s.buckets, vec![(1, 2), (7, 1), (127, 1)]);
        assert_eq!(s.min, Some(1), "merged min is the smaller exact min");
        assert_eq!(s.max, Some(100), "merged max is the larger exact max");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::detached();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.min, Some(1));
        assert_eq!(s.max, Some(512));
        // One sample per bucket: the q-target lands exactly on each
        // bucket's cumulative boundary, so interpolation reports that
        // bucket's (min/max-tightened) upper edge.
        assert_eq!(s.quantile(0.1), Some(1.0), "first bucket clamps to min");
        assert_eq!(s.p50(), Some(31.0), "upper edge of the 5th bucket");
        assert_eq!(s.p90(), Some(511.0), "upper edge of the 9th bucket");
        assert_eq!(s.p99(), Some(512.0), "last bucket clamps to max");
        assert_eq!(s.quantile(1.0), Some(512.0), "q = 1 is the maximum");
    }

    #[test]
    fn quantiles_pin_known_sample_sets() {
        // Regression for the pre-interpolation underestimate: a
        // cluster at 100 used to report p50 = 64 (the bucket's lower
        // bound) no matter what the samples were.
        let h = Histogram::detached();
        for _ in 0..100 {
            h.record(100);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), Some(100.0), "identical samples are exact");
        assert_eq!(s.p99(), Some(100.0));
        // Uniform 1..=1000: true p50 is 500, p90 is 900. The log2
        // estimate must land inside the correct bucket, clamped to
        // the exact extremes, and must not report the old lower
        // bounds (256 / 512).
        let h = Histogram::detached();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.min, Some(1));
        assert_eq!(s.max, Some(1000));
        let p50 = s.p50().unwrap();
        assert!(
            (256.0..=511.0).contains(&p50) && p50 > 256.0,
            "p50 {p50} must interpolate above the bucket floor 256"
        );
        let p99 = s.p99().unwrap();
        assert!(
            (512.0..=1000.0).contains(&p99) && p99 > 512.0,
            "p99 {p99} must interpolate above the bucket floor 512"
        );
        assert_eq!(s.quantile(1.0), Some(1000.0));
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::detached();
        let mut v = 1u64;
        for i in 0..200u64 {
            h.record(v + i % 7);
            if i % 5 == 0 {
                v = v.saturating_mul(2).min(1 << 40);
            }
        }
        let s = h.snapshot();
        let mut last = 0.0f64;
        for i in 1..=100 {
            let q = s.quantile(f64::from(i) / 100.0).unwrap();
            assert!(q >= last, "quantile must be monotone: q{i} = {q} < {last}");
            last = q;
        }
        let (p50, p90, p99) = (s.p50().unwrap(), s.p90().unwrap(), s.p99().unwrap());
        assert!(p50 <= p90 && p90 <= p99, "{p50} <= {p90} <= {p99}");
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let s = Histogram::detached().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p50(), None);
        assert_eq!(s.p99(), None);
    }

    #[test]
    fn quantile_of_single_sample_and_zeros() {
        let h = Histogram::detached();
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.p50(), Some(0.0));
        assert_eq!(s.p99(), Some(0.0));
        let h = Histogram::detached();
        h.record(1000); // bucket [512, 1024) — exact extremes pin it
        let s = h.snapshot();
        assert_eq!((s.min, s.max), (Some(1000), Some(1000)));
        assert_eq!(s.p50(), Some(1000.0));
        assert_eq!(s.p99(), Some(1000.0));
    }

    #[test]
    fn bucket_lower_bounds_bracket_their_buckets() {
        for k in 0..HISTOGRAM_BUCKETS {
            let lb = bucket_lower_bound(k);
            assert!(lb <= bucket_upper_bound(k), "bucket {k}");
            assert_eq!(bucket_index(lb), k, "lower bound of bucket {k}");
        }
    }

    #[test]
    fn registry_vends_shared_handles() {
        let r = Registry::new();
        let c1 = r.counter("x");
        let c2 = r.counter("x");
        c1.add(2);
        c2.inc();
        assert_eq!(r.counter("x").get(), 3);
        r.gauge("g").set(1.5);
        r.histogram("h").record(9);
        let snap = r.snapshot();
        assert_eq!(snap.get("x"), Some(&MetricValue::Counter(3)));
        assert_eq!(snap.get("g"), Some(&MetricValue::Gauge(1.5)));
        let keys: Vec<&str> = snap.keys().map(String::as_str).collect();
        assert_eq!(keys, vec!["g", "h", "x"], "sorted iteration order");
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshots_merge_deterministically() {
        let r1 = Registry::new();
        r1.counter("n").add(2);
        r1.gauge("g").set(1.0);
        let r2 = Registry::new();
        r2.counter("n").add(3);
        r2.gauge("g").set(2.0);
        let mut s = r1.snapshot();
        merge_snapshot(&mut s, &r2.snapshot());
        assert_eq!(s.get("n"), Some(&MetricValue::Counter(5)));
        assert_eq!(s.get("g"), Some(&MetricValue::Gauge(2.0)), "last wins");
    }

    #[test]
    fn merge_from_updates_live_handles() {
        let live = Registry::new();
        live.counter("n").add(1);
        live.histogram("h").record(4);
        let cell = Registry::new();
        cell.counter("n").add(2);
        cell.gauge("g").set(3.5);
        cell.histogram("h").record(4);
        cell.histogram("h").record(100);
        live.merge_from(&cell.snapshot());
        let snap = live.snapshot();
        assert_eq!(snap.get("n"), Some(&MetricValue::Counter(3)));
        assert_eq!(snap.get("g"), Some(&MetricValue::Gauge(3.5)));
        match snap.get("h") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 3);
                assert_eq!(h.sum, 108);
                assert_eq!(h.buckets, vec![(7, 2), (127, 1)]);
                assert_eq!(h.min, Some(4), "merge_from carries exact extremes");
                assert_eq!(h.max, Some(100));
            }
            other => panic!("histogram expected, got {other:?}"),
        }
    }

    #[test]
    fn registry_is_send_sync() {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
        assert_send_sync::<Histogram>();
    }
}
