//! Flight recorder: a bounded ring buffer of recent observability
//! events, dumped as deterministic JSON when something goes wrong.
//!
//! The recorder mirrors what flows through an enabled [`Obs`] handle —
//! span opens, instant events, counter/gauge/histogram updates — into
//! a fixed-capacity ring. When the program panics (via an installed
//! hook), when the allocation engine degrades to a fallback allocator,
//! or on demand, the ring is serialized with a stable field order so
//! post-mortem diffs are meaningful. The buffer is bounded by
//! construction: once full, the oldest event is overwritten and a
//! `dropped` counter keeps the evidence honest.
//!
//! "Lock-free-enough": pushes take one short [`Mutex`] critical
//! section (a ring-slot write, no allocation besides the event's name)
//! rather than a true lock-free queue — the recorder shares the
//! enabled-path cost profile of the metric registry it mirrors, and
//! the disabled path pays nothing because a disabled [`Obs`] never
//! constructs one.
//!
//! [`Obs`]: crate::Obs

use crate::export::{jnum, json_escape, snapshot_to_json};
use crate::metrics::MetricsSnapshot;
use crate::span::ArgValue;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Default ring capacity when `CASA_FLIGHT_CAP` is unset.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Schema version of the flight-dump JSON document.
pub const FLIGHT_DUMP_SCHEMA: u32 = 1;

/// What kind of activity a [`FlightEvent`] mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A span was opened (`Obs::span` / `Obs::span_with`).
    Span,
    /// An instant event (`Obs::instant`).
    Instant,
    /// A counter increment (`Obs::add`); the value is the increment.
    Counter,
    /// A gauge write (`Obs::gauge_set`); the value is the new reading.
    Gauge,
    /// A histogram observation (`Obs::record`); the value is the
    /// sample.
    Histogram,
    /// A free-form annotation (degradation reasons, dump triggers).
    Note,
}

impl FlightKind {
    /// Stable lowercase tag used in the dump JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Span => "span",
            FlightKind::Instant => "instant",
            FlightKind::Counter => "counter",
            FlightKind::Gauge => "gauge",
            FlightKind::Histogram => "histogram",
            FlightKind::Note => "note",
        }
    }

    /// Inverse of [`FlightKind::as_str`] (not `FromStr`: unknown tags
    /// are an expected `None`, not an error type).
    pub fn from_tag(s: &str) -> Option<FlightKind> {
        Some(match s {
            "span" => FlightKind::Span,
            "instant" => FlightKind::Instant,
            "counter" => FlightKind::Counter,
            "gauge" => FlightKind::Gauge,
            "histogram" => FlightKind::Histogram,
            "note" => FlightKind::Note,
            _ => return None,
        })
    }
}

/// One mirrored event in the flight ring.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Monotone sequence number (never reused, survives ring wrap).
    pub seq: u64,
    /// Microseconds since the owning collector's epoch.
    pub ts_us: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Metric / span / note name.
    pub name: String,
    /// Payload, when the event carries one.
    pub value: Option<ArgValue>,
}

#[derive(Debug, Default)]
struct FlightState {
    next_seq: u64,
    dropped: u64,
    ring: VecDeque<FlightEvent>,
}

/// Bounded recorder of recent [`FlightEvent`]s plus the optional dump
/// sink path automatic dumps (panic hook, engine degradation) write
/// to.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    state: Mutex<FlightState>,
    sink: Mutex<Option<PathBuf>>,
    dump_lock: Mutex<()>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            state: Mutex::new(FlightState::default()),
            sink: Mutex::new(None),
            dump_lock: Mutex::new(()),
        }
    }

    /// A recorder sized from `CASA_FLIGHT_CAP` (default
    /// [`DEFAULT_FLIGHT_CAPACITY`]).
    pub fn from_env() -> FlightRecorder {
        let cap = std::env::var("CASA_FLIGHT_CAP")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_FLIGHT_CAPACITY);
        FlightRecorder::new(cap)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().ring.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.state.lock().unwrap().dropped
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, kind: FlightKind, name: &str, ts_us: u64, value: Option<ArgValue>) {
        let mut st = self.state.lock().unwrap();
        let seq = st.next_seq;
        st.next_seq += 1;
        if st.ring.len() == self.capacity {
            st.ring.pop_front();
            st.dropped += 1;
        }
        st.ring.push_back(FlightEvent {
            seq,
            ts_us,
            kind,
            name: name.to_string(),
            value,
        });
    }

    /// Snapshot the buffered events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.state.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Set (or clear) the automatic-dump sink path.
    pub fn set_sink(&self, path: Option<PathBuf>) {
        *self.sink.lock().unwrap() = path;
    }

    /// The automatic-dump sink path, if configured.
    pub fn sink(&self) -> Option<PathBuf> {
        self.sink.lock().unwrap().clone()
    }

    /// Serialize access to dump-file writes so concurrent dumps (panic
    /// hook vs. degradation note vs. watchdog) never interleave within
    /// one file. Poison-tolerant: dumps run inside panic hooks, where a
    /// poisoned mutex must not abort the post-mortem write.
    pub fn dump_guard(&self) -> MutexGuard<'_, ()> {
        self.dump_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

fn value_json(v: &Option<ArgValue>) -> String {
    match v {
        None => "null".to_string(),
        Some(ArgValue::U64(n)) => n.to_string(),
        Some(ArgValue::F64(n)) => jnum(*n),
        Some(ArgValue::Str(s)) => format!("\"{}\"", json_escape(s)),
    }
}

/// Serialize a flight buffer as a deterministic JSON document: fixed
/// field order, events oldest-first, metrics in sorted key order.
/// (The *format* is deterministic; timestamps are real measurements.)
pub fn flight_dump_json(
    capacity: usize,
    dropped: u64,
    events: &[FlightEvent],
    metrics: &MetricsSnapshot,
) -> String {
    let mut s = format!(
        "{{\"casa_flight\":{FLIGHT_DUMP_SCHEMA},\"capacity\":{capacity},\"dropped\":{dropped},\"events\":["
    );
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"seq\":{},\"ts_us\":{},\"kind\":\"{}\",\"name\":\"{}\",\"value\":{}}}",
            e.seq,
            e.ts_us,
            e.kind.as_str(),
            json_escape(&e.name),
            value_json(&e.value)
        ));
    }
    s.push_str("],\"metrics\":");
    s.push_str(&snapshot_to_json(metrics));
    s.push('}');
    s
}

/// Render flight events as a time-ordered fixed-width table (sorted by
/// sequence number, which is also time order within one recorder).
pub fn render_flight_table(events: &[FlightEvent]) -> String {
    let mut rows: Vec<&FlightEvent> = events.iter().collect();
    rows.sort_by_key(|e| e.seq);
    let mut s = String::new();
    s.push_str(&format!(
        "{:>6} {:>12} {:<10} {:<40} {}\n",
        "seq", "t (ms)", "kind", "name", "value"
    ));
    for e in rows {
        let value = match &e.value {
            None => "-".to_string(),
            Some(ArgValue::U64(n)) => n.to_string(),
            Some(ArgValue::F64(n)) => format!("{n}"),
            Some(ArgValue::Str(v)) => v.clone(),
        };
        s.push_str(&format!(
            "{:>6} {:>12.3} {:<10} {:<40} {}\n",
            e.seq,
            e.ts_us as f64 / 1000.0,
            e.kind.as_str(),
            e.name,
            value
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.push(FlightKind::Counter, "n", i, Some(ArgValue::U64(i)));
        }
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let evs = r.events();
        // Oldest two evicted; sequence numbers keep counting.
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn capacity_clamped_to_one() {
        let r = FlightRecorder::new(0);
        r.push(FlightKind::Note, "a", 0, None);
        r.push(FlightKind::Note, "b", 1, None);
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].name, "b");
    }

    #[test]
    fn kind_tags_round_trip() {
        for k in [
            FlightKind::Span,
            FlightKind::Instant,
            FlightKind::Counter,
            FlightKind::Gauge,
            FlightKind::Histogram,
            FlightKind::Note,
        ] {
            assert_eq!(FlightKind::from_tag(k.as_str()), Some(k));
        }
        assert_eq!(FlightKind::from_tag("bogus"), None);
    }

    #[test]
    fn dump_is_valid_deterministic_json() {
        let r = FlightRecorder::new(8);
        r.push(FlightKind::Span, "solve", 10, None);
        r.push(
            FlightKind::Note,
            "engine.fallback",
            20,
            Some(ArgValue::Str("reason \"x\"".to_string())),
        );
        r.push(FlightKind::Gauge, "gap", 30, Some(ArgValue::F64(1.5)));
        let json = flight_dump_json(
            r.capacity(),
            r.dropped(),
            &r.events(),
            &MetricsSnapshot::new(),
        );
        let v = serde::json::parse(&json).expect("dump must be valid JSON");
        assert_eq!(
            v.get("casa_flight").and_then(|x| x.as_f64()),
            Some(f64::from(FLIGHT_DUMP_SCHEMA))
        );
        let events = v.get("events").and_then(|x| x.as_array()).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[1].get("value").and_then(|x| x.as_str()),
            Some("reason \"x\"")
        );
        // Same inputs, same bytes.
        let again = flight_dump_json(
            r.capacity(),
            r.dropped(),
            &r.events(),
            &MetricsSnapshot::new(),
        );
        assert_eq!(json, again);
    }

    #[test]
    fn table_orders_by_sequence() {
        let events = vec![
            FlightEvent {
                seq: 2,
                ts_us: 30,
                kind: FlightKind::Instant,
                name: "later".to_string(),
                value: None,
            },
            FlightEvent {
                seq: 1,
                ts_us: 10,
                kind: FlightKind::Counter,
                name: "earlier".to_string(),
                value: Some(ArgValue::U64(7)),
            },
        ];
        let table = render_flight_table(&events);
        let earlier = table.find("earlier").unwrap();
        let later = table.find("later").unwrap();
        assert!(earlier < later, "rows are time-ordered:\n{table}");
        assert!(table.contains("counter"));
        assert!(table.contains('7'));
    }
}
