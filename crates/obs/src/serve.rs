//! Live telemetry service: a minimal std-only HTTP/1.1 server
//! exposing an enabled [`Obs`] handle while the instrumented program
//! runs.
//!
//! Endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition rendered from the
//!   current [`MetricsSnapshot`] ([`prometheus_text`]): counters and
//!   gauges as their native types, log₂ histograms as summaries with
//!   p50/p90/p99 quantile lines.
//! * `GET /snapshot.json` — the deterministic sorted-key JSON snapshot
//!   ([`crate::snapshot_to_json`]).
//! * `GET /flight.json` — the flight-recorder ring ([`Obs::dump_flight`]).
//! * `GET /healthz` — liveness (`ok`).
//! * `GET /events` — Server-Sent Events stream of span begin/end and
//!   instant events, tee'd from the [`TraceCollector`] through a
//!   bounded subscriber channel. Connecting mid-run replays history
//!   first (atomically, so nothing is missed or duplicated), then
//!   streams live.
//! * `GET|POST /quitquitquit` — requests a graceful quit; binaries
//!   lingering for a scraper ([`ServeHandle::wait_quit`]) exit early.
//!
//! The server is deliberately boring: blocking `TcpListener`, one
//! thread per connection, `Connection: close` on every response. It
//! never touches the instrumented path — readers take the same locks
//! any snapshot does, and SSE subscribers are bounded channels that
//! drop on overflow rather than block a writer.
//!
//! The std-only HTTP *client* helpers ([`http_get`], [`collect_sse`])
//! and the exposition validator ([`validate_exposition`]) live here
//! too so `diag --probe` and CI share one implementation.
//!
//! [`Obs`]: crate::Obs
//! [`Obs::dump_flight`]: crate::Obs::dump_flight
//! [`TraceCollector`]: crate::TraceCollector
//! [`MetricsSnapshot`]: crate::MetricsSnapshot

use crate::export::{json_escape, snapshot_to_json};
use crate::metrics::{MetricValue, MetricsSnapshot};
use crate::span::{ArgValue, StreamEvent};
use crate::Obs;
use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Bound on each SSE subscriber's channel: a scraper that falls this
/// many events behind starts losing events instead of slowing the
/// instrumented program.
pub const SSE_SUBSCRIBER_CAPACITY: usize = 256;

/// Prefix every exported Prometheus family carries.
pub const PROMETHEUS_PREFIX: &str = "casa_";

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Map an internal metric name (dotted, free-form) to a Prometheus
/// family name: `casa_` prefix, every character outside
/// `[a-zA-Z0-9_:]` replaced by `_` (so `energy.total_uj` becomes
/// `casa_energy_total_uj`).
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(PROMETHEUS_PREFIX.len() + name.len());
    out.push_str(PROMETHEUS_PREFIX);
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Format an `f64` as a Prometheus sample value (`NaN` / `+Inf` /
/// `-Inf` spellings per the exposition format, shortest round-trip
/// otherwise).
pub fn prom_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4). Counters and gauges keep their type; log₂
/// histograms are rendered as `summary` families with quantile lines
/// (0.5 / 0.9 / 0.99, bucket lower bounds — present only when the
/// histogram has samples) plus `_sum` and `_count`. Keys iterate in
/// sorted order; if two internal names sanitize to the same family the
/// first wins and later ones are skipped (never a duplicate family).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (name, value) in snap {
        let fam = prometheus_name(name);
        if !seen.insert(fam.clone()) {
            continue;
        }
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {fam} counter\n{fam} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {fam} gauge\n{fam} {}\n", prom_num(*v)));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {fam} summary\n"));
                if h.count > 0 {
                    for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
                        if let Some(v) = v {
                            out.push_str(&format!("{fam}{{quantile=\"{q}\"}} {v}\n"));
                        }
                    }
                }
                out.push_str(&format!("{fam}_sum {}\n{fam}_count {}\n", h.sum, h.count));
            }
        }
    }
    out
}

/// Summary statistics returned by [`validate_exposition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Distinct metric families declared with `# TYPE` lines.
    pub families: usize,
    /// Sample lines (family, `_sum`/`_count`, and quantile lines all
    /// count).
    pub samples: usize,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_sample_value(v: &str) -> bool {
    matches!(v, "NaN" | "+Inf" | "-Inf") || v.parse::<f64>().is_ok()
}

/// Validate Prometheus text exposition: every sample belongs to a
/// family declared by a preceding `# TYPE` line, no family is declared
/// twice, names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, and values parse.
/// Returns counts on success, a description of the first violation on
/// failure.
pub fn validate_exposition(text: &str) -> Result<ExpositionStats, String> {
    let mut families: BTreeSet<String> = BTreeSet::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, ty) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(t), None) => (n, t),
                _ => return Err(format!("line {}: malformed TYPE line: {line}", lineno + 1)),
            };
            if !valid_metric_name(name) {
                return Err(format!("line {}: invalid family name {name:?}", lineno + 1));
            }
            if !matches!(
                ty,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(format!("line {}: unknown metric type {ty:?}", lineno + 1));
            }
            if !families.insert(name.to_string()) {
                return Err(format!("line {}: duplicate family {name:?}", lineno + 1));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free-form comment
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find('{') {
            Some(brace) => {
                let close = line[brace..]
                    .find('}')
                    .map(|i| brace + i)
                    .ok_or_else(|| format!("line {}: unclosed label set: {line}", lineno + 1))?;
                (&line[..brace], line[close + 1..].trim())
            }
            None => {
                let mut it = line.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| format!("line {}: empty sample", lineno + 1))?;
                (name, line[name.len()..].trim())
            }
        };
        let value = value_part
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("line {}: sample without value: {line}", lineno + 1))?;
        if !valid_metric_name(name_part) {
            return Err(format!(
                "line {}: invalid sample name {name_part:?}",
                lineno + 1
            ));
        }
        if !valid_sample_value(value) {
            return Err(format!(
                "line {}: unparsable sample value {value:?}",
                lineno + 1
            ));
        }
        let base = name_part
            .strip_suffix("_sum")
            .or_else(|| name_part.strip_suffix("_count"))
            .or_else(|| name_part.strip_suffix("_bucket"))
            .unwrap_or(name_part);
        if !families.contains(name_part) && !families.contains(base) {
            return Err(format!(
                "line {}: sample {name_part:?} has no preceding TYPE line",
                lineno + 1
            ));
        }
        samples += 1;
    }
    Ok(ExpositionStats {
        families: families.len(),
        samples,
    })
}

// ---------------------------------------------------------------------------
// SSE frame serialization
// ---------------------------------------------------------------------------

fn arg_json(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(n) => n.to_string(),
        ArgValue::F64(n) => crate::export::jnum(*n),
        ArgValue::Str(s) => format!("\"{}\"", json_escape(s)),
    }
}

/// Serialize one tee'd event as the single-line JSON document carried
/// in an SSE `data:` field.
pub fn stream_event_json(ev: &StreamEvent) -> String {
    let e = ev.event();
    let mut s = format!(
        "{{\"kind\":\"{}\",\"name\":\"{}\",\"tid\":{},\"ts_us\":{},\"dur_us\":{}",
        ev.kind_str(),
        json_escape(&e.name),
        e.tid,
        e.ts_us,
        e.dur_us
            .map_or_else(|| "null".to_string(), |d| d.to_string())
    );
    s.push_str(",\"args\":{");
    for (i, (k, v)) in e.args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":{}", json_escape(k), arg_json(v)));
    }
    s.push_str("}}");
    s
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// One parsed HTTP request, as handed to a [`Router`].
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// Request path with any `?query` suffix stripped.
    pub path: String,
    /// Request body (empty unless the client sent `Content-Length`).
    pub body: Vec<u8>,
}

/// A response a [`Router`] hands back to the connection handler.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (200, 400, 429, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
    /// Extra headers appended verbatim (name, value).
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json".to_string(),
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain".to_string(),
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// Append an extra header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// The canonical reason phrase for a status code (only the codes this
/// stack emits; anything else renders as `Status`).
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// Application hook: inspects a request before the built-in telemetry
/// routes; returning `Some` sends that response, `None` falls through
/// to `/metrics`, `/events`, etc. This is how `casa-server` mounts
/// `POST /solve` on the telemetry stack without duplicating the HTTP
/// plumbing.
pub type Router = Arc<dyn Fn(&Request) -> Option<Response> + Send + Sync>;

/// Limits and deadlines for the connection handlers.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Total wall-clock allowance for reading one request — head *and*
    /// body. This is a deadline, not a per-read timeout: a client that
    /// drips one byte per second cannot pin a handler thread past it
    /// (the slowloris defence).
    pub read_deadline: Duration,
    /// Maximum request-line + header bytes.
    pub max_head_bytes: usize,
    /// Maximum request body bytes (`Content-Length` above this is
    /// rejected with 413 before reading the body).
    pub max_body_bytes: usize,
    /// How long [`ServeHandle::shutdown`] waits for in-flight
    /// connection handlers to finish before giving up on them.
    pub drain_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_deadline: Duration::from_secs(5),
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Count of in-flight connection handlers, waitable for shutdown
/// draining.
#[derive(Debug, Default)]
struct Drain {
    active: Mutex<usize>,
    idle: Condvar,
}

impl Drain {
    fn enter(self: &Arc<Self>) -> DrainGuard {
        let mut n = self.active.lock().unwrap_or_else(PoisonError::into_inner);
        *n += 1;
        DrainGuard(Arc::clone(self))
    }

    /// Wait until no handler is in flight; returns whether the pool
    /// drained within `timeout`.
    fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut n = self.active.lock().unwrap_or_else(PoisonError::into_inner);
        while *n > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = self
                .idle
                .wait_timeout(n, left)
                .unwrap_or_else(PoisonError::into_inner);
            n = guard;
        }
        true
    }
}

struct DrainGuard(Arc<Drain>);

impl Drop for DrainGuard {
    fn drop(&mut self) {
        let mut n = self.0.active.lock().unwrap_or_else(PoisonError::into_inner);
        *n = n.saturating_sub(1);
        self.0.idle.notify_all();
    }
}

/// Handle to a running telemetry server; shuts down (and joins the
/// accept thread) on drop.
#[derive(Debug)]
pub struct ServeHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    quit: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    drain: Arc<Drain>,
    drain_timeout: Duration,
}

impl ServeHandle {
    /// The address actually bound (port resolved when the request was
    /// `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a client has requested `/quitquitquit`.
    pub fn quit_requested(&self) -> bool {
        self.quit.load(Ordering::SeqCst)
    }

    /// Block until a client requests `/quitquitquit` or `timeout`
    /// elapses; returns whether quit was requested. Lets a binary
    /// linger for a scraper after its work is done without an
    /// unconditional sleep.
    pub fn wait_quit(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.quit_requested() {
                return true;
            }
            thread::sleep(Duration::from_millis(20));
        }
        self.quit_requested()
    }

    /// Stop accepting connections, join the accept thread, then
    /// **drain**: wait (up to the configured drain timeout) for every
    /// in-flight connection handler to finish writing its response.
    /// Without the drain, a quit landing concurrently with a `/metrics`
    /// scrape could tear the process down mid-response. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.drain.wait_idle(self.drain_timeout);
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start the telemetry server for an enabled handle. `addr` is any
/// `host:port` string (`127.0.0.1:0` picks a free port — read it back
/// from [`ServeHandle::local_addr`]). A disabled handle is an
/// [`io::ErrorKind::Unsupported`] error: there is nothing to serve.
pub fn start(obs: &Obs, addr: &str) -> io::Result<ServeHandle> {
    start_with(obs, addr, ServeOptions::default(), None)
}

/// Like [`start`], with explicit [`ServeOptions`] and an optional
/// application [`Router`] consulted before the built-in telemetry
/// routes. This is the full-control entry point `casa-server` uses to
/// mount `POST /solve` on the same listener that serves `/metrics`.
pub fn start_with(
    obs: &Obs,
    addr: &str,
    opts: ServeOptions,
    router: Option<Router>,
) -> io::Result<ServeHandle> {
    if !obs.is_enabled() {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "telemetry server needs an enabled Obs handle (set CASA_TRACE=1)",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let quit = Arc::new(AtomicBool::new(false));
    let drain = Arc::new(Drain::default());
    let drain_timeout = opts.drain_timeout;
    let obs = obs.clone();
    let t_shutdown = Arc::clone(&shutdown);
    let t_quit = Arc::clone(&quit);
    let t_drain = Arc::clone(&drain);
    let accept = thread::Builder::new()
        .name("casa-serve".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if t_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let obs = obs.clone();
                let shutdown = Arc::clone(&t_shutdown);
                let quit = Arc::clone(&t_quit);
                let opts = opts.clone();
                let router = router.clone();
                // The guard is taken on the accept thread — before
                // shutdown can observe the listener unblocked — so a
                // connection is either refused or fully drained, never
                // half-tracked.
                let guard = t_drain.enter();
                let _ = thread::Builder::new()
                    .name("casa-serve-conn".to_string())
                    .spawn(move || {
                        let _guard = guard;
                        let _ = handle_connection(&obs, stream, &shutdown, &quit, &opts, &router);
                    });
            }
        })?;
    Ok(ServeHandle {
        addr: local,
        shutdown,
        quit,
        accept: Some(accept),
        drain,
        drain_timeout,
    })
}

/// Why a request could not be read; each maps to an HTTP status.
#[derive(Debug)]
enum ReadError {
    /// The read deadline expired before the request arrived.
    Timeout,
    /// Request line + headers exceeded the configured bound.
    HeadTooLarge,
    /// Declared `Content-Length` exceeded the configured bound.
    BodyTooLarge,
    /// Structurally invalid request.
    Malformed(&'static str),
    /// The socket failed outright; nothing can be written back. The
    /// payload exists for `Debug` rendering only.
    Io(#[allow(dead_code)] io::Error),
}

impl ReadError {
    fn response(&self) -> Option<(u16, String)> {
        match self {
            ReadError::Timeout => Some((408, "request read deadline exceeded\n".to_string())),
            ReadError::HeadTooLarge => Some((413, "request head too large\n".to_string())),
            ReadError::BodyTooLarge => Some((413, "request body too large\n".to_string())),
            ReadError::Malformed(why) => Some((400, format!("{why}\n"))),
            ReadError::Io(_) => None,
        }
    }
}

/// One `read` bounded by an absolute deadline rather than a per-call
/// timeout: re-arming the socket timeout with the *remaining* time is
/// what closes the slowloris hole — a client feeding one byte per
/// second used to reset the old 5 s per-read timeout indefinitely.
fn read_with_deadline(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    deadline: Instant,
) -> Result<usize, ReadError> {
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(ReadError::Timeout);
        }
        stream.set_read_timeout(Some(left)).map_err(ReadError::Io)?;
        match stream.read(chunk) {
            Ok(n) => return Ok(n),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue; // deadline re-checked at the top
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Read one full request — head and (`Content-Length`-framed) body —
/// under `opts`'s size and deadline bounds.
fn read_request(stream: &mut TcpStream, opts: &ServeOptions) -> Result<Request, ReadError> {
    let deadline = Instant::now() + opts.read_deadline;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_len = loop {
        if let Some(pos) = head_end(&buf) {
            break pos;
        }
        if buf.len() > opts.max_head_bytes {
            return Err(ReadError::HeadTooLarge);
        }
        let n = read_with_deadline(stream, &mut chunk, deadline)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed before request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_len]).into_owned();
    let first = head.lines().next().unwrap_or("");
    let mut parts = first.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Err(ReadError::Malformed("malformed request line")),
    };
    let mut content_length = 0usize;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("unparsable Content-Length"))?;
            }
        }
    }
    if content_length > opts.max_body_bytes {
        return Err(ReadError::BodyTooLarge);
    }
    let mut body = buf[head_len + 4..].to_vec();
    while body.len() < content_length {
        let n = read_with_deadline(stream, &mut chunk, deadline)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let path = path.split('?').next().unwrap_or("").to_string();
    Ok(Request { method, path, body })
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn write_router_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

fn handle_connection(
    obs: &Obs,
    mut stream: TcpStream,
    shutdown: &Arc<AtomicBool>,
    quit: &Arc<AtomicBool>,
    opts: &ServeOptions,
    router: &Option<Router>,
) -> io::Result<()> {
    let req = match read_request(&mut stream, opts) {
        Ok(req) => req,
        Err(e) => {
            if let Some((status, body)) = e.response() {
                let status_line = format!("{status} {}", status_text(status));
                return write_response(&mut stream, &status_line, "text/plain", &body);
            }
            return Ok(()); // socket error: nothing to write to
        }
    };
    if let Some(router) = router {
        if let Some(resp) = router(&req) {
            return write_router_response(&mut stream, &resp);
        }
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics") => write_response(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &prometheus_text(&obs.snapshot()),
        ),
        ("GET", "/snapshot.json") => write_response(
            &mut stream,
            "200 OK",
            "application/json",
            &snapshot_to_json(&obs.snapshot()),
        ),
        ("GET", "/flight.json") => write_response(
            &mut stream,
            "200 OK",
            "application/json",
            &obs.dump_flight(),
        ),
        ("GET", "/healthz") => write_response(&mut stream, "200 OK", "text/plain", "ok\n"),
        ("GET" | "POST", "/quitquitquit") => {
            quit.store(true, Ordering::SeqCst);
            write_response(&mut stream, "200 OK", "text/plain", "bye\n")
        }
        ("GET", "/events") => serve_events(obs, stream, shutdown),
        _ => write_response(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Unsubscribes its collector tee on drop, so *every* exit from the
/// SSE loop — client disconnect, shutdown, write error — releases the
/// subscription immediately instead of leaking it until the next
/// event happens to flow.
struct SseGuard {
    collector: Arc<crate::TraceCollector>,
    id: crate::span::SubscriberId,
}

impl Drop for SseGuard {
    fn drop(&mut self) {
        self.collector.unsubscribe(self.id);
    }
}

fn serve_events(obs: &Obs, mut stream: TcpStream, shutdown: &Arc<AtomicBool>) -> io::Result<()> {
    let Some(collector) = obs.collector().cloned() else {
        return write_response(
            &mut stream,
            "503 Service Unavailable",
            "text/plain",
            "off\n",
        );
    };
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    let (replay, rx, id) = collector.subscribe_tracked(SSE_SUBSCRIBER_CAPACITY);
    let _guard = SseGuard {
        collector: Arc::clone(&collector),
        id,
    };
    for ev in &replay {
        write_sse_frame(&mut stream, ev)?;
    }
    stream.flush()?;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(ev) => {
                write_sse_frame(&mut stream, &ev)?;
                stream.flush()?;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Comment ping: keeps intermediaries from timing the
                // stream out and lets us notice a dead client.
                stream.write_all(b": keep-alive\n\n")?;
                stream.flush()?;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

fn write_sse_frame(stream: &mut TcpStream, ev: &StreamEvent) -> io::Result<()> {
    let frame = format!(
        "event: {}\ndata: {}\n\n",
        ev.kind_str(),
        stream_event_json(ev)
    );
    stream.write_all(frame.as_bytes())
}

// ---------------------------------------------------------------------------
// Std-only HTTP client (shared by `diag --probe` and tests)
// ---------------------------------------------------------------------------

/// Fetch `path` from a telemetry server: returns `(status, body)`.
/// Plain HTTP/1.1, `Connection: close`, bounded by `timeout` for
/// connect and for each read.
pub fn http_get(addr: &SocketAddr, path: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// POST `body` to `path` on a telemetry server: returns
/// `(status, body)`. Plain HTTP/1.1, `Connection: close`, bounded by
/// `timeout` for connect and for each read.
pub fn http_post(
    addr: &SocketAddr,
    path: &str,
    content_type: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(body.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Collect SSE frames from `path` until `max_frames` events have
/// arrived or `window` elapses. Returns the `(event, data)` pairs plus
/// the number of comment (`:` keep-alive) lines seen.
pub fn collect_sse(
    addr: &SocketAddr,
    path: &str,
    window: Duration,
    max_frames: usize,
) -> io::Result<(Vec<(String, String)>, usize)> {
    let mut stream = TcpStream::connect_timeout(addr, window)?;
    stream.set_write_timeout(Some(window))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let deadline = Instant::now() + window;
    let mut raw: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        stream.set_read_timeout(Some(remaining.min(Duration::from_millis(100))))?;
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                if parse_sse_body(&raw).0.len() >= max_frames {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    drop(stream);
    Ok(parse_sse_body(&raw))
}

/// Split a raw SSE response into `(event, data)` frames and a count of
/// comment lines; tolerates the HTTP head still being attached.
fn parse_sse_body(raw: &[u8]) -> (Vec<(String, String)>, usize) {
    let text = String::from_utf8_lossy(raw);
    let body = text
        .split_once("\r\n\r\n")
        .map_or_else(|| text.to_string(), |(_, b)| b.to_string());
    let mut frames = Vec::new();
    let mut comments = 0usize;
    let mut event = String::new();
    let mut data = String::new();
    for line in body.lines() {
        if line.is_empty() {
            if !event.is_empty() || !data.is_empty() {
                frames.push((std::mem::take(&mut event), std::mem::take(&mut data)));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("event:") {
            event = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("data:") {
            data = rest.trim().to_string();
        } else if line.starts_with(':') {
            comments += 1;
        }
    }
    (frames, comments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn names_sanitize_with_prefix() {
        assert_eq!(prometheus_name("energy.total_uj"), "casa_energy_total_uj");
        assert_eq!(prometheus_name("sweep.cells-done"), "casa_sweep_cells_done");
        assert_eq!(prometheus_name("a:b"), "casa_a:b");
    }

    #[test]
    fn prom_num_spells_non_finite() {
        assert_eq!(prom_num(1.5), "1.5");
        assert_eq!(prom_num(f64::NAN), "NaN");
        assert_eq!(prom_num(f64::INFINITY), "+Inf");
        assert_eq!(prom_num(f64::NEG_INFINITY), "-Inf");
    }

    #[test]
    fn exposition_renders_and_validates() {
        let obs = Obs::enabled();
        obs.add("solver.nodes", 41);
        obs.gauge_set("energy.total_uj", 12.5);
        obs.record("conflict.row_degree", 4);
        obs.record("conflict.row_degree", 16);
        let text = prometheus_text(&obs.snapshot());
        assert!(text.contains("# TYPE casa_solver_nodes counter\ncasa_solver_nodes 41\n"));
        assert!(text.contains("# TYPE casa_energy_total_uj gauge\ncasa_energy_total_uj 12.5\n"));
        assert!(text.contains("# TYPE casa_conflict_row_degree summary\n"));
        assert!(text.contains("casa_conflict_row_degree{quantile=\"0.5\"} 4\n"));
        assert!(text.contains("casa_conflict_row_degree_sum 20\n"));
        assert!(text.contains("casa_conflict_row_degree_count 2\n"));
        let stats = validate_exposition(&text).expect("valid exposition");
        assert_eq!(stats.families, 3);
        assert_eq!(stats.samples, 7);
    }

    #[test]
    fn colliding_sanitized_names_keep_first_family() {
        let obs = Obs::enabled();
        obs.add("a.b", 1);
        obs.add("a-b", 2);
        let text = prometheus_text(&obs.snapshot());
        assert_eq!(text.matches("# TYPE casa_a_b counter").count(), 1);
        assert!(validate_exposition(&text).is_ok());
    }

    #[test]
    fn validator_rejects_duplicates_and_bad_names() {
        assert!(
            validate_exposition("# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n")
                .unwrap_err()
                .contains("duplicate")
        );
        assert!(validate_exposition("# TYPE 9bad counter\n")
            .unwrap_err()
            .contains("invalid"));
        assert!(validate_exposition("orphan 1\n")
            .unwrap_err()
            .contains("no preceding TYPE"));
        assert!(validate_exposition("# TYPE x gauge\nx notanumber\n")
            .unwrap_err()
            .contains("unparsable"));
        let ok =
            validate_exposition("# TYPE x summary\nx{quantile=\"0.5\"} 2\nx_sum 2\nx_count 1\n")
                .unwrap();
        assert_eq!(
            ok,
            ExpositionStats {
                families: 1,
                samples: 3
            }
        );
    }

    #[test]
    fn stream_event_json_is_parsable() {
        let obs = Obs::enabled();
        obs.instant("tick", vec![("n".to_string(), ArgValue::U64(3))]);
        let collector = obs.collector().unwrap();
        let (replay, _rx) = collector.subscribe(4);
        let json = stream_event_json(&replay[0]);
        let v = serde::json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("kind").and_then(|x| x.as_str()), Some("instant"));
        assert_eq!(v.get("name").and_then(|x| x.as_str()), Some("tick"));
        assert_eq!(
            v.get("args")
                .and_then(|a| a.get("n"))
                .and_then(|x| x.as_f64()),
            Some(3.0)
        );
    }

    #[test]
    fn server_serves_all_endpoints() {
        let obs = Obs::enabled();
        obs.add("solver.nodes", 7);
        obs.gauge_set("energy.total_uj", 1.25);
        {
            let _g = obs.span("phase");
        }
        let mut handle = start(&obs, "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();
        let t = Duration::from_secs(5);

        let (st, body) = http_get(&addr, "/healthz", t).unwrap();
        assert_eq!((st, body.as_str()), (200, "ok\n"));

        let (st, metrics) = http_get(&addr, "/metrics", t).unwrap();
        assert_eq!(st, 200);
        validate_exposition(&metrics).expect("valid exposition over HTTP");
        assert!(metrics.contains("casa_solver_nodes 7"));

        let (st, snap) = http_get(&addr, "/snapshot.json", t).unwrap();
        assert_eq!(st, 200);
        assert_eq!(snap, snapshot_to_json(&obs.snapshot()));

        let (st, flight) = http_get(&addr, "/flight.json", t).unwrap();
        assert_eq!(st, 200);
        assert!(serde::json::parse(&flight).is_ok());

        let (st, _) = http_get(&addr, "/nope", t).unwrap();
        assert_eq!(st, 404);

        assert!(!handle.quit_requested());
        let (st, body) = http_get(&addr, "/quitquitquit", t).unwrap();
        assert_eq!((st, body.as_str()), (200, "bye\n"));
        assert!(handle.wait_quit(Duration::from_secs(1)));

        handle.shutdown();
        // After shutdown the port stops answering (the dummy unblock
        // connection may still be accepted; a fresh request must not).
        assert!(http_get(&addr, "/healthz", Duration::from_millis(300)).is_err());
    }

    #[test]
    fn sse_streams_replay_and_live_events() {
        let obs = Obs::enabled();
        {
            let _g = obs.span("history");
        }
        let handle = start(&obs, "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();
        // Live events emitted while the subscriber is attached.
        let live = {
            let obs = obs.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(150));
                let _g = obs.span("live");
                obs.instant("tick", Vec::new());
            })
        };
        let (frames, _comments) =
            collect_sse(&addr, "/events", Duration::from_secs(5), 4).expect("sse");
        live.join().unwrap();
        let kinds: Vec<&str> = frames.iter().map(|(e, _)| e.as_str()).collect();
        assert_eq!(kinds, vec!["span_end", "span_begin", "instant", "span_end"]);
        let names: Vec<String> = frames
            .iter()
            .map(|(_, d)| {
                serde::json::parse(d)
                    .unwrap()
                    .get("name")
                    .and_then(|x| x.as_str())
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(names, vec!["history", "live", "tick", "live"]);
    }

    #[test]
    fn disabled_handle_refuses_to_serve() {
        let err = start(&Obs::disabled(), "127.0.0.1:0").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    /// Regression (slowloris): a client that connects and then hangs —
    /// or drips bytes slower than the deadline — must be cut off at
    /// the *total* read deadline, not kept alive by per-read timeouts.
    #[test]
    fn stalled_client_is_cut_off_at_the_read_deadline() {
        let obs = Obs::enabled();
        let opts = ServeOptions {
            read_deadline: Duration::from_millis(300),
            ..ServeOptions::default()
        };
        let mut handle = start_with(&obs, "127.0.0.1:0", opts, None).expect("bind");
        let addr = handle.local_addr();

        // Connect-then-hang: send half a request line, never finish.
        let began = Instant::now();
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
        stream.write_all(b"GET /heal").unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("server closes");
        assert!(
            raw.starts_with("HTTP/1.1 408"),
            "expected 408 on stall, got {raw:?}"
        );
        assert!(
            began.elapsed() < Duration::from_secs(3),
            "handler pinned for {:?}",
            began.elapsed()
        );

        // Drip-feed: one byte per 100 ms outruns any per-read timeout
        // but not the absolute deadline.
        let began = Instant::now();
        let mut drip = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
        let mut dripped = Vec::new();
        for b in b"GET /healthz HTTP/1.1\r\n\r\n" {
            if drip.write_all(&[*b]).is_err() {
                break; // server already gave up on us — the point
            }
            dripped.push(*b);
            thread::sleep(Duration::from_millis(100));
            if began.elapsed() > Duration::from_secs(2) {
                panic!("drip client still being read after {:?}", began.elapsed());
            }
        }
        drip.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut raw = String::new();
        let _ = drip.read_to_string(&mut raw);
        assert!(
            raw.is_empty() || raw.starts_with("HTTP/1.1 408"),
            "drip client should see a timeout or a reset, got {raw:?}"
        );

        // The server is still healthy for well-behaved clients.
        let (st, body) = http_get(&addr, "/healthz", Duration::from_secs(5)).unwrap();
        assert_eq!((st, body.as_str()), (200, "ok\n"));
        handle.shutdown();
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let obs = Obs::enabled();
        let opts = ServeOptions {
            max_head_bytes: 256,
            max_body_bytes: 64,
            ..ServeOptions::default()
        };
        let mut handle = start_with(&obs, "127.0.0.1:0", opts, None).expect("bind");
        let addr = handle.local_addr();

        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(4096));
        let _ = stream.write_all(huge.as_bytes());
        let mut raw = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let _ = stream.read_to_string(&mut raw);
        assert!(raw.starts_with("HTTP/1.1 413"), "got {raw:?}");

        let big_body = "y".repeat(128);
        let (st, _) = http_post(
            &addr,
            "/solve",
            "application/json",
            &big_body,
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(st, 413);
        handle.shutdown();
    }

    /// Regression (SSE leak): subscribers whose clients disconnect
    /// must be pruned even when no further event ever flows through
    /// the collector.
    #[test]
    fn sse_disconnects_leave_zero_subscribers() {
        let obs = Obs::enabled();
        obs.instant("seed", Vec::new());
        let collector = Arc::clone(obs.collector().expect("enabled"));
        let mut handle = start(&obs, "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();
        for _ in 0..4 {
            // Connect, read the replay, then vanish without a trace.
            let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
            stream
                .write_all(b"GET /events HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut chunk = [0u8; 1024];
            let _ = stream.read(&mut chunk);
            drop(stream);
        }
        // No event is emitted here — pruning must not depend on one.
        // The handlers notice the dead socket on a keep-alive ping
        // (≤ ~200 ms) and unsubscribe on exit.
        let deadline = Instant::now() + Duration::from_secs(5);
        while collector.subscriber_count() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(
            collector.subscriber_count(),
            0,
            "disconnected SSE clients left subscribers registered"
        );
        handle.shutdown();
    }

    /// Regression (shutdown race): `shutdown()` must drain in-flight
    /// handlers, so a response that started before shutdown completes
    /// in full and the handler finishes before `shutdown()` returns.
    #[test]
    fn shutdown_drains_inflight_handlers() {
        let obs = Obs::enabled();
        let handler_done: Arc<Mutex<Option<Instant>>> = Arc::new(Mutex::new(None));
        let done = Arc::clone(&handler_done);
        let router: Router = Arc::new(move |req: &Request| {
            if req.path == "/slow" {
                thread::sleep(Duration::from_millis(250));
                *done.lock().unwrap() = Some(Instant::now());
                Some(Response::text(200, "slow-done"))
            } else {
                None
            }
        });
        let mut handle =
            start_with(&obs, "127.0.0.1:0", ServeOptions::default(), Some(router)).expect("bind");
        let addr = handle.local_addr();
        let client = thread::spawn(move || http_get(&addr, "/slow", Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(50)); // let the request land
        handle.shutdown();
        let returned = Instant::now();
        let finished = handler_done
            .lock()
            .unwrap()
            .expect("shutdown returned before the in-flight handler finished");
        assert!(finished <= returned);
        let (st, body) = client.join().unwrap().expect("response completes");
        assert_eq!((st, body.as_str()), (200, "slow-done"));
    }

    /// The satellite's scenario verbatim: quit lands concurrently with
    /// `/metrics` scrapes; every scrape that got through must carry a
    /// complete, valid exposition.
    #[test]
    fn quit_concurrent_with_metrics_scrape_is_clean() {
        let obs = Obs::enabled();
        obs.add("solver.nodes", 3);
        let mut handle = start(&obs, "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();
        let scrapers: Vec<_> = (0..4)
            .map(|_| {
                thread::spawn(move || {
                    let mut bodies = Vec::new();
                    for _ in 0..10 {
                        if let Ok((200, body)) = http_get(&addr, "/metrics", Duration::from_secs(5))
                        {
                            bodies.push(body);
                        }
                    }
                    bodies
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(20));
        let _ = http_get(&addr, "/quitquitquit", Duration::from_secs(5));
        assert!(handle.wait_quit(Duration::from_secs(5)));
        handle.shutdown();
        let mut seen = 0usize;
        for s in scrapers {
            for body in s.join().unwrap() {
                validate_exposition(&body).expect("every completed scrape is a full exposition");
                assert!(body.contains("casa_solver_nodes 3"));
                seen += 1;
            }
        }
        assert!(seen > 0, "no scrape completed at all");
    }

    #[test]
    fn router_mounts_post_routes_and_falls_through() {
        let obs = Obs::enabled();
        let router: Router = Arc::new(|req: &Request| {
            if req.method == "POST" && req.path == "/echo" {
                Some(
                    Response::json(200, String::from_utf8_lossy(&req.body).into_owned())
                        .with_header("X-Casa-Cache", "miss"),
                )
            } else {
                None
            }
        });
        let mut handle =
            start_with(&obs, "127.0.0.1:0", ServeOptions::default(), Some(router)).expect("bind");
        let addr = handle.local_addr();
        let (st, body) = http_post(
            &addr,
            "/echo",
            "application/json",
            "{\"x\":1}",
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!((st, body.as_str()), (200, "{\"x\":1}"));
        // Built-in routes still work under a router.
        let (st, body) = http_get(&addr, "/healthz", Duration::from_secs(5)).unwrap();
        assert_eq!((st, body.as_str()), (200, "ok\n"));
        let (st, _) = http_get(&addr, "/nope", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 404);
        handle.shutdown();
    }
}
