//! Live telemetry service: a minimal std-only HTTP/1.1 server
//! exposing an enabled [`Obs`] handle while the instrumented program
//! runs.
//!
//! Endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition rendered from the
//!   current [`MetricsSnapshot`] ([`prometheus_text`]): counters and
//!   gauges as their native types, log₂ histograms as summaries with
//!   p50/p90/p99 quantile lines.
//! * `GET /snapshot.json` — the deterministic sorted-key JSON snapshot
//!   ([`crate::snapshot_to_json`]).
//! * `GET /flight.json` — the flight-recorder ring ([`Obs::dump_flight`]).
//! * `GET /timeseries.json` — the logical-tick time-series store
//!   ([`crate::timeseries_json`]): named series of `(tick, value)`
//!   points sampled at deterministic logical clocks.
//! * `GET /requests.json` — the bounded in-memory [`RequestJournal`]:
//!   the last `CASA_REQ_JOURNAL_CAP` finished requests with status,
//!   byte counts, handler wall time, and (for `/solve`) the
//!   [`SolveAttribution`] the router attached.
//! * `GET /healthz` — liveness (`ok`).
//! * `GET /events` — Server-Sent Events stream of span begin/end and
//!   instant events, tee'd from the [`TraceCollector`] through a
//!   bounded subscriber channel. Connecting mid-run replays history
//!   first (atomically, so nothing is missed or duplicated), then
//!   streams live.
//! * `GET|POST /quitquitquit` — requests a graceful quit; binaries
//!   lingering for a scraper ([`ServeHandle::wait_quit`]) exit early.
//!
//! # Request-scoped observability
//!
//! Every request carries a **correlation ID**: the client's
//! `X-Casa-Request-Id` header when it is well-formed (≤ 64 chars of
//! `[A-Za-z0-9._-]`), otherwise one minted from a deterministic
//! per-listener counter (`r000001`, `r000002`, ...). The ID is echoed
//! in an `X-Casa-Request-Id` response header on *every* response —
//! including read-error responses and the SSE stream — and is handed
//! to the [`Router`] via [`Request::req_id`] so the application can
//! thread it into worker pools and span trees. Each finished request
//! emits an `http.access` instant event, appends a [`JournalEntry`]
//! to the journal (and to the optional `CASA_ACCESS_LOG` file sink,
//! one JSON object per line), and records per-route latency
//! histograms plus per-status counters. Requests slower than
//! `CASA_SLOW_REQ_MS` — or whose solve attribution carries a
//! degradation reason — trigger a flight-dump capture tagged with the
//! request ID ([`Obs::note_degradation`]). None of this touches
//! response *bodies*: the determinism contract (byte-identical
//! `/solve` replies with the journal on or off) is pinned by test.
//!
//! The server is deliberately boring: blocking `TcpListener`, one
//! thread per connection, `Connection: close` on every response. It
//! never touches the instrumented path — readers take the same locks
//! any snapshot does, and SSE subscribers are bounded channels that
//! drop on overflow rather than block a writer.
//!
//! The std-only HTTP *client* helpers ([`http_get`], [`collect_sse`])
//! and the exposition validator ([`validate_exposition`]) live here
//! too so `diag --probe` and CI share one implementation.
//!
//! [`Obs`]: crate::Obs
//! [`Obs::dump_flight`]: crate::Obs::dump_flight
//! [`Obs::note_degradation`]: crate::Obs::note_degradation
//! [`TraceCollector`]: crate::TraceCollector
//! [`MetricsSnapshot`]: crate::MetricsSnapshot

use crate::export::{jnum, json_escape, snapshot_to_json};
use crate::metrics::{MetricValue, MetricsSnapshot};
use crate::span::{ArgValue, StreamEvent};
use crate::Obs;
use std::collections::{BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Bound on each SSE subscriber's channel: a scraper that falls this
/// many events behind starts losing events instead of slowing the
/// instrumented program.
pub const SSE_SUBSCRIBER_CAPACITY: usize = 256;

/// Prefix every exported Prometheus family carries.
pub const PROMETHEUS_PREFIX: &str = "casa_";

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Map an internal metric name (dotted, free-form) to a Prometheus
/// family name: `casa_` prefix, every character outside
/// `[a-zA-Z0-9_:]` replaced by `_` (so `energy.total_uj` becomes
/// `casa_energy_total_uj`).
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(PROMETHEUS_PREFIX.len() + name.len());
    out.push_str(PROMETHEUS_PREFIX);
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Format an `f64` as a Prometheus sample value (`NaN` / `+Inf` /
/// `-Inf` spellings per the exposition format, shortest round-trip
/// otherwise).
pub fn prom_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4). Counters and gauges keep their type; log₂
/// histograms are rendered as `summary` families with quantile lines
/// (0.5 / 0.9 / 0.99 / 0.999, interpolated within buckets and clamped
/// to the exact observed extremes — present only when the histogram
/// has samples) plus `_sum` and `_count`, and `_min` / `_max` sibling
/// gauges carrying the exact observed extremes when known. Keys
/// iterate in sorted order;
/// if two internal names sanitize to the same family the first wins
/// and later ones are skipped (never a duplicate family).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (name, value) in snap {
        let fam = prometheus_name(name);
        if !seen.insert(fam.clone()) {
            continue;
        }
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {fam} counter\n{fam} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {fam} gauge\n{fam} {}\n", prom_num(*v)));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {fam} summary\n"));
                if h.count > 0 {
                    for (q, v) in [
                        ("0.5", h.p50()),
                        ("0.9", h.p90()),
                        ("0.99", h.p99()),
                        ("0.999", h.quantile(0.999)),
                    ] {
                        if let Some(v) = v {
                            out.push_str(&format!("{fam}{{quantile=\"{q}\"}} {}\n", prom_num(v)));
                        }
                    }
                }
                out.push_str(&format!("{fam}_sum {}\n{fam}_count {}\n", h.sum, h.count));
                // The interpolated tail quantiles are clamped to the
                // observed extremes; export the extremes themselves as
                // sibling gauges so dashboards can show exact
                // best/worst samples per family.
                for (suffix, v) in [("min", h.min), ("max", h.max)] {
                    if let Some(v) = v {
                        let gauge = format!("{fam}_{suffix}");
                        if seen.insert(gauge.clone()) {
                            out.push_str(&format!("# TYPE {gauge} gauge\n{gauge} {v}\n"));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Summary statistics returned by [`validate_exposition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Distinct metric families declared with `# TYPE` lines.
    pub families: usize,
    /// Sample lines (family, `_sum`/`_count`, and quantile lines all
    /// count).
    pub samples: usize,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_sample_value(v: &str) -> bool {
    // Non-finite values are legal only in their canonical Prometheus
    // spellings. Rust's `f64` parser would happily accept `inf`,
    // `-infinity` or `nan` too, so the finite check below must not be
    // allowed to wave those through — a gauge rendered with `{}`
    // formatting (Rust's `inf`) is exactly the bug this validator
    // exists to catch.
    matches!(v, "NaN" | "+Inf" | "-Inf") || v.parse::<f64>().is_ok_and(|f| f.is_finite())
}

/// Validate Prometheus text exposition: every sample belongs to a
/// family declared by a preceding `# TYPE` line, no family is declared
/// twice, names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, and values parse.
/// Returns counts on success, a description of the first violation on
/// failure.
pub fn validate_exposition(text: &str) -> Result<ExpositionStats, String> {
    let mut families: BTreeSet<String> = BTreeSet::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, ty) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(t), None) => (n, t),
                _ => return Err(format!("line {}: malformed TYPE line: {line}", lineno + 1)),
            };
            if !valid_metric_name(name) {
                return Err(format!("line {}: invalid family name {name:?}", lineno + 1));
            }
            if !matches!(
                ty,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(format!("line {}: unknown metric type {ty:?}", lineno + 1));
            }
            if !families.insert(name.to_string()) {
                return Err(format!("line {}: duplicate family {name:?}", lineno + 1));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free-form comment
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find('{') {
            Some(brace) => {
                let close = line[brace..]
                    .find('}')
                    .map(|i| brace + i)
                    .ok_or_else(|| format!("line {}: unclosed label set: {line}", lineno + 1))?;
                (&line[..brace], line[close + 1..].trim())
            }
            None => {
                let mut it = line.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| format!("line {}: empty sample", lineno + 1))?;
                (name, line[name.len()..].trim())
            }
        };
        let value = value_part
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("line {}: sample without value: {line}", lineno + 1))?;
        if !valid_metric_name(name_part) {
            return Err(format!(
                "line {}: invalid sample name {name_part:?}",
                lineno + 1
            ));
        }
        if !valid_sample_value(value) {
            return Err(format!(
                "line {}: unparsable sample value {value:?}",
                lineno + 1
            ));
        }
        let base = name_part
            .strip_suffix("_sum")
            .or_else(|| name_part.strip_suffix("_count"))
            .or_else(|| name_part.strip_suffix("_bucket"))
            .unwrap_or(name_part);
        if !families.contains(name_part) && !families.contains(base) {
            return Err(format!(
                "line {}: sample {name_part:?} has no preceding TYPE line",
                lineno + 1
            ));
        }
        samples += 1;
    }
    Ok(ExpositionStats {
        families: families.len(),
        samples,
    })
}

// ---------------------------------------------------------------------------
// SSE frame serialization
// ---------------------------------------------------------------------------

fn arg_json(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(n) => n.to_string(),
        ArgValue::F64(n) => crate::export::jnum(*n),
        ArgValue::Str(s) => format!("\"{}\"", json_escape(s)),
    }
}

/// Serialize one tee'd event as the single-line JSON document carried
/// in an SSE `data:` field.
pub fn stream_event_json(ev: &StreamEvent) -> String {
    let e = ev.event();
    let mut s = format!(
        "{{\"kind\":\"{}\",\"name\":\"{}\",\"tid\":{},\"ts_us\":{},\"dur_us\":{}",
        ev.kind_str(),
        json_escape(&e.name),
        e.tid,
        e.ts_us,
        e.dur_us
            .map_or_else(|| "null".to_string(), |d| d.to_string())
    );
    s.push_str(",\"args\":{");
    for (i, (k, v)) in e.args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":{}", json_escape(k), arg_json(v)));
    }
    s.push_str("}}");
    s
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Header carrying the request correlation ID, both directions.
pub const REQUEST_ID_HEADER: &str = "X-Casa-Request-Id";

/// Whether a client-supplied correlation ID is acceptable: non-empty,
/// at most 64 characters, all in `[A-Za-z0-9._-]` (so an ID can be
/// embedded verbatim in headers, JSON, metrics notes, and file names
/// without escaping).
pub fn valid_request_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// One parsed HTTP request, as handed to a [`Router`].
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// Request path with any `?query` suffix stripped.
    pub path: String,
    /// Request body (empty unless the client sent `Content-Length`).
    pub body: Vec<u8>,
    /// Correlation ID: the client's `X-Casa-Request-Id` when valid
    /// ([`valid_request_id`]), else minted from the listener's
    /// deterministic counter before the router runs. Echoed in every
    /// response.
    pub req_id: String,
    /// Request bytes consumed (head + framed body).
    pub bytes_in: u64,
}

/// Per-request solve attribution: what the allocation service did for
/// one `/solve` request, recorded in the journal and access log but
/// **never** in the response body (which must stay byte-identical
/// across cache and observability configurations).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveAttribution {
    /// Cache disposition: `hit` (exact replay), `warm` (warm-started
    /// solve), or `miss` (cold solve).
    pub cache: String,
    /// Allocation status: `optimal`, `feasible`, or `fallback`.
    pub status: String,
    /// Proven optimality gap (0 when optimal, `None` for fallback).
    pub gap: Option<f64>,
    /// Branch-and-bound nodes expanded for this request (0 on an
    /// exact cache hit — no search ran).
    pub nodes: u64,
    /// Which budget stopped the search early, if any
    /// (`nodes` / `deadline` / `cancelled`).
    pub stopped_by: Option<String>,
    /// Degradation reason when the engine fell back.
    pub reason: Option<String>,
    /// Time the job waited in the admission queue before a worker
    /// picked it up, microseconds.
    pub queue_wait_us: u64,
    /// Worker shard that solved the job.
    pub worker: u64,
}

impl SolveAttribution {
    /// Deterministic-field-order JSON object (run-dependent values
    /// like `queue_wait_us` are fine here — this never enters a
    /// response body).
    pub fn to_json(&self) -> String {
        let os = |v: &Option<String>| {
            v.as_ref()
                .map_or_else(|| "null".to_string(), |s| format!("\"{}\"", json_escape(s)))
        };
        format!(
            "{{\"cache\":\"{}\",\"status\":\"{}\",\"gap\":{},\"nodes\":{},\"stopped_by\":{},\"reason\":{},\"queue_wait_us\":{},\"worker\":{}}}",
            json_escape(&self.cache),
            json_escape(&self.status),
            self.gap.map_or_else(|| "null".to_string(), jnum),
            self.nodes,
            os(&self.stopped_by),
            os(&self.reason),
            self.queue_wait_us,
            self.worker,
        )
    }
}

/// A response a [`Router`] hands back to the connection handler.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (200, 400, 429, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
    /// Extra headers appended verbatim (name, value).
    pub headers: Vec<(String, String)>,
    /// Solve attribution for the journal / access log; not serialized
    /// into the response.
    pub solve: Option<SolveAttribution>,
}

impl Response {
    /// A `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json".to_string(),
            body: body.into(),
            headers: Vec::new(),
            solve: None,
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain".to_string(),
            body: body.into(),
            headers: Vec::new(),
            solve: None,
        }
    }

    /// Append an extra header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Attach solve attribution for the request journal.
    pub fn with_solve(mut self, solve: SolveAttribution) -> Self {
        self.solve = Some(solve);
        self
    }
}

/// The canonical reason phrase for a status code (only the codes this
/// stack emits; anything else renders as `Status`).
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// One finished request as recorded in the [`RequestJournal`] and the
/// access-log sink.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Monotone sequence number assigned at journal insertion.
    pub seq: u64,
    /// Correlation ID ([`Request::req_id`]).
    pub id: String,
    /// Request method (`-` when the request never parsed).
    pub method: String,
    /// Request path (`-` when the request never parsed).
    pub path: String,
    /// Response status written.
    pub status: u16,
    /// Request bytes consumed.
    pub bytes_in: u64,
    /// Response bytes written (head + body; 0 if the write failed).
    pub bytes_out: u64,
    /// Handler wall time, microseconds (read through write).
    pub handler_us: u64,
    /// Solve attribution, when the router attached one.
    pub solve: Option<SolveAttribution>,
}

impl JournalEntry {
    /// Deterministic-field-order JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"id\":\"{}\",\"method\":\"{}\",\"path\":\"{}\",\"status\":{},\"bytes_in\":{},\"bytes_out\":{},\"handler_us\":{},\"solve\":{}}}",
            self.seq,
            json_escape(&self.id),
            json_escape(&self.method),
            json_escape(&self.path),
            self.status,
            self.bytes_in,
            self.bytes_out,
            self.handler_us,
            self.solve
                .as_ref()
                .map_or_else(|| "null".to_string(), SolveAttribution::to_json),
        )
    }
}

#[derive(Debug, Default)]
struct JournalInner {
    seq: u64,
    dropped: u64,
    entries: VecDeque<JournalEntry>,
}

/// Bounded in-memory ring of finished requests, served at
/// `/requests.json`. Capacity 0 disables recording entirely (entries
/// are dropped on arrival, `dropped` still counts them).
#[derive(Debug)]
pub struct RequestJournal {
    cap: usize,
    inner: Mutex<JournalInner>,
}

impl RequestJournal {
    /// A journal holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        RequestJournal {
            cap,
            inner: Mutex::new(JournalInner::default()),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Append one finished request, assigning its sequence number
    /// (written back into `entry` so the access-log line carries the
    /// same `seq`) and evicting the oldest entry when full.
    pub fn push(&self, entry: &mut JournalEntry) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.seq += 1;
        entry.seq = inner.seq;
        if self.cap == 0 {
            inner.dropped += 1;
            return;
        }
        while inner.entries.len() >= self.cap {
            inner.entries.pop_front();
            inner.dropped += 1;
        }
        inner.entries.push_back(entry.clone());
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .len()
    }

    /// Whether the journal holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `/requests.json` document:
    /// `{"cap":..,"dropped":..,"entries":[..]}` with entries oldest
    /// first.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut s = format!(
            "{{\"cap\":{},\"dropped\":{},\"entries\":[",
            self.cap, inner.dropped
        );
        for (i, e) in inner.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&e.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// Application hook: inspects a request before the built-in telemetry
/// routes; returning `Some` sends that response, `None` falls through
/// to `/metrics`, `/events`, etc. This is how `casa-server` mounts
/// `POST /solve` on the telemetry stack without duplicating the HTTP
/// plumbing.
pub type Router = Arc<dyn Fn(&Request) -> Option<Response> + Send + Sync>;

/// Limits and deadlines for the connection handlers.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Total wall-clock allowance for reading one request — head *and*
    /// body. This is a deadline, not a per-read timeout: a client that
    /// drips one byte per second cannot pin a handler thread past it
    /// (the slowloris defence).
    pub read_deadline: Duration,
    /// Maximum request-line + header bytes.
    pub max_head_bytes: usize,
    /// Maximum request body bytes (`Content-Length` above this is
    /// rejected with 413 before reading the body).
    pub max_body_bytes: usize,
    /// How long [`ServeHandle::shutdown`] waits for in-flight
    /// connection handlers to finish before giving up on them.
    pub drain_timeout: Duration,
    /// Request-journal capacity; 0 disables recording. The default
    /// reads `CASA_REQ_JOURNAL_CAP` (256 when unset).
    pub journal_cap: usize,
    /// Requests whose handler wall time reaches this many
    /// milliseconds trigger a flight-dump capture tagged with the
    /// request ID. The default reads `CASA_SLOW_REQ_MS` (off when
    /// unset).
    pub slow_req_ms: Option<u64>,
    /// Optional access-log sink: one [`JournalEntry`] JSON object per
    /// line, appended. The default reads `CASA_ACCESS_LOG` (off when
    /// unset).
    pub access_log: Option<PathBuf>,
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl Default for ServeOptions {
    /// Connection limits are fixed; the request-observability knobs
    /// (`journal_cap`, `slow_req_ms`, `access_log`) are read from the
    /// environment so a binary gets them without new flags. Set the
    /// fields explicitly to ignore the environment.
    fn default() -> Self {
        ServeOptions {
            read_deadline: Duration::from_secs(5),
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            drain_timeout: Duration::from_secs(10),
            journal_cap: env_u64("CASA_REQ_JOURNAL_CAP").map_or(256, |v| v as usize),
            slow_req_ms: env_u64("CASA_SLOW_REQ_MS"),
            access_log: std::env::var("CASA_ACCESS_LOG")
                .ok()
                .filter(|s| !s.is_empty())
                .map(PathBuf::from),
        }
    }
}

/// Count of in-flight connection handlers, waitable for shutdown
/// draining.
#[derive(Debug, Default)]
struct Drain {
    active: Mutex<usize>,
    idle: Condvar,
}

impl Drain {
    fn enter(self: &Arc<Self>) -> DrainGuard {
        let mut n = self.active.lock().unwrap_or_else(PoisonError::into_inner);
        *n += 1;
        DrainGuard(Arc::clone(self))
    }

    /// Wait until no handler is in flight; returns whether the pool
    /// drained within `timeout`.
    fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut n = self.active.lock().unwrap_or_else(PoisonError::into_inner);
        while *n > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = self
                .idle
                .wait_timeout(n, left)
                .unwrap_or_else(PoisonError::into_inner);
            n = guard;
        }
        true
    }
}

struct DrainGuard(Arc<Drain>);

impl Drop for DrainGuard {
    fn drop(&mut self) {
        let mut n = self.0.active.lock().unwrap_or_else(PoisonError::into_inner);
        *n = n.saturating_sub(1);
        self.0.idle.notify_all();
    }
}

/// Handle to a running telemetry server; shuts down (and joins the
/// accept thread) on drop.
#[derive(Debug)]
pub struct ServeHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    quit: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    drain: Arc<Drain>,
    drain_timeout: Duration,
}

impl ServeHandle {
    /// The address actually bound (port resolved when the request was
    /// `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a client has requested `/quitquitquit`.
    pub fn quit_requested(&self) -> bool {
        self.quit.load(Ordering::SeqCst)
    }

    /// Block until a client requests `/quitquitquit` or `timeout`
    /// elapses; returns whether quit was requested. Lets a binary
    /// linger for a scraper after its work is done without an
    /// unconditional sleep.
    pub fn wait_quit(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.quit_requested() {
                return true;
            }
            thread::sleep(Duration::from_millis(20));
        }
        self.quit_requested()
    }

    /// Stop accepting connections, join the accept thread, then
    /// **drain**: wait (up to the configured drain timeout) for every
    /// in-flight connection handler to finish writing its response.
    /// Without the drain, a quit landing concurrently with a `/metrics`
    /// scrape could tear the process down mid-response. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.drain.wait_idle(self.drain_timeout);
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start the telemetry server for an enabled handle. `addr` is any
/// `host:port` string (`127.0.0.1:0` picks a free port — read it back
/// from [`ServeHandle::local_addr`]). A disabled handle is an
/// [`io::ErrorKind::Unsupported`] error: there is nothing to serve.
pub fn start(obs: &Obs, addr: &str) -> io::Result<ServeHandle> {
    start_with(obs, addr, ServeOptions::default(), None)
}

/// Like [`start`], with explicit [`ServeOptions`] and an optional
/// application [`Router`] consulted before the built-in telemetry
/// routes. This is the full-control entry point `casa-server` uses to
/// mount `POST /solve` on the same listener that serves `/metrics`.
pub fn start_with(
    obs: &Obs,
    addr: &str,
    opts: ServeOptions,
    router: Option<Router>,
) -> io::Result<ServeHandle> {
    if !obs.is_enabled() {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "telemetry server needs an enabled Obs handle (set CASA_TRACE=1)",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let quit = Arc::new(AtomicBool::new(false));
    let drain = Arc::new(Drain::default());
    let drain_timeout = opts.drain_timeout;
    let state = Arc::new(ServeState {
        next_id: AtomicU64::new(0),
        inflight: AtomicU64::new(0),
        journal: RequestJournal::new(opts.journal_cap),
    });
    let obs = obs.clone();
    let t_shutdown = Arc::clone(&shutdown);
    let t_quit = Arc::clone(&quit);
    let t_drain = Arc::clone(&drain);
    let accept = thread::Builder::new()
        .name("casa-serve".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if t_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let obs = obs.clone();
                let shutdown = Arc::clone(&t_shutdown);
                let quit = Arc::clone(&t_quit);
                let opts = opts.clone();
                let router = router.clone();
                let state = Arc::clone(&state);
                // The guard is taken on the accept thread — before
                // shutdown can observe the listener unblocked — so a
                // connection is either refused or fully drained, never
                // half-tracked.
                let guard = t_drain.enter();
                let _ = thread::Builder::new()
                    .name("casa-serve-conn".to_string())
                    .spawn(move || {
                        let _guard = guard;
                        let _ = handle_connection(
                            &obs, stream, &shutdown, &quit, &opts, &router, &state,
                        );
                    });
            }
        })?;
    Ok(ServeHandle {
        addr: local,
        shutdown,
        quit,
        accept: Some(accept),
        drain,
        drain_timeout,
    })
}

/// Why a request could not be read; each maps to an HTTP status.
#[derive(Debug)]
enum ReadError {
    /// The read deadline expired before the request arrived.
    Timeout,
    /// Request line + headers exceeded the configured bound.
    HeadTooLarge,
    /// Declared `Content-Length` exceeded the configured bound.
    BodyTooLarge,
    /// Structurally invalid request.
    Malformed(&'static str),
    /// The socket failed outright; nothing can be written back. The
    /// payload exists for `Debug` rendering only.
    Io(#[allow(dead_code)] io::Error),
}

impl ReadError {
    fn response(&self) -> Option<(u16, String)> {
        match self {
            ReadError::Timeout => Some((408, "request read deadline exceeded\n".to_string())),
            ReadError::HeadTooLarge => Some((413, "request head too large\n".to_string())),
            ReadError::BodyTooLarge => Some((413, "request body too large\n".to_string())),
            ReadError::Malformed(why) => Some((400, format!("{why}\n"))),
            ReadError::Io(_) => None,
        }
    }
}

/// One `read` bounded by an absolute deadline rather than a per-call
/// timeout: re-arming the socket timeout with the *remaining* time is
/// what closes the slowloris hole — a client feeding one byte per
/// second used to reset the old 5 s per-read timeout indefinitely.
fn read_with_deadline(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    deadline: Instant,
) -> Result<usize, ReadError> {
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(ReadError::Timeout);
        }
        stream.set_read_timeout(Some(left)).map_err(ReadError::Io)?;
        match stream.read(chunk) {
            Ok(n) => return Ok(n),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue; // deadline re-checked at the top
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Read one full request — head and (`Content-Length`-framed) body —
/// under `opts`'s size and deadline bounds.
fn read_request(stream: &mut TcpStream, opts: &ServeOptions) -> Result<Request, ReadError> {
    let deadline = Instant::now() + opts.read_deadline;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_len = loop {
        if let Some(pos) = head_end(&buf) {
            break pos;
        }
        if buf.len() > opts.max_head_bytes {
            return Err(ReadError::HeadTooLarge);
        }
        let n = read_with_deadline(stream, &mut chunk, deadline)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed before request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_len]).into_owned();
    let first = head.lines().next().unwrap_or("");
    let mut parts = first.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Err(ReadError::Malformed("malformed request line")),
    };
    let mut content_length = 0usize;
    let mut req_id = String::new();
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("unparsable Content-Length"))?;
            } else if name.trim().eq_ignore_ascii_case(REQUEST_ID_HEADER) {
                let id = value.trim();
                // A malformed ID is treated as absent (minted instead),
                // not an error: correlation is best-effort.
                if valid_request_id(id) {
                    req_id = id.to_string();
                }
            }
        }
    }
    if content_length > opts.max_body_bytes {
        return Err(ReadError::BodyTooLarge);
    }
    let mut body = buf[head_len + 4..].to_vec();
    while body.len() < content_length {
        let n = read_with_deadline(stream, &mut chunk, deadline)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let path = path.split('?').next().unwrap_or("").to_string();
    let bytes_in = (head_len + 4 + content_length) as u64;
    Ok(Request {
        method,
        path,
        body,
        req_id,
        bytes_in,
    })
}

/// Shared per-listener request state: the deterministic ID mint, the
/// in-flight gauge backing store, and the request journal.
#[derive(Debug)]
struct ServeState {
    next_id: AtomicU64,
    inflight: AtomicU64,
    journal: RequestJournal,
}

impl ServeState {
    fn mint_id(&self) -> String {
        format!("r{:06}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1)
    }
}

/// Write `resp` with the correlation ID echoed (unless the router
/// already set one); returns bytes written (head + body).
fn write_response_with_id(
    stream: &mut TcpStream,
    resp: &Response,
    req_id: &str,
) -> io::Result<u64> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if !resp
        .headers
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case(REQUEST_ID_HEADER))
    {
        head.push_str(&format!("{REQUEST_ID_HEADER}: {req_id}\r\n"));
    }
    for (name, value) in &resp.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()?;
    Ok((head.len() + resp.body.len()) as u64)
}

/// Normalize a path to a bounded per-route label so latency
/// histograms cannot explode on attacker-chosen paths.
fn route_label(path: &str) -> &'static str {
    match path {
        "/" => "root",
        "/solve" => "solve",
        "/metrics" => "metrics",
        "/snapshot.json" => "snapshot",
        "/flight.json" => "flight",
        "/timeseries.json" => "timeseries",
        "/explain.json" => "explain",
        "/healthz" => "healthz",
        "/events" => "events",
        "/requests.json" => "requests",
        "/quitquitquit" => "quit",
        _ => "other",
    }
}

/// The methods a built-in route accepts, `None` for unknown paths.
fn builtin_methods(path: &str) -> Option<&'static [&'static str]> {
    match path {
        "/metrics" | "/snapshot.json" | "/flight.json" | "/timeseries.json" | "/explain.json"
        | "/healthz" | "/events" | "/requests.json" => Some(&["GET"]),
        "/quitquitquit" => Some(&["GET", "POST"]),
        _ => None,
    }
}

/// Post-response bookkeeping for one finished request: counters,
/// per-route latency, the `http.access` instant event, the journal,
/// the optional access-log sink, and the slow/degraded flight
/// capture. Runs after the response bytes are on the wire, so none of
/// it can perturb response content.
#[allow(clippy::too_many_arguments)]
fn finish_request(
    obs: &Obs,
    state: &ServeState,
    opts: &ServeOptions,
    began: Instant,
    req_id: &str,
    method: &str,
    path: &str,
    status: u16,
    bytes_in: u64,
    bytes_out: u64,
    solve: Option<SolveAttribution>,
) {
    let handler_us = u64::try_from(began.elapsed().as_micros()).unwrap_or(u64::MAX);
    obs.add("serve.requests_total", 1);
    obs.add(&format!("serve.responses.{status}_total"), 1);
    obs.record(
        &format!("serve.latency_us.{}", route_label(path)),
        handler_us,
    );
    obs.add("serve.bytes_in_total", bytes_in);
    obs.add("serve.bytes_out_total", bytes_out);
    if let Some(s) = &solve {
        obs.record("serve.queue_wait_us", s.queue_wait_us);
    }
    obs.instant(
        "http.access",
        vec![
            ("id".to_string(), ArgValue::Str(req_id.to_string())),
            ("method".to_string(), ArgValue::Str(method.to_string())),
            ("path".to_string(), ArgValue::Str(path.to_string())),
            ("status".to_string(), ArgValue::U64(u64::from(status))),
            ("bytes_in".to_string(), ArgValue::U64(bytes_in)),
            ("bytes_out".to_string(), ArgValue::U64(bytes_out)),
            ("dur_us".to_string(), ArgValue::U64(handler_us)),
        ],
    );
    let degraded = solve.as_ref().is_some_and(|s| s.reason.is_some());
    let mut entry = JournalEntry {
        seq: 0,
        id: req_id.to_string(),
        method: method.to_string(),
        path: path.to_string(),
        status,
        bytes_in,
        bytes_out,
        handler_us,
        solve,
    };
    // The journal assigns the sequence number even when it retains
    // nothing (cap 0), so the access-log line below shares it.
    state.journal.push(&mut entry);
    if let Some(sink) = &opts.access_log {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(sink)
        {
            let _ = f.write_all(format!("{}\n", entry.to_json()).as_bytes());
        }
    }
    let slow = opts
        .slow_req_ms
        .is_some_and(|ms| handler_us >= ms.saturating_mul(1000));
    if slow || degraded {
        obs.note_degradation(
            "serve.slow_request",
            &format!("id={req_id} path={path} status={status} dur_us={handler_us}"),
        );
    }
}

fn handle_connection(
    obs: &Obs,
    mut stream: TcpStream,
    shutdown: &Arc<AtomicBool>,
    quit: &Arc<AtomicBool>,
    opts: &ServeOptions,
    router: &Option<Router>,
    state: &Arc<ServeState>,
) -> io::Result<()> {
    let began = Instant::now();
    let inflight = state.inflight.fetch_add(1, Ordering::Relaxed) + 1;
    obs.gauge_set("serve.inflight", inflight as f64);
    let out = serve_one(obs, &mut stream, shutdown, quit, opts, router, state, began);
    let inflight = state.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
    obs.gauge_set("serve.inflight", inflight as f64);
    out
}

#[allow(clippy::too_many_arguments)]
fn serve_one(
    obs: &Obs,
    stream: &mut TcpStream,
    shutdown: &Arc<AtomicBool>,
    quit: &Arc<AtomicBool>,
    opts: &ServeOptions,
    router: &Option<Router>,
    state: &Arc<ServeState>,
    began: Instant,
) -> io::Result<()> {
    let mut req = match read_request(stream, opts) {
        Ok(req) => req,
        Err(e) => {
            // Even a request that never parsed gets an ID, an echo,
            // and a journal entry — "-" marks the unparsed fields.
            let req_id = state.mint_id();
            let Some((status, body)) = e.response() else {
                return Ok(()); // socket error: nothing to write to
            };
            let resp = Response::text(status, body);
            let write_res = write_response_with_id(stream, &resp, &req_id);
            let bytes_out = *write_res.as_ref().unwrap_or(&0);
            finish_request(
                obs, state, opts, began, &req_id, "-", "-", status, 0, bytes_out, None,
            );
            return write_res.map(|_| ());
        }
    };
    if req.req_id.is_empty() {
        req.req_id = state.mint_id();
    }
    let routed = router.as_ref().and_then(|r| r(&req));
    let resp = match routed {
        Some(resp) => resp,
        None => match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/metrics") => Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8".to_string(),
                body: prometheus_text(&obs.snapshot()),
                headers: Vec::new(),
                solve: None,
            },
            ("GET", "/snapshot.json") => Response::json(200, snapshot_to_json(&obs.snapshot())),
            ("GET", "/flight.json") => Response::json(200, obs.dump_flight()),
            ("GET", "/timeseries.json") => Response::json(
                200,
                crate::timeseries::timeseries_json(&obs.timeseries_snapshot()),
            ),
            ("GET", "/requests.json") => Response::json(200, state.journal.to_json()),
            // The latest explain document published on this handle
            // (`Obs::publish_doc("explain", ...)`); 404 until a solve
            // has published one.
            ("GET", "/explain.json") => match obs.published_doc("explain") {
                Some(doc) => Response::json(200, doc),
                None => Response::text(404, "no explain document published\n"),
            },
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET" | "POST", "/quitquitquit") => {
                quit.store(true, Ordering::SeqCst);
                Response::text(200, "bye\n")
            }
            ("GET", "/events") => {
                let out = serve_events(obs, stream, shutdown, &req.req_id);
                finish_request(
                    obs,
                    state,
                    opts,
                    began,
                    &req.req_id,
                    &req.method,
                    &req.path,
                    200,
                    req.bytes_in,
                    0,
                    None,
                );
                return out;
            }
            (_, path) if builtin_methods(path).is_some() => {
                Response::text(405, "method not allowed\n")
            }
            _ => Response::text(404, "not found\n"),
        },
    };
    let write_res = write_response_with_id(stream, &resp, &req.req_id);
    let bytes_out = *write_res.as_ref().unwrap_or(&0);
    finish_request(
        obs,
        state,
        opts,
        began,
        &req.req_id,
        &req.method,
        &req.path,
        resp.status,
        req.bytes_in,
        bytes_out,
        resp.solve,
    );
    write_res.map(|_| ())
}

/// Unsubscribes its collector tee on drop, so *every* exit from the
/// SSE loop — client disconnect, shutdown, write error — releases the
/// subscription immediately instead of leaking it until the next
/// event happens to flow.
struct SseGuard {
    collector: Arc<crate::TraceCollector>,
    id: crate::span::SubscriberId,
}

impl Drop for SseGuard {
    fn drop(&mut self) {
        self.collector.unsubscribe(self.id);
    }
}

fn serve_events(
    obs: &Obs,
    stream: &mut TcpStream,
    shutdown: &Arc<AtomicBool>,
    req_id: &str,
) -> io::Result<()> {
    let Some(collector) = obs.collector().cloned() else {
        let resp = Response::text(503, "off\n");
        return write_response_with_id(stream, &resp, req_id).map(|_| ());
    };
    stream.write_all(
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\n{REQUEST_ID_HEADER}: {req_id}\r\nConnection: close\r\n\r\n"
        )
        .as_bytes(),
    )?;
    let (replay, rx, id) = collector.subscribe_tracked(SSE_SUBSCRIBER_CAPACITY);
    let _guard = SseGuard {
        collector: Arc::clone(&collector),
        id,
    };
    for ev in &replay {
        write_sse_frame(stream, ev)?;
    }
    stream.flush()?;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(ev) => {
                write_sse_frame(stream, &ev)?;
                stream.flush()?;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Comment ping: keeps intermediaries from timing the
                // stream out and lets us notice a dead client.
                stream.write_all(b": keep-alive\n\n")?;
                stream.flush()?;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

fn write_sse_frame(stream: &mut TcpStream, ev: &StreamEvent) -> io::Result<()> {
    let frame = format!(
        "event: {}\ndata: {}\n\n",
        ev.kind_str(),
        stream_event_json(ev)
    );
    stream.write_all(frame.as_bytes())
}

// ---------------------------------------------------------------------------
// Std-only HTTP client (shared by `diag --probe` and tests)
// ---------------------------------------------------------------------------

/// `(status, response headers, body)` of one [`http_request`]
/// exchange.
pub type HttpExchange = (u16, Vec<(String, String)>, String);

/// One full HTTP exchange: returns
/// `(status, response_headers, body)`. `headers` are extra request
/// headers (e.g. `X-Casa-Request-Id`); `body` is
/// `(content_type, payload)` for methods that carry one. Plain
/// HTTP/1.1, `Connection: close`, bounded by `timeout` for connect
/// and for each read. This is the one client implementation `diag`,
/// `casa-loadgen`, CI, and the tests share.
pub fn http_request(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<(&str, &str)>,
    timeout: Duration,
) -> io::Result<HttpExchange> {
    let mut stream = TcpStream::connect_timeout(addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if let Some((content_type, payload)) = body {
        head.push_str(&format!(
            "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
            payload.len()
        ));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some((_, payload)) = body {
        stream.write_all(payload.as_bytes())?;
    }
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let (resp_head, resp_body) = raw
        .split_once("\r\n\r\n")
        .map_or((raw.as_str(), ""), |(h, b)| (h, b));
    let resp_headers = resp_head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    Ok((status, resp_headers, resp_body.to_string()))
}

/// Case-insensitive response-header lookup for [`http_request`]
/// results.
pub fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// Fetch `path` from a telemetry server: returns `(status, body)`.
/// Plain HTTP/1.1, `Connection: close`, bounded by `timeout` for
/// connect and for each read.
pub fn http_get(addr: &SocketAddr, path: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let (status, _, body) = http_request(addr, "GET", path, &[], None, timeout)?;
    Ok((status, body))
}

/// POST `body` to `path` on a telemetry server: returns
/// `(status, body)`. Plain HTTP/1.1, `Connection: close`, bounded by
/// `timeout` for connect and for each read.
pub fn http_post(
    addr: &SocketAddr,
    path: &str,
    content_type: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<(u16, String)> {
    let (status, _, body) =
        http_request(addr, "POST", path, &[], Some((content_type, body)), timeout)?;
    Ok((status, body))
}

/// Collect SSE frames from `path` until `max_frames` events have
/// arrived or `window` elapses. Returns the `(event, data)` pairs plus
/// the number of comment (`:` keep-alive) lines seen.
pub fn collect_sse(
    addr: &SocketAddr,
    path: &str,
    window: Duration,
    max_frames: usize,
) -> io::Result<(Vec<(String, String)>, usize)> {
    let mut stream = TcpStream::connect_timeout(addr, window)?;
    stream.set_write_timeout(Some(window))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let deadline = Instant::now() + window;
    let mut raw: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        stream.set_read_timeout(Some(remaining.min(Duration::from_millis(100))))?;
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                if parse_sse_body(&raw).0.len() >= max_frames {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    drop(stream);
    Ok(parse_sse_body(&raw))
}

/// Split a raw SSE response into `(event, data)` frames and a count of
/// comment lines; tolerates the HTTP head still being attached.
fn parse_sse_body(raw: &[u8]) -> (Vec<(String, String)>, usize) {
    let text = String::from_utf8_lossy(raw);
    let body = text
        .split_once("\r\n\r\n")
        .map_or_else(|| text.to_string(), |(_, b)| b.to_string());
    let mut frames = Vec::new();
    let mut comments = 0usize;
    let mut event = String::new();
    let mut data = String::new();
    for line in body.lines() {
        if line.is_empty() {
            if !event.is_empty() || !data.is_empty() {
                frames.push((std::mem::take(&mut event), std::mem::take(&mut data)));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("event:") {
            event = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("data:") {
            data = rest.trim().to_string();
        } else if line.starts_with(':') {
            comments += 1;
        }
    }
    (frames, comments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn names_sanitize_with_prefix() {
        assert_eq!(prometheus_name("energy.total_uj"), "casa_energy_total_uj");
        assert_eq!(prometheus_name("sweep.cells-done"), "casa_sweep_cells_done");
        assert_eq!(prometheus_name("a:b"), "casa_a:b");
    }

    #[test]
    fn prom_num_spells_non_finite() {
        assert_eq!(prom_num(1.5), "1.5");
        assert_eq!(prom_num(f64::NAN), "NaN");
        assert_eq!(prom_num(f64::INFINITY), "+Inf");
        assert_eq!(prom_num(f64::NEG_INFINITY), "-Inf");
    }

    #[test]
    fn non_finite_samples_survive_the_full_exposition_path() {
        // A NaN/±Inf gauge must come out in the Prometheus-legal
        // spellings — never Rust's `inf` / `-inf` / debug forms — and
        // the rendered document must still validate end to end.
        let obs = Obs::enabled();
        obs.gauge_set("gap.unproven", f64::NAN);
        obs.gauge_set("bound.upper", f64::INFINITY);
        obs.gauge_set("bound.lower", f64::NEG_INFINITY);
        obs.gauge_set("bound.finite", 2.5);
        let text = prometheus_text(&obs.snapshot());
        assert!(text.contains("casa_gap_unproven NaN\n"), "{text}");
        assert!(text.contains("casa_bound_upper +Inf\n"), "{text}");
        assert!(text.contains("casa_bound_lower -Inf\n"), "{text}");
        for rust_form in ["inf\n", "-inf\n", "infinity", "nan\n"] {
            assert!(
                !text.contains(rust_form),
                "Rust float spelling {rust_form:?} leaked into the exposition:\n{text}"
            );
        }
        let stats = validate_exposition(&text).expect("non-finite samples are legal exposition");
        assert_eq!(stats.families, 4);
    }

    #[test]
    fn validator_rejects_rust_spelled_non_finite_values() {
        // `f64::from_str` accepts all of these, so a validator that
        // only tries `parse::<f64>()` would wave them through.
        for bad in ["inf", "-inf", "+inf", "infinity", "-Infinity", "nan", "NAN"] {
            let doc = format!("# TYPE x gauge\nx {bad}\n");
            assert!(
                validate_exposition(&doc)
                    .unwrap_err()
                    .contains("unparsable"),
                "{bad:?} must be rejected"
            );
        }
        for good in ["NaN", "+Inf", "-Inf", "1.5", "-0.25", "3e8"] {
            let doc = format!("# TYPE x gauge\nx {good}\n");
            assert!(validate_exposition(&doc).is_ok(), "{good:?} must be legal");
        }
    }

    #[test]
    fn exposition_renders_and_validates() {
        let obs = Obs::enabled();
        obs.add("solver.nodes", 41);
        obs.gauge_set("energy.total_uj", 12.5);
        obs.record("conflict.row_degree", 4);
        obs.record("conflict.row_degree", 16);
        let text = prometheus_text(&obs.snapshot());
        assert!(text.contains("# TYPE casa_solver_nodes counter\ncasa_solver_nodes 41\n"));
        assert!(text.contains("# TYPE casa_energy_total_uj gauge\ncasa_energy_total_uj 12.5\n"));
        assert!(text.contains("# TYPE casa_conflict_row_degree summary\n"));
        // Samples {4, 16}: the median target lands on the [4,7]
        // bucket's cumulative boundary, so interpolation reports its
        // upper edge; p90/p99 clamp to the exact max.
        assert!(text.contains("casa_conflict_row_degree{quantile=\"0.5\"} 7\n"));
        assert!(text.contains("casa_conflict_row_degree{quantile=\"0.99\"} 16\n"));
        assert!(text.contains("casa_conflict_row_degree{quantile=\"0.999\"} 16\n"));
        assert!(text.contains("casa_conflict_row_degree_sum 20\n"));
        assert!(text.contains("casa_conflict_row_degree_count 2\n"));
        // Exact observed extremes ride along as sibling gauges.
        assert!(text.contains("# TYPE casa_conflict_row_degree_min gauge\n"));
        assert!(text.contains("casa_conflict_row_degree_min 4\n"));
        assert!(text.contains("casa_conflict_row_degree_max 16\n"));
        let stats = validate_exposition(&text).expect("valid exposition");
        assert_eq!(stats.families, 5);
        assert_eq!(stats.samples, 10);
    }

    #[test]
    fn colliding_sanitized_names_keep_first_family() {
        let obs = Obs::enabled();
        obs.add("a.b", 1);
        obs.add("a-b", 2);
        let text = prometheus_text(&obs.snapshot());
        assert_eq!(text.matches("# TYPE casa_a_b counter").count(), 1);
        assert!(validate_exposition(&text).is_ok());
    }

    #[test]
    fn validator_rejects_duplicates_and_bad_names() {
        assert!(
            validate_exposition("# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n")
                .unwrap_err()
                .contains("duplicate")
        );
        assert!(validate_exposition("# TYPE 9bad counter\n")
            .unwrap_err()
            .contains("invalid"));
        assert!(validate_exposition("orphan 1\n")
            .unwrap_err()
            .contains("no preceding TYPE"));
        assert!(validate_exposition("# TYPE x gauge\nx notanumber\n")
            .unwrap_err()
            .contains("unparsable"));
        let ok =
            validate_exposition("# TYPE x summary\nx{quantile=\"0.5\"} 2\nx_sum 2\nx_count 1\n")
                .unwrap();
        assert_eq!(
            ok,
            ExpositionStats {
                families: 1,
                samples: 3
            }
        );
    }

    #[test]
    fn journal_ring_wrap_keeps_order_and_request_attribution() {
        // `diag tail` contract: after CASA_REQ_JOURNAL_CAP overflow the
        // journal must list exactly the newest `cap` requests, oldest
        // first, with contiguous sequence numbers and the correlation
        // IDs of the requests that actually survived — no duplicates,
        // no ghosts of evicted entries.
        let obs = Obs::enabled();
        let opts = ServeOptions {
            journal_cap: 3,
            ..ServeOptions::default()
        };
        let mut handle = start_with(&obs, "127.0.0.1:0", opts, None).expect("bind");
        let addr = handle.local_addr();
        let t = Duration::from_secs(5);
        for i in 1..=5 {
            let id = format!("wrap-{i:02}");
            let (code, _, _) = http_request(
                &addr,
                "GET",
                "/healthz",
                &[(REQUEST_ID_HEADER, &id)],
                None,
                t,
            )
            .unwrap();
            assert_eq!(code, 200);
        }
        let (st, body) = http_get(&addr, "/requests.json", t).unwrap();
        assert_eq!(st, 200);
        let v = serde::json::parse(&body).expect("journal is valid JSON");
        assert_eq!(v.get("cap").and_then(|x| x.as_f64()), Some(3.0));
        assert_eq!(
            v.get("dropped").and_then(|x| x.as_f64()),
            Some(2.0),
            "two evictions past the cap: {body}"
        );
        let entries = v.get("entries").and_then(|x| x.as_array()).unwrap();
        let seqs: Vec<u64> = entries
            .iter()
            .map(|e| e.get("seq").and_then(|x| x.as_f64()).unwrap() as u64)
            .collect();
        assert_eq!(seqs, vec![3, 4, 5], "oldest-first, contiguous: {body}");
        let ids: Vec<&str> = entries
            .iter()
            .map(|e| e.get("id").and_then(|x| x.as_str()).unwrap())
            .collect();
        assert_eq!(
            ids,
            vec!["wrap-03", "wrap-04", "wrap-05"],
            "the three newest requests, correctly attributed: {body}"
        );
        handle.shutdown();
    }

    #[test]
    fn stream_event_json_is_parsable() {
        let obs = Obs::enabled();
        obs.instant("tick", vec![("n".to_string(), ArgValue::U64(3))]);
        let collector = obs.collector().unwrap();
        let (replay, _rx) = collector.subscribe(4);
        let json = stream_event_json(&replay[0]);
        let v = serde::json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("kind").and_then(|x| x.as_str()), Some("instant"));
        assert_eq!(v.get("name").and_then(|x| x.as_str()), Some("tick"));
        assert_eq!(
            v.get("args")
                .and_then(|a| a.get("n"))
                .and_then(|x| x.as_f64()),
            Some(3.0)
        );
    }

    #[test]
    fn server_serves_all_endpoints() {
        let obs = Obs::enabled();
        obs.add("solver.nodes", 7);
        obs.gauge_set("energy.total_uj", 1.25);
        {
            let _g = obs.span("phase");
        }
        let mut handle = start(&obs, "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();
        let t = Duration::from_secs(5);

        let (st, body) = http_get(&addr, "/healthz", t).unwrap();
        assert_eq!((st, body.as_str()), (200, "ok\n"));

        let (st, metrics) = http_get(&addr, "/metrics", t).unwrap();
        assert_eq!(st, 200);
        validate_exposition(&metrics).expect("valid exposition over HTTP");
        assert!(metrics.contains("casa_solver_nodes 7"));
        // Request-scoped serve metrics ride along in the exposition.
        assert!(metrics.contains("# TYPE casa_serve_requests_total counter"));
        assert!(metrics.contains("# TYPE casa_serve_inflight gauge"));

        let (st, snap) = http_get(&addr, "/snapshot.json", t).unwrap();
        assert_eq!(st, 200);
        let v = serde::json::parse(&snap).expect("snapshot is valid JSON");
        assert_eq!(v.get("solver.nodes").and_then(|x| x.as_f64()), Some(7.0));
        assert!(
            snap.contains("\"serve.latency_us.healthz\""),
            "per-route latency family missing: {snap}"
        );

        let (st, flight) = http_get(&addr, "/flight.json", t).unwrap();
        assert_eq!(st, 200);
        assert!(serde::json::parse(&flight).is_ok());

        obs.ts_sample("bb.incumbent", 12, 99.5);
        let (st, ts) = http_get(&addr, "/timeseries.json", t).unwrap();
        assert_eq!(st, 200);
        let v = serde::json::parse(&ts).expect("timeseries is valid JSON");
        assert_eq!(v.get("casa_timeseries").and_then(|x| x.as_f64()), Some(1.0));
        assert!(
            ts.contains("\"bb.incumbent\":[[12,99.5]]"),
            "sampled series missing: {ts}"
        );

        let (st, journal) = http_get(&addr, "/requests.json", t).unwrap();
        assert_eq!(st, 200);
        let v = serde::json::parse(&journal).expect("journal is valid JSON");
        let entries = v.get("entries").and_then(|x| x.as_array()).unwrap();
        assert!(
            !entries.is_empty(),
            "earlier requests should be journaled: {journal}"
        );
        let first = &entries[0];
        assert_eq!(first.get("path").and_then(|x| x.as_str()), Some("/healthz"));
        assert_eq!(first.get("status").and_then(|x| x.as_f64()), Some(200.0));
        assert!(first.get("id").and_then(|x| x.as_str()).is_some());

        // /explain.json serves the latest published explain document,
        // 404 before any solve has published one.
        let (st, _) = http_get(&addr, "/explain.json", t).unwrap();
        assert_eq!(st, 404);
        obs.publish_doc("explain", "{\"casa_explain\":1,\"objects\":[]}".to_string());
        let (st, doc) = http_get(&addr, "/explain.json", t).unwrap();
        assert_eq!(st, 200);
        let v = serde::json::parse(&doc).expect("explain doc is valid JSON");
        assert_eq!(v.get("casa_explain").and_then(|x| x.as_f64()), Some(1.0));

        let (st, _) = http_get(&addr, "/nope", t).unwrap();
        assert_eq!(st, 404);

        assert!(!handle.quit_requested());
        let (st, body) = http_get(&addr, "/quitquitquit", t).unwrap();
        assert_eq!((st, body.as_str()), (200, "bye\n"));
        assert!(handle.wait_quit(Duration::from_secs(1)));

        handle.shutdown();
        // After shutdown the port stops answering (the dummy unblock
        // connection may still be accepted; a fresh request must not).
        assert!(http_get(&addr, "/healthz", Duration::from_millis(300)).is_err());
    }

    #[test]
    fn sse_streams_replay_and_live_events() {
        let obs = Obs::enabled();
        {
            let _g = obs.span("history");
        }
        let handle = start(&obs, "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();
        // Live events emitted while the subscriber is attached.
        let live = {
            let obs = obs.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(150));
                let _g = obs.span("live");
                obs.instant("tick", Vec::new());
            })
        };
        let (frames, _comments) =
            collect_sse(&addr, "/events", Duration::from_secs(5), 4).expect("sse");
        live.join().unwrap();
        let kinds: Vec<&str> = frames.iter().map(|(e, _)| e.as_str()).collect();
        assert_eq!(kinds, vec!["span_end", "span_begin", "instant", "span_end"]);
        let names: Vec<String> = frames
            .iter()
            .map(|(_, d)| {
                serde::json::parse(d)
                    .unwrap()
                    .get("name")
                    .and_then(|x| x.as_str())
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(names, vec!["history", "live", "tick", "live"]);
    }

    #[test]
    fn disabled_handle_refuses_to_serve() {
        let err = start(&Obs::disabled(), "127.0.0.1:0").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    /// Regression (slowloris): a client that connects and then hangs —
    /// or drips bytes slower than the deadline — must be cut off at
    /// the *total* read deadline, not kept alive by per-read timeouts.
    #[test]
    fn stalled_client_is_cut_off_at_the_read_deadline() {
        let obs = Obs::enabled();
        let opts = ServeOptions {
            read_deadline: Duration::from_millis(300),
            ..ServeOptions::default()
        };
        let mut handle = start_with(&obs, "127.0.0.1:0", opts, None).expect("bind");
        let addr = handle.local_addr();

        // Connect-then-hang: send half a request line, never finish.
        let began = Instant::now();
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
        stream.write_all(b"GET /heal").unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("server closes");
        assert!(
            raw.starts_with("HTTP/1.1 408"),
            "expected 408 on stall, got {raw:?}"
        );
        assert!(
            began.elapsed() < Duration::from_secs(3),
            "handler pinned for {:?}",
            began.elapsed()
        );

        // Drip-feed: one byte per 100 ms outruns any per-read timeout
        // but not the absolute deadline.
        let began = Instant::now();
        let mut drip = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
        let mut dripped = Vec::new();
        for b in b"GET /healthz HTTP/1.1\r\n\r\n" {
            if drip.write_all(&[*b]).is_err() {
                break; // server already gave up on us — the point
            }
            dripped.push(*b);
            thread::sleep(Duration::from_millis(100));
            if began.elapsed() > Duration::from_secs(2) {
                panic!("drip client still being read after {:?}", began.elapsed());
            }
        }
        drip.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut raw = String::new();
        let _ = drip.read_to_string(&mut raw);
        assert!(
            raw.is_empty() || raw.starts_with("HTTP/1.1 408"),
            "drip client should see a timeout or a reset, got {raw:?}"
        );

        // The server is still healthy for well-behaved clients.
        let (st, body) = http_get(&addr, "/healthz", Duration::from_secs(5)).unwrap();
        assert_eq!((st, body.as_str()), (200, "ok\n"));
        handle.shutdown();
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let obs = Obs::enabled();
        let opts = ServeOptions {
            max_head_bytes: 256,
            max_body_bytes: 64,
            ..ServeOptions::default()
        };
        let mut handle = start_with(&obs, "127.0.0.1:0", opts, None).expect("bind");
        let addr = handle.local_addr();

        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(4096));
        let _ = stream.write_all(huge.as_bytes());
        let mut raw = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let _ = stream.read_to_string(&mut raw);
        assert!(raw.starts_with("HTTP/1.1 413"), "got {raw:?}");

        let big_body = "y".repeat(128);
        let (st, _) = http_post(
            &addr,
            "/solve",
            "application/json",
            &big_body,
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(st, 413);
        handle.shutdown();
    }

    /// Regression (SSE leak): subscribers whose clients disconnect
    /// must be pruned even when no further event ever flows through
    /// the collector.
    #[test]
    fn sse_disconnects_leave_zero_subscribers() {
        let obs = Obs::enabled();
        obs.instant("seed", Vec::new());
        let collector = Arc::clone(obs.collector().expect("enabled"));
        let mut handle = start(&obs, "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();
        for _ in 0..4 {
            // Connect, read the replay, then vanish without a trace.
            let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
            stream
                .write_all(b"GET /events HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut chunk = [0u8; 1024];
            let _ = stream.read(&mut chunk);
            drop(stream);
        }
        // No event is emitted here — pruning must not depend on one.
        // The handlers notice the dead socket on a keep-alive ping
        // (≤ ~200 ms) and unsubscribe on exit.
        let deadline = Instant::now() + Duration::from_secs(5);
        while collector.subscriber_count() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(
            collector.subscriber_count(),
            0,
            "disconnected SSE clients left subscribers registered"
        );
        handle.shutdown();
    }

    /// Regression (shutdown race): `shutdown()` must drain in-flight
    /// handlers, so a response that started before shutdown completes
    /// in full and the handler finishes before `shutdown()` returns.
    #[test]
    fn shutdown_drains_inflight_handlers() {
        let obs = Obs::enabled();
        let handler_done: Arc<Mutex<Option<Instant>>> = Arc::new(Mutex::new(None));
        let done = Arc::clone(&handler_done);
        let router: Router = Arc::new(move |req: &Request| {
            if req.path == "/slow" {
                thread::sleep(Duration::from_millis(250));
                *done.lock().unwrap() = Some(Instant::now());
                Some(Response::text(200, "slow-done"))
            } else {
                None
            }
        });
        let mut handle =
            start_with(&obs, "127.0.0.1:0", ServeOptions::default(), Some(router)).expect("bind");
        let addr = handle.local_addr();
        let client = thread::spawn(move || http_get(&addr, "/slow", Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(50)); // let the request land
        handle.shutdown();
        let returned = Instant::now();
        let finished = handler_done
            .lock()
            .unwrap()
            .expect("shutdown returned before the in-flight handler finished");
        assert!(finished <= returned);
        let (st, body) = client.join().unwrap().expect("response completes");
        assert_eq!((st, body.as_str()), (200, "slow-done"));
    }

    /// The satellite's scenario verbatim: quit lands concurrently with
    /// `/metrics` scrapes; every scrape that got through must carry a
    /// complete, valid exposition.
    #[test]
    fn quit_concurrent_with_metrics_scrape_is_clean() {
        let obs = Obs::enabled();
        obs.add("solver.nodes", 3);
        let mut handle = start(&obs, "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();
        let scrapers: Vec<_> = (0..4)
            .map(|_| {
                thread::spawn(move || {
                    let mut bodies = Vec::new();
                    for _ in 0..10 {
                        if let Ok((200, body)) = http_get(&addr, "/metrics", Duration::from_secs(5))
                        {
                            bodies.push(body);
                        }
                    }
                    bodies
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(20));
        let _ = http_get(&addr, "/quitquitquit", Duration::from_secs(5));
        assert!(handle.wait_quit(Duration::from_secs(5)));
        handle.shutdown();
        let mut seen = 0usize;
        for s in scrapers {
            for body in s.join().unwrap() {
                validate_exposition(&body).expect("every completed scrape is a full exposition");
                assert!(body.contains("casa_solver_nodes 3"));
                seen += 1;
            }
        }
        assert!(seen > 0, "no scrape completed at all");
    }

    #[test]
    fn router_mounts_post_routes_and_falls_through() {
        let obs = Obs::enabled();
        let router: Router = Arc::new(|req: &Request| {
            if req.method == "POST" && req.path == "/echo" {
                Some(
                    Response::json(200, String::from_utf8_lossy(&req.body).into_owned())
                        .with_header("X-Casa-Cache", "miss"),
                )
            } else {
                None
            }
        });
        let mut handle =
            start_with(&obs, "127.0.0.1:0", ServeOptions::default(), Some(router)).expect("bind");
        let addr = handle.local_addr();
        let (st, body) = http_post(
            &addr,
            "/echo",
            "application/json",
            "{\"x\":1}",
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!((st, body.as_str()), (200, "{\"x\":1}"));
        // Built-in routes still work under a router.
        let (st, body) = http_get(&addr, "/healthz", Duration::from_secs(5)).unwrap();
        assert_eq!((st, body.as_str()), (200, "ok\n"));
        let (st, _) = http_get(&addr, "/nope", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 404);
        handle.shutdown();
    }

    #[test]
    fn request_id_validation_rules() {
        assert!(valid_request_id("r000001"));
        assert!(valid_request_id("abc-123.x_Y"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("semi;colon"));
        assert!(!valid_request_id(&"x".repeat(65)));
        assert!(valid_request_id(&"x".repeat(64)));
    }

    #[test]
    fn journal_entry_json_round_trips() {
        let e = JournalEntry {
            seq: 3,
            id: "ci-req-42".to_string(),
            method: "POST".to_string(),
            path: "/solve".to_string(),
            status: 200,
            bytes_in: 120,
            bytes_out: 256,
            handler_us: 1500,
            solve: Some(SolveAttribution {
                cache: "warm".to_string(),
                status: "feasible".to_string(),
                gap: Some(0.125),
                nodes: 42,
                stopped_by: Some("nodes".to_string()),
                reason: None,
                queue_wait_us: 7,
                worker: 1,
            }),
        };
        let json = e.to_json();
        let v = serde::json::parse(&json).expect("entry JSON parses");
        assert_eq!(v.get("id").and_then(|x| x.as_str()), Some("ci-req-42"));
        assert_eq!(v.get("status").and_then(|x| x.as_f64()), Some(200.0));
        let solve = v.get("solve").expect("solve object");
        assert_eq!(solve.get("cache").and_then(|x| x.as_str()), Some("warm"));
        assert_eq!(solve.get("gap").and_then(|x| x.as_f64()), Some(0.125));
        assert_eq!(solve.get("nodes").and_then(|x| x.as_f64()), Some(42.0));
        assert_eq!(
            solve.get("stopped_by").and_then(|x| x.as_str()),
            Some("nodes")
        );
    }

    /// Satellite: the four router edge cases pin their status codes
    /// AND that each increments exactly its own per-status counter.
    #[test]
    fn router_edge_cases_pin_codes_and_counters() {
        let obs = Obs::enabled();
        let router: Router = Arc::new(|req: &Request| {
            (req.method == "POST" && req.path == "/echo")
                .then(|| Response::json(200, String::from_utf8_lossy(&req.body).into_owned()))
        });
        let opts = ServeOptions {
            max_body_bytes: 64,
            ..ServeOptions::default()
        };
        let mut handle = start_with(&obs, "127.0.0.1:0", opts, Some(router)).expect("bind");
        let addr = handle.local_addr();
        let t = Duration::from_secs(5);

        // Unknown route -> 404.
        let (st, _) = http_get(&addr, "/definitely-not-mounted", t).unwrap();
        assert_eq!(st, 404);
        // Wrong method on a mounted route -> 405.
        let (st, _, _) =
            http_request(&addr, "POST", "/metrics", &[], Some(("text/plain", "x")), t).unwrap();
        assert_eq!(st, 405);
        // Body over the configured cap -> 413.
        let big = "y".repeat(128);
        let (st, _) = http_post(&addr, "/echo", "application/json", &big, t).unwrap();
        assert_eq!(st, 413);
        // Malformed request line -> 400, and even that echoes an ID.
        let mut stream = TcpStream::connect_timeout(&addr, t).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        stream.set_read_timeout(Some(t)).unwrap();
        let mut raw = String::new();
        let _ = stream.read_to_string(&mut raw);
        assert!(raw.starts_with("HTTP/1.1 400"), "got {raw:?}");
        assert!(
            raw.contains("X-Casa-Request-Id:"),
            "read-error responses still echo an ID: {raw:?}"
        );
        drop(stream);

        let snap = obs.snapshot();
        let get = |name: &str| match snap.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        };
        assert_eq!(get("serve.responses.404_total"), 1, "{snap:?}");
        assert_eq!(get("serve.responses.405_total"), 1, "{snap:?}");
        assert_eq!(get("serve.responses.413_total"), 1, "{snap:?}");
        assert_eq!(get("serve.responses.400_total"), 1, "{snap:?}");
        assert_eq!(get("serve.responses.200_total"), 0, "{snap:?}");
        assert_eq!(get("serve.requests_total"), 4, "{snap:?}");
        handle.shutdown();
    }

    #[test]
    fn every_response_carries_a_request_id() {
        let obs = Obs::enabled();
        let mut handle = start(&obs, "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();
        let t = Duration::from_secs(5);
        // No header -> minted from the deterministic counter.
        let (st, headers, _) = http_request(&addr, "GET", "/healthz", &[], None, t).unwrap();
        assert_eq!(st, 200);
        assert_eq!(header_value(&headers, REQUEST_ID_HEADER), Some("r000001"));
        // Client-supplied ID -> echoed verbatim, counter untouched.
        let (_, headers, _) = http_request(
            &addr,
            "GET",
            "/healthz",
            &[(REQUEST_ID_HEADER, "abc-123.x_Y")],
            None,
            t,
        )
        .unwrap();
        assert_eq!(
            header_value(&headers, REQUEST_ID_HEADER),
            Some("abc-123.x_Y")
        );
        // Malformed ID -> minted instead (next counter value).
        let (_, headers, _) = http_request(
            &addr,
            "GET",
            "/healthz",
            &[(REQUEST_ID_HEADER, "bad id!")],
            None,
            t,
        )
        .unwrap();
        assert_eq!(header_value(&headers, REQUEST_ID_HEADER), Some("r000002"));
        handle.shutdown();
    }

    #[test]
    fn journal_rings_and_drops_oldest() {
        let obs = Obs::enabled();
        let opts = ServeOptions {
            journal_cap: 2,
            ..ServeOptions::default()
        };
        let mut handle = start_with(&obs, "127.0.0.1:0", opts, None).expect("bind");
        let addr = handle.local_addr();
        let t = Duration::from_secs(5);
        for _ in 0..3 {
            let (st, _) = http_get(&addr, "/healthz", t).unwrap();
            assert_eq!(st, 200);
        }
        let (st, journal) = http_get(&addr, "/requests.json", t).unwrap();
        assert_eq!(st, 200);
        let v = serde::json::parse(&journal).expect("journal JSON");
        assert_eq!(v.get("cap").and_then(|x| x.as_f64()), Some(2.0));
        assert_eq!(v.get("dropped").and_then(|x| x.as_f64()), Some(1.0));
        let entries = v.get("entries").and_then(|x| x.as_array()).unwrap();
        assert_eq!(entries.len(), 2);
        // FIFO eviction: the survivors are requests 2 and 3.
        assert_eq!(entries[0].get("seq").and_then(|x| x.as_f64()), Some(2.0));
        assert_eq!(entries[1].get("seq").and_then(|x| x.as_f64()), Some(3.0));
        handle.shutdown();
    }

    /// The determinism contract, pinned: `/solve` response bytes are
    /// identical with the journal/access machinery on or off, and the
    /// attribution lands in the journal (never the body).
    #[test]
    fn solve_bytes_identical_with_journal_on_and_off() {
        fn solve_router() -> Router {
            Arc::new(|req: &Request| {
                (req.method == "POST" && req.path == "/solve").then(|| {
                    Response::json(200, "{\"gap\":0,\"status\":\"optimal\"}")
                        .with_header("X-Casa-Cache", "warm")
                        .with_solve(SolveAttribution {
                            cache: "warm".to_string(),
                            status: "optimal".to_string(),
                            gap: Some(0.0),
                            nodes: 42,
                            stopped_by: None,
                            reason: None,
                            queue_wait_us: 7,
                            worker: 0,
                        })
                })
            })
        }
        let t = Duration::from_secs(5);
        let body = ("application/json", "{\"capacity\":64}");
        let hdrs = [(REQUEST_ID_HEADER, "det-check-1")];

        let obs_on = Obs::enabled();
        let on_opts = ServeOptions {
            journal_cap: 256,
            slow_req_ms: Some(0), // everything is "slow": exercise the capture path
            ..ServeOptions::default()
        };
        let mut on = start_with(&obs_on, "127.0.0.1:0", on_opts, Some(solve_router())).unwrap();
        let (st_on, h_on, b_on) =
            http_request(&on.local_addr(), "POST", "/solve", &hdrs, Some(body), t).unwrap();

        let obs_off = Obs::enabled();
        let off_opts = ServeOptions {
            journal_cap: 0,
            ..ServeOptions::default()
        };
        let mut off = start_with(&obs_off, "127.0.0.1:0", off_opts, Some(solve_router())).unwrap();
        let (st_off, h_off, b_off) =
            http_request(&off.local_addr(), "POST", "/solve", &hdrs, Some(body), t).unwrap();

        assert_eq!((st_on, st_off), (200, 200));
        assert_eq!(b_on, b_off, "journal on/off must not change response bytes");
        assert_eq!(
            header_value(&h_on, REQUEST_ID_HEADER),
            Some("det-check-1"),
            "explicit ID echoed"
        );
        assert_eq!(
            header_value(&h_on, REQUEST_ID_HEADER),
            header_value(&h_off, REQUEST_ID_HEADER),
        );

        // Journal-on server recorded the attribution alongside.
        let (st, journal) = http_get(&on.local_addr(), "/requests.json", t).unwrap();
        assert_eq!(st, 200);
        let v = serde::json::parse(&journal).expect("journal JSON");
        let entries = v.get("entries").and_then(|x| x.as_array()).unwrap();
        let e = entries
            .iter()
            .find(|e| e.get("id").and_then(|x| x.as_str()) == Some("det-check-1"))
            .expect("solve request journaled by its ID");
        let solve = e.get("solve").expect("attribution recorded");
        assert_eq!(solve.get("cache").and_then(|x| x.as_str()), Some("warm"));
        assert_eq!(solve.get("gap").and_then(|x| x.as_f64()), Some(0.0));
        assert_eq!(solve.get("nodes").and_then(|x| x.as_f64()), Some(42.0));

        // Journal-off server serves an empty journal.
        let (st, journal) = http_get(&off.local_addr(), "/requests.json", t).unwrap();
        assert_eq!(st, 200);
        let v = serde::json::parse(&journal).expect("journal JSON");
        assert_eq!(v.get("cap").and_then(|x| x.as_f64()), Some(0.0));
        assert_eq!(
            v.get("entries").and_then(|x| x.as_array()).map(<[_]>::len),
            Some(0)
        );
        on.shutdown();
        off.shutdown();
    }
}
