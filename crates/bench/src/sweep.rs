//! Deterministic parallel sweep engine.
//!
//! A [`SweepGrid`] enumerates experiment cells — each cell pairs a
//! workload (benchmark, trip scale, walk seed) with either a full
//! scratchpad [`FlowConfig`] or a loop-cache configuration — and
//! [`SweepGrid::run`] executes them on a fixed-size pool of `std`
//! scoped threads (no external runtime: the build environment cannot
//! reach a package registry, so rayon is deliberately not used).
//!
//! Determinism is the design constraint, not an accident:
//!
//! * workers pull cell *indices* from an atomic counter, but every
//!   result lands in its cell's own slot and aggregation walks the
//!   slots in grid order, so the report is independent of which
//!   worker ran what;
//! * each cell's computation depends only on its inputs (the conflict
//!   graph is CSR-backed, so even float reductions have a fixed
//!   order), which includes seeded [`ReplacementPolicy::Random`]
//!   caches — the RNG is owned per simulation, never shared;
//! * [`SweepReport::deterministic_json`] excludes wall-clock fields,
//!   so its bytes are identical for any worker count, including
//!   `CASA_SWEEP_THREADS=1`.
//!
//! Workload preparation (compile + profiling walk) is hoisted out of
//! the cells and memoized per distinct (benchmark, scale, seed), so a
//! grid sweeping 12 configurations of one benchmark walks it once.
//!
//! The worker count comes from the `CASA_SWEEP_THREADS` environment
//! variable when set (minimum 1), else from
//! [`std::thread::available_parallelism`].
//!
//! [`ReplacementPolicy::Random`]: casa_mem::ReplacementPolicy::Random

use crate::experiments::{paper_sizes, LINE_SIZE, LOOP_CACHE_SLOTS};
use crate::runner::{prepared, PreparedWorkload};
use casa_core::engine::{AllocOutcome, Budget, TreeRecorder};
use casa_core::flow::{
    run_loop_cache_flow, run_spm_flow, AllocatorKind, FlowConfig, FlowCtx, LoopCacheConfig,
};
use casa_core::{explain_json, EnergyModel, ExplainRecorder, Session, SessionRecorder, SolveJob};
use casa_energy::TechParams;
use casa_ilp::tree::tree_log_json;
use casa_mem::CacheConfig;
use casa_obs::{
    merge_snapshot, snapshot_to_json, timeseries_json, ArgValue, EventKind, MetricsSnapshot, Obs,
    TimeSeriesSnapshot, TimeSeriesStore,
};
use casa_workloads::mediabench;
use casa_workloads::spec::BenchmarkSpec;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// The whole point of the pool is shipping these across threads; fail
// at compile time, not review time, if a field ever stops being Send.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<PreparedWorkload>();
    assert_send_sync::<SweepGrid>();
    assert_send_sync::<casa_core::flow::FlowReport>();
    assert_send_sync::<CellResult>();
    assert_send_sync::<Obs>();
};

/// One distinct workload: a benchmark walked once per (scale, seed).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadKey {
    /// Benchmark name (resolved via [`mediabench::all`]).
    pub benchmark: String,
    /// Loop trip-count scale factor.
    pub scale: u64,
    /// Walker seed.
    pub seed: u64,
}

/// What a cell executes against its workload.
#[derive(Debug, Clone, PartialEq)]
pub enum CellKind {
    /// A scratchpad flow ([`run_spm_flow`]) under this configuration.
    Spm(FlowConfig),
    /// A loop-cache flow ([`run_loop_cache_flow`]).
    LoopCache {
        /// L1 I-cache.
        cache: CacheConfig,
        /// Loop-cache capacity in bytes.
        capacity: u32,
    },
}

/// One grid cell: a workload index plus the flow to run on it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Index into the grid's workload table.
    pub workload: usize,
    /// The flow configuration.
    pub kind: CellKind,
}

/// A sweep: distinct workloads plus the cells that reference them,
/// all solved under one per-cell [`Budget`] (unlimited by default).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepGrid {
    workloads: Vec<WorkloadKey>,
    cells: Vec<SweepCell>,
    budget: Budget,
    session_dir: Option<PathBuf>,
    capture_trees: bool,
    capture_explain: bool,
}

/// Per-cell measurements. Wall-clock fields (`solver_secs`,
/// `cell_secs`) are reported by [`SweepReport::to_json`] but excluded
/// from [`SweepReport::deterministic_json`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Trip scale of the workload.
    pub scale: u64,
    /// Walker seed of the workload.
    pub seed: u64,
    /// `spm:<allocator>` or `loop-cache`.
    pub flavor: String,
    /// I-cache size in bytes.
    pub cache_size: u32,
    /// I-cache replacement policy (e.g. `Lru`, `Random(7)`).
    pub policy: String,
    /// SPM size or loop-cache capacity in bytes.
    pub local_size: u32,
    /// Total instruction-memory energy, µJ.
    pub energy_uj: f64,
    /// Scratchpad accesses in the final simulation.
    pub spm_accesses: u64,
    /// Loop-cache accesses in the final simulation.
    pub loop_cache_accesses: u64,
    /// I-cache accesses in the final simulation.
    pub cache_accesses: u64,
    /// I-cache misses in the final simulation.
    pub cache_misses: u64,
    /// Branch-and-bound nodes the allocator explored. `None` for
    /// flows without a tree search (Steinke's knapsack, the greedy
    /// heuristic, the cache-only baseline, and the loop cache) —
    /// previously these reported a misleading `0`.
    pub solver_nodes: Option<u64>,
    /// Allocation proof status (`"optimal"`, `"feasible"`,
    /// `"fallback"`); loop-cache cells report `"optimal"` in the
    /// completion sense of the preload heuristic.
    pub status: String,
    /// Proven absolute optimality gap in energy units: `Some(0.0)`
    /// for optimal cells, `Some(g)` for budget-truncated ones, `None`
    /// when a fallback allocator answered (no bound is claimed).
    pub gap: Option<f64>,
    /// Which budget dimension stopped the allocator (`"nodes"`,
    /// `"deadline"`, `"cancelled"`), if any.
    pub budget_kind: Option<String>,
    /// Whether the cell's budget had a wall-clock dimension (deadline
    /// or cancel token). When true, [`SweepReport::deterministic_json`]
    /// redacts `status`/`gap`/`budget_kind`/`solver_nodes` — where the
    /// clock stops the search is not reproducible byte-for-byte.
    pub wall_clock_budget: bool,
    /// Allocator wall time, seconds.
    pub solver_secs: f64,
    /// Whole-cell wall time (flow including simulation), seconds.
    pub cell_secs: f64,
    /// Per-cell metric snapshot (counters/gauges/histograms from the
    /// instrumented flow). Empty when observability is off; reported
    /// by [`SweepReport::to_json`] only, never by
    /// [`SweepReport::deterministic_json`].
    pub metrics: MetricsSnapshot,
    /// Per-cell logical-tick time-series (flow phase progress, solver
    /// convergence). Empty when observability is off. Exported by
    /// [`SweepReport::timeseries_json`] after a grid-order merge;
    /// never part of [`CellResult::json`] in either view.
    pub timeseries: TimeSeriesSnapshot,
    /// The cell's B&B search-tree log as a `casa_tree` JSON document,
    /// when tree capture is on ([`SweepGrid::set_capture_trees`]) and
    /// the cell's allocator actually runs a tree search. Exported by
    /// [`SweepReport::tree_json`]; never part of [`CellResult::json`].
    pub tree: Option<String>,
    /// The cell's decision-provenance document as a `casa_explain`
    /// JSON document, when explain capture is on
    /// ([`SweepGrid::set_capture_explain`]) and the cell is a
    /// scratchpad cell. Exported by [`SweepReport::explain_json`];
    /// never part of [`CellResult::json`] in either view.
    pub explain: Option<String>,
}

/// Aggregated wall time of one span name across the whole sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseRollup {
    /// Span name (`trace`, `conflict`, `solve`, `simulate`, ...).
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed duration, microseconds.
    pub total_us: u64,
}

/// Preparation record for one distinct workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPrep {
    /// The workload.
    pub key: WorkloadKey,
    /// Compile + profiling-walk wall time, seconds.
    pub prepare_secs: f64,
}

/// Everything one sweep run produces, in grid order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Worker threads used.
    pub threads: usize,
    /// Wall time of the (parallel) preparation phase, seconds.
    pub prepare_secs: f64,
    /// Wall time of the (parallel) cell-execution phase, seconds.
    pub execute_secs: f64,
    /// Total sweep wall time, seconds.
    pub total_secs: f64,
    /// Distinct workloads prepared, in first-reference order.
    pub workloads: Vec<WorkloadPrep>,
    /// Cell results, in grid order regardless of execution order.
    pub cells: Vec<CellResult>,
    /// Merge of every cell's metric snapshot, in grid order (counters
    /// and histograms sum; gauges keep the last cell's value). Empty
    /// when observability is off.
    pub metrics: MetricsSnapshot,
    /// Per-phase span rollups across the whole sweep. Empty when
    /// observability is off.
    pub phases: Vec<PhaseRollup>,
    /// Grid-order merge of every cell's time-series, prefixed by the
    /// sweep's own `sweep.energy_uj` / `sweep.cache_misses` series
    /// sampled at the cell's grid index. Built the same way for every
    /// worker count, so [`SweepReport::timeseries_json`] is
    /// byte-identical across `CASA_SWEEP_THREADS` values.
    pub timeseries: TimeSeriesSnapshot,
}

/// Resolve the sweep worker count: `CASA_SWEEP_THREADS` when set and
/// parseable (clamped to ≥ 1), else the machine's available
/// parallelism.
pub fn sweep_threads() -> usize {
    std::env::var("CASA_SWEEP_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

fn spec_by_name(name: &str) -> BenchmarkSpec {
    mediabench::all()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

impl SweepGrid {
    /// An empty grid.
    pub fn new() -> Self {
        SweepGrid::default()
    }

    /// Intern a workload, returning its index; identical keys share
    /// one preparation.
    pub fn workload(&mut self, benchmark: &str, scale: u64, seed: u64) -> usize {
        let key = WorkloadKey {
            benchmark: benchmark.to_string(),
            scale,
            seed,
        };
        if let Some(i) = self.workloads.iter().position(|k| *k == key) {
            return i;
        }
        self.workloads.push(key);
        self.workloads.len() - 1
    }

    /// Add a scratchpad-flow cell.
    pub fn push_spm(&mut self, workload: usize, config: FlowConfig) {
        assert!(
            workload < self.workloads.len(),
            "workload index out of range"
        );
        self.cells.push(SweepCell {
            workload,
            kind: CellKind::Spm(config),
        });
    }

    /// Add a loop-cache-flow cell.
    pub fn push_loop_cache(&mut self, workload: usize, cache: CacheConfig, capacity: u32) {
        assert!(
            workload < self.workloads.len(),
            "workload index out of range"
        );
        self.cells.push(SweepCell {
            workload,
            kind: CellKind::LoopCache { cache, capacity },
        });
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of distinct workloads.
    pub fn workload_count(&self) -> usize {
        self.workloads.len()
    }

    /// Set the per-cell solver budget (applied to every cell's
    /// allocator; unlimited by default).
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The per-cell solver budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Capture every scratchpad cell's solve as a `.casa-session` file
    /// (plus a `.report.json` sibling holding the canonical response)
    /// under `dir`. Capture is an output channel, not a configuration
    /// of *what* is computed, so it does not enter [`Self::fingerprint`].
    pub fn set_session_dir(&mut self, dir: impl Into<PathBuf>) {
        self.session_dir = Some(dir.into());
    }

    /// Capture each tree-searching scratchpad cell's B&B search tree
    /// as a `casa_tree` log ([`CellResult::tree`], exported by
    /// [`SweepReport::tree_json`]). The event cap comes from
    /// `CASA_TREE_CAP`. Like session capture, this is an output
    /// channel: it changes no allocation decision and does not enter
    /// [`Self::fingerprint`].
    pub fn set_capture_trees(&mut self, on: bool) {
        self.capture_trees = on;
    }

    /// Capture each scratchpad cell's decision provenance as a
    /// `casa_explain` document ([`CellResult::explain`], exported by
    /// [`SweepReport::explain_json`]). Like session and tree capture,
    /// this is an output channel: it changes no allocation decision
    /// and does not enter [`Self::fingerprint`].
    pub fn set_capture_explain(&mut self, on: bool) {
        self.capture_explain = on;
    }

    /// A stable fingerprint of the grid's *configuration* — workloads,
    /// cells, budget — as a 16-hex-digit FNV-1a hash. Two runs are
    /// longitudinally comparable (same energies, same node counts)
    /// exactly when their fingerprints match, so the run-history store
    /// stamps every record with it and the regression sentinel only
    /// diffs runs of the same grid.
    pub fn fingerprint(&self) -> String {
        let mut canon = String::new();
        for w in &self.workloads {
            let _ = write!(canon, "w:{}:{}:{};", w.benchmark, w.scale, w.seed);
        }
        for c in &self.cells {
            match &c.kind {
                CellKind::Spm(cfg) => {
                    let _ = write!(
                        canon,
                        "spm:{}:{:?}:{:?}:{}:{:?}:{:?};",
                        c.workload, cfg.allocator, cfg.cache, cfg.spm_size, cfg.trace_cap, cfg.tech
                    );
                }
                CellKind::LoopCache { cache, capacity } => {
                    let _ = write!(canon, "lc:{}:{cache:?}:{capacity};", c.workload);
                }
            }
        }
        let _ = write!(canon, "budget:{:?}", self.budget);
        let mut h = casa_obs::Fnv1a::new();
        h.update(canon.as_bytes());
        h.hex()
    }

    /// The canonical Table-1 sweep: every paper benchmark × four
    /// local-memory sizes × {SP(CASA), SP(Steinke), LC(Ross)} at the
    /// paper's per-benchmark cache size (adpcm's paper row set is
    /// extended with a fourth size, 512 B, so every benchmark sweeps
    /// four sizes).
    pub fn table1_paper(scale: u64, seed: u64) -> SweepGrid {
        let mut g = SweepGrid::new();
        for benchmark in ["adpcm", "g721", "mpeg"] {
            let (cache_size, mut sizes) = paper_sizes(benchmark);
            if benchmark == "adpcm" {
                sizes.push(512);
            }
            let w = g.workload(benchmark, scale, seed);
            let cache = CacheConfig::direct_mapped(cache_size, LINE_SIZE);
            for &size in &sizes {
                for alloc in [AllocatorKind::CasaBb, AllocatorKind::Steinke] {
                    g.push_spm(
                        w,
                        FlowConfig {
                            cache,
                            spm_size: size,
                            allocator: alloc,
                            tech: TechParams::default(),
                            trace_cap: None,
                        },
                    );
                }
                g.push_loop_cache(w, cache, size);
            }
        }
        g
    }

    /// The smallest useful grid: adpcm at its paper cache size with
    /// one CASA cell, one Steinke cell and one loop-cache cell. Used
    /// by CI smoke runs (`sweep --smoke`).
    pub fn smoke(scale: u64, seed: u64) -> SweepGrid {
        let mut g = SweepGrid::new();
        let (cache_size, sizes) = paper_sizes("adpcm");
        let w = g.workload("adpcm", scale, seed);
        let cache = CacheConfig::direct_mapped(cache_size, LINE_SIZE);
        let size = sizes[0];
        for alloc in [AllocatorKind::CasaBb, AllocatorKind::Steinke] {
            g.push_spm(
                w,
                FlowConfig {
                    cache,
                    spm_size: size,
                    allocator: alloc,
                    tech: TechParams::default(),
                    trace_cap: None,
                },
            );
        }
        g.push_loop_cache(w, cache, size);
        g
    }

    /// Run the sweep with [`sweep_threads`] workers.
    pub fn run(&self) -> SweepReport {
        self.run_with_threads(sweep_threads())
    }

    /// Run the sweep with exactly `threads` workers (clamped to ≥ 1).
    ///
    /// The report's non-timing content is byte-identical for every
    /// `threads` value.
    ///
    /// # Panics
    ///
    /// Panics if any cell's flow fails — sweeps are experiment
    /// drivers and want loud failures, like [`prepared`].
    pub fn run_with_threads(&self, threads: usize) -> SweepReport {
        self.run_with_threads_obs(threads, &Obs::disabled())
    }

    /// [`Self::run_with_threads`] with observability. When `obs` is
    /// enabled, every cell runs with a **fresh registry sharing
    /// `obs`'s trace collector**: spans from all cells land in one
    /// timeline (grouped under per-cell `cell` spans) while each
    /// cell's counters stay isolated in its own [`CellResult::metrics`]
    /// snapshot, so the metric values are independent of which worker
    /// ran what. [`SweepReport::deterministic_json`] is byte-identical
    /// with observability on or off, for any worker count.
    ///
    /// # Panics
    ///
    /// Same as [`Self::run_with_threads`].
    pub fn run_with_threads_obs(&self, threads: usize, obs: &Obs) -> SweepReport {
        let threads = threads.max(1);
        let t_total = Instant::now();
        if let Some(dir) = &self.session_dir {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("session dir {}: {e}", dir.display()));
        }

        // Phase 1: prepare each distinct workload once, in parallel.
        let t_prep = Instant::now();
        let prep_slots: Vec<Mutex<Option<(PreparedWorkload, f64)>>> =
            self.workloads.iter().map(|_| Mutex::new(None)).collect();
        {
            let next = AtomicUsize::new(0);
            let slots = &prep_slots;
            let workloads = &self.workloads;
            let next = &next;
            std::thread::scope(|s| {
                for _ in 0..threads.min(workloads.len().max(1)) {
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= workloads.len() {
                            break;
                        }
                        let k = &workloads[i];
                        let t = Instant::now();
                        obs.heartbeat("prepare");
                        let span = obs.span_with(
                            "prepare",
                            vec![("benchmark".into(), ArgValue::Str(k.benchmark.clone()))],
                        );
                        let w = prepared(spec_by_name(&k.benchmark), k.scale, k.seed);
                        drop(span);
                        *slots[i].lock().unwrap() = Some((w, t.elapsed().as_secs_f64()));
                    });
                }
            });
        }
        obs.heartbeat_done("prepare");
        let prepared_workloads: Vec<(PreparedWorkload, f64)> = prep_slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("workload prepared"))
            .collect();
        let prepare_secs = t_prep.elapsed().as_secs_f64();

        // Phase 2: execute cells on the pool; results land in their
        // own slots so aggregation order is the grid's, not the
        // scheduler's. Progress is published live for the telemetry
        // exporter: `sweep.cells_total` up front, `sweep.cells_done`
        // as cells finish, plus per-phase heartbeats for the watchdog.
        // None of this touches the per-cell registries the report is
        // built from, so determinism is unaffected.
        obs.gauge_set("sweep.cells_total", self.cells.len() as f64);
        let t_exec = Instant::now();
        let cell_slots: Vec<Mutex<Option<CellResult>>> =
            self.cells.iter().map(|_| Mutex::new(None)).collect();
        {
            let next = AtomicUsize::new(0);
            let next = &next;
            let slots = &cell_slots;
            let prepared_workloads = &prepared_workloads;
            std::thread::scope(|s| {
                for _ in 0..threads.min(self.cells.len().max(1)) {
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= self.cells.len() {
                            break;
                        }
                        let cell = &self.cells[i];
                        let w = &prepared_workloads[cell.workload].0;
                        let key = &self.workloads[cell.workload];
                        obs.heartbeat("execute");
                        // Fresh registry per cell, shared timeline and
                        // shared flight ring: counters stay per-cell
                        // deterministic while spans interleave into
                        // one Chrome trace and the flight recorder
                        // keeps one post-mortem buffer for the run.
                        let cell_obs = obs.child();
                        let res = run_cell(
                            key,
                            w,
                            &cell.kind,
                            &self.budget,
                            self.session_dir.as_deref(),
                            self.capture_trees,
                            self.capture_explain,
                            &cell_obs,
                        );
                        // Live view only: the latest finished cell's
                        // explain doc behind `/explain.json` (the
                        // report's explain export is rebuilt in grid
                        // order below, so scheduler order never shows
                        // through there).
                        if let Some(doc) = &res.explain {
                            obs.publish_doc("explain", doc.clone());
                        }
                        // Publish the finished cell's isolated metrics
                        // to the parent registry so a live `/metrics`
                        // scrape sees per-phase counters and energy
                        // gauges mid-sweep. Merge order is
                        // scheduler-dependent, which is fine: the
                        // report's metrics are rebuilt from the cell
                        // snapshots in grid order below.
                        obs.merge_metrics(&res.metrics);
                        obs.merge_timeseries(&res.timeseries);
                        obs.add("sweep.cells_done", 1);
                        *slots[i].lock().unwrap() = Some(res);
                    });
                }
            });
        }
        obs.heartbeat_done("execute");
        let execute_secs = t_exec.elapsed().as_secs_f64();

        let cells: Vec<CellResult> = cell_slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("cell executed"))
            .collect();
        let workloads = self
            .workloads
            .iter()
            .zip(&prepared_workloads)
            .map(|(key, (_, secs))| WorkloadPrep {
                key: key.clone(),
                prepare_secs: *secs,
            })
            .collect();
        // Per-phase rollup and the merged metric view, both in
        // deterministic order (span names sorted; cells in grid
        // order).
        let mut metrics = MetricsSnapshot::new();
        for c in &cells {
            merge_snapshot(&mut metrics, &c.metrics);
        }
        // Sweep-level time-series: one point per cell at its grid
        // index (a logical tick), then each cell's own series appended
        // in grid order — execution order never shows through.
        let ts = TimeSeriesStore::from_env();
        for (i, c) in cells.iter().enumerate() {
            ts.sample("sweep.energy_uj", i as u64, c.energy_uj);
            #[allow(clippy::cast_precision_loss)]
            ts.sample("sweep.cache_misses", i as u64, c.cache_misses as f64);
            ts.merge(&c.timeseries);
        }
        let timeseries = ts.snapshot();
        let phases = if obs.is_enabled() {
            let mut agg: std::collections::BTreeMap<String, (u64, u64)> =
                std::collections::BTreeMap::new();
            for e in obs.events() {
                if e.kind == EventKind::Span {
                    let slot = agg.entry(e.name).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += e.dur_us.unwrap_or(0);
                }
            }
            agg.into_iter()
                .map(|(name, (count, total_us))| PhaseRollup {
                    name,
                    count,
                    total_us,
                })
                .collect()
        } else {
            Vec::new()
        };

        SweepReport {
            threads,
            prepare_secs,
            execute_secs,
            total_secs: t_total.elapsed().as_secs_f64(),
            workloads,
            cells,
            metrics,
            phases,
            timeseries,
        }
    }
}

/// Whether this cell's allocator explores a branch-and-bound tree
/// (and therefore has a search tree worth capturing and a node count
/// worth reporting).
fn has_tree_search(kind: &CellKind) -> bool {
    match kind {
        CellKind::Spm(config) => matches!(
            config.allocator,
            AllocatorKind::CasaBb | AllocatorKind::CasaIlpPaper | AllocatorKind::CasaIlpTight
        ),
        CellKind::LoopCache { .. } => false,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    key: &WorkloadKey,
    w: &PreparedWorkload,
    kind: &CellKind,
    budget: &Budget,
    session_dir: Option<&Path>,
    capture_trees: bool,
    capture_explain: bool,
    obs: &Obs,
) -> CellResult {
    let t = Instant::now();
    let (flavor, local_size) = match kind {
        CellKind::Spm(config) => (format!("spm:{:?}", config.allocator), config.spm_size),
        CellKind::LoopCache { capacity, .. } => ("loop-cache".to_string(), *capacity),
    };
    let span = obs.span_with(
        "cell",
        vec![
            ("benchmark".into(), ArgValue::Str(key.benchmark.clone())),
            ("flavor".into(), ArgValue::Str(flavor.clone())),
            ("local_size".into(), ArgValue::U64(u64::from(local_size))),
        ],
    );
    // Sessions only make sense for scratchpad cells — the loop-cache
    // flow has no allocation solve to record.
    let recorder = match (session_dir, kind) {
        (Some(_), CellKind::Spm(_)) => SessionRecorder::enabled(),
        _ => SessionRecorder::disabled(),
    };
    // Tree capture only attaches where a tree search will run; the
    // recorder's presence changes no allocation decision.
    let tree = if capture_trees && has_tree_search(kind) {
        TreeRecorder::from_env()
    } else {
        TreeRecorder::disabled()
    };
    // Explain applies to every scratchpad cell: exact allocators get
    // LP provenance, heuristics a density/regret account.
    let explain = if capture_explain && matches!(kind, CellKind::Spm(_)) {
        ExplainRecorder::enabled()
    } else {
        ExplainRecorder::disabled()
    };
    let ctx = FlowCtx::observed(obs)
        .with_budget(budget.clone())
        .with_session(&recorder)
        .with_tree(&tree)
        .with_explain(&explain);
    let (report, cache) = match kind {
        CellKind::Spm(config) => {
            let r = run_spm_flow(&w.program, &w.profile, &w.exec, config, &ctx)
                .unwrap_or_else(|e| panic!("{} spm cell failed: {e}", w.name));
            (r, config.cache)
        }
        CellKind::LoopCache { cache, capacity } => {
            let lc = LoopCacheConfig::new(*cache, *capacity, LOOP_CACHE_SLOTS);
            let r = run_loop_cache_flow(&w.program, &w.profile, &w.exec, &lc, &ctx)
                .unwrap_or_else(|e| panic!("{} loop-cache cell failed: {e}", w.name));
            (r, *cache)
        }
    };
    drop(span);
    if let (Some(dir), CellKind::Spm(config)) = (session_dir, kind) {
        write_cell_session(dir, key, &flavor, config, budget, &report, &recorder);
    }
    // B&B/ILP flows have a real node count; knapsack, greedy, the
    // baseline and the loop cache have no tree search to report.
    let solver_nodes = if has_tree_search(kind) {
        Some(report.allocation.solver_nodes)
    } else {
        None
    };
    let stats = &report.final_sim.stats;
    CellResult {
        benchmark: key.benchmark.clone(),
        scale: key.scale,
        seed: key.seed,
        flavor,
        cache_size: cache.size,
        policy: format!("{:?}", cache.policy),
        local_size,
        energy_uj: report.energy_uj(),
        spm_accesses: stats.spm_accesses,
        loop_cache_accesses: stats.loop_cache_accesses,
        cache_accesses: stats.cache_accesses,
        cache_misses: stats.cache_misses,
        solver_nodes,
        status: report.alloc_status.as_str().to_string(),
        gap: report.alloc_status.gap(),
        budget_kind: report.stopped_by.map(|k| k.as_str().to_string()),
        wall_clock_budget: budget.has_wall_clock(),
        solver_secs: report.solver_time.as_secs_f64(),
        cell_secs: t.elapsed().as_secs_f64(),
        metrics: obs.snapshot(),
        timeseries: obs.timeseries_snapshot(),
        tree: tree.take().map(|log| tree_log_json(&log)),
        explain: explain.take().map(|doc| explain_json(&doc)),
    }
}

/// Filesystem-safe stem naming one cell: `<benchmark>-<flavor>-<size>`
/// with anything outside `[A-Za-z0-9._-]` replaced by `_`. Shared by
/// session capture and the tree export so artifacts of one cell
/// correlate by name.
fn cell_stem(benchmark: &str, flavor: &str, local_size: u32) -> String {
    format!("{benchmark}-{flavor}-{local_size}")
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Persist one scratchpad cell's solve as `<stem>.casa-session` plus a
/// `<stem>.report.json` sibling holding the canonical response bytes,
/// where the stem is `<benchmark>-<flavor>-<size>` (flavor sanitized
/// for filesystems). Reruns of the same grid rewrite identical bytes,
/// so the serial/parallel double-run in the sweep binary is safe.
///
/// # Panics
///
/// Panics on I/O failure, like the rest of the sweep driver.
fn write_cell_session(
    dir: &Path,
    key: &WorkloadKey,
    flavor: &str,
    config: &FlowConfig,
    budget: &Budget,
    report: &casa_core::flow::FlowReport,
    recorder: &SessionRecorder,
) {
    let job = SolveJob {
        graph: report.conflict_graph.clone(),
        table: report.energy_table,
        capacity: config.spm_size,
        allocator: config.allocator,
        budget_nodes: budget.max_nodes,
        budget_ms: budget.deadline.map(|d| d.as_millis() as u64),
        explain: false,
    };
    let out = AllocOutcome {
        allocation: report.allocation.clone(),
        status: report.alloc_status.clone(),
        stopped_by: report.stopped_by,
    };
    let model = EnergyModel::new(&job.graph, &job.table);
    let session = Session::capture(
        &job,
        &out,
        &model,
        recorder.take().expect("cell recorder enabled"),
        vec![
            ("source".to_string(), "sweep".to_string()),
            ("benchmark".to_string(), key.benchmark.clone()),
            ("scale".to_string(), key.scale.to_string()),
            ("seed".to_string(), key.seed.to_string()),
        ],
    );
    let stem = cell_stem(&key.benchmark, flavor, config.spm_size);
    let path = dir.join(format!("{stem}.casa-session"));
    session
        .save(&path)
        .unwrap_or_else(|e| panic!("write session {}: {e}", path.display()));
    let sibling = dir.join(format!("{stem}.report.json"));
    std::fs::write(&sibling, session.report.as_bytes())
        .unwrap_or_else(|e| panic!("write report {}: {e}", sibling.display()));
}

// ---- JSON rendering -------------------------------------------------
//
// Hand-rolled: the vendored serde stand-in only provides the derive
// surface, not a serializer, and the determinism contract needs full
// control over field order anyway. `{}` on f64 prints the shortest
// round-trip form, which is itself deterministic.

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl CellResult {
    fn json(&self, with_timings: bool) -> String {
        let mut s = format!(
            "{{\"benchmark\":\"{}\",\"scale\":{},\"seed\":{},\"flavor\":\"{}\",\
             \"cache_size\":{},\"policy\":\"{}\",\"local_size\":{},\
             \"energy_uj\":{},\"spm_accesses\":{},\"loop_cache_accesses\":{},\
             \"cache_accesses\":{},\"cache_misses\":{}",
            json_escape(&self.benchmark),
            self.scale,
            self.seed,
            json_escape(&self.flavor),
            self.cache_size,
            json_escape(&self.policy),
            self.local_size,
            jnum(self.energy_uj),
            self.spm_accesses,
            self.loop_cache_accesses,
            self.cache_accesses,
            self.cache_misses,
        );
        // Under a wall-clock budget, where the search stops (and thus
        // the node count, status and gap) depends on machine speed —
        // those fields are real results but not reproducible bytes, so
        // the deterministic view redacts them.
        if with_timings || !self.wall_clock_budget {
            let _ = write!(
                s,
                ",\"solver_nodes\":{},\"status\":\"{}\",\"gap\":{},\"budget_kind\":{}",
                self.solver_nodes
                    .map_or_else(|| "null".to_string(), |n| n.to_string()),
                json_escape(&self.status),
                self.gap.map_or_else(|| "null".to_string(), jnum),
                self.budget_kind
                    .as_ref()
                    .map_or_else(|| "null".to_string(), |k| format!("\"{}\"", json_escape(k))),
            );
        }
        if with_timings {
            let _ = write!(
                s,
                ",\"solver_secs\":{},\"cell_secs\":{}",
                jnum(self.solver_secs),
                jnum(self.cell_secs)
            );
            if !self.metrics.is_empty() {
                let _ = write!(s, ",\"metrics\":{}", snapshot_to_json(&self.metrics));
            }
        }
        s.push('}');
        s
    }
}

impl SweepReport {
    /// JSON of the sweep's *results only* — no thread count, no
    /// wall-clock — so any two runs of the same grid produce the same
    /// bytes regardless of worker count.
    pub fn deterministic_json(&self) -> String {
        let cells: Vec<String> = self.cells.iter().map(|c| c.json(false)).collect();
        format!("{{\"cells\":[{}]}}", cells.join(","))
    }

    /// The sweep's merged logical-tick time-series as a deterministic
    /// `casa_timeseries` JSON document (what `sweep --ts-out` writes).
    /// Byte-identical across worker counts: the merge walks cells in
    /// grid order.
    pub fn timeseries_json(&self) -> String {
        timeseries_json(&self.timeseries)
    }

    /// Every captured search tree as one deterministic JSON document:
    /// `{"casa_tree_sweep":1,"cells":[{"key":...,"tree":...},...]}` in
    /// grid order, listing only cells that captured a tree (what
    /// `sweep --tree-out` writes). The `key` is the cell's
    /// [`cell_stem`], the same stem session capture uses, and `tree`
    /// is the cell's embedded `casa_tree` document.
    pub fn tree_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .filter_map(|c| {
                let tree = c.tree.as_ref()?;
                let key = cell_stem(&c.benchmark, &c.flavor, c.local_size);
                Some(format!(
                    "{{\"key\":\"{}\",\"tree\":{tree}}}",
                    json_escape(&key)
                ))
            })
            .collect();
        format!("{{\"casa_tree_sweep\":1,\"cells\":[{}]}}", cells.join(","))
    }

    /// Every captured explain document as one deterministic JSON
    /// document: `{"casa_explain_sweep":1,"cells":[{"key":...,
    /// "explain":...},...]}` in grid order, listing only cells that
    /// captured one (what `sweep --explain-out` writes). The `key` is
    /// the cell's [`cell_stem`], the same stem session and tree capture
    /// use, and `explain` is the cell's embedded `casa_explain`
    /// document.
    pub fn explain_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .filter_map(|c| {
                let explain = c.explain.as_ref()?;
                let key = cell_stem(&c.benchmark, &c.flavor, c.local_size);
                Some(format!(
                    "{{\"key\":\"{}\",\"explain\":{explain}}}",
                    json_escape(&key)
                ))
            })
            .collect();
        format!(
            "{{\"casa_explain_sweep\":1,\"cells\":[{}]}}",
            cells.join(",")
        )
    }

    /// Full JSON including thread count and per-phase / per-cell wall
    /// clock (what `BENCH_sweep.json` stores).
    pub fn to_json(&self) -> String {
        let workloads: Vec<String> = self
            .workloads
            .iter()
            .map(|p| {
                format!(
                    "{{\"benchmark\":\"{}\",\"scale\":{},\"seed\":{},\"prepare_secs\":{}}}",
                    json_escape(&p.key.benchmark),
                    p.key.scale,
                    p.key.seed,
                    jnum(p.prepare_secs)
                )
            })
            .collect();
        let cells: Vec<String> = self.cells.iter().map(|c| c.json(true)).collect();
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"total_us\":{}}}",
                    json_escape(&p.name),
                    p.count,
                    p.total_us
                )
            })
            .collect();
        format!(
            "{{\"threads\":{},\"prepare_secs\":{},\"execute_secs\":{},\"total_secs\":{},\
             \"workloads\":[{}],\"cells\":[{}],\"metrics\":{},\"phases\":[{}]}}",
            self.threads,
            jnum(self.prepare_secs),
            jnum(self.execute_secs),
            jnum(self.total_secs),
            workloads.join(","),
            cells.join(","),
            snapshot_to_json(&self.metrics),
            phases.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_mem::ReplacementPolicy;

    fn small_grid() -> SweepGrid {
        // adpcm only (test speed), but exercising both flow kinds,
        // two allocators, and a seeded-Random replacement policy.
        let mut g = SweepGrid::new();
        let w = g.workload("adpcm", 1, 2004);
        let cache = CacheConfig::direct_mapped(128, LINE_SIZE);
        for &spm in &[64u32, 128] {
            for alloc in [AllocatorKind::CasaBb, AllocatorKind::Steinke] {
                g.push_spm(
                    w,
                    FlowConfig {
                        cache,
                        spm_size: spm,
                        allocator: alloc,
                        tech: TechParams::default(),
                        trace_cap: None,
                    },
                );
            }
        }
        g.push_loop_cache(w, cache, 128);
        // Random replacement with a pinned seed must stay bitwise
        // reproducible across worker counts.
        g.push_spm(
            w,
            FlowConfig {
                cache: CacheConfig {
                    size: 128,
                    line_size: LINE_SIZE,
                    associativity: 2,
                    policy: ReplacementPolicy::Random(7),
                },
                spm_size: 128,
                allocator: AllocatorKind::CasaBb,
                tech: TechParams::default(),
                trace_cap: None,
            },
        );
        g
    }

    #[test]
    fn workloads_are_interned() {
        let mut g = SweepGrid::new();
        let a = g.workload("adpcm", 1, 2004);
        let b = g.workload("adpcm", 1, 2004);
        let c = g.workload("adpcm", 2, 2004);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(g.workload_count(), 2);
    }

    #[test]
    fn table1_grid_shape() {
        let g = SweepGrid::table1_paper(1, 2004);
        assert_eq!(g.workload_count(), 3);
        // 3 benchmarks × 4 sizes × (2 SPM allocators + 1 loop cache).
        assert_eq!(g.cell_count(), 3 * 4 * 3);
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let g = small_grid();
        let r1 = g.run_with_threads(1);
        let r2 = g.run_with_threads(2);
        let r4 = g.run_with_threads(4);
        assert_eq!(r1.cells.len(), g.cell_count());
        // Bytes, not approximations: grid-order aggregation plus
        // per-cell isolation make the reports identical.
        assert_eq!(r1.deterministic_json(), r2.deterministic_json());
        assert_eq!(r1.deterministic_json(), r4.deterministic_json());
        assert_eq!(r2.threads, 2);
        // Sanity on content: every cell produced a live simulation.
        for c in &r1.cells {
            assert!(c.energy_uj > 0.0, "cell {c:?}");
            assert!(c.cache_accesses + c.spm_accesses + c.loop_cache_accesses > 0);
        }
        // The seeded-Random cell really ran with its policy.
        assert!(r1.cells.iter().any(|c| c.policy == "Random(7)"));
        // B&B cells record solver activity; Steinke's knapsack and
        // the loop-cache flow have no tree search to report.
        assert!(r1
            .cells
            .iter()
            .any(|c| c.flavor == "spm:CasaBb" && c.solver_nodes.is_some_and(|n| n > 0)));
        for c in &r1.cells {
            if c.flavor == "spm:Steinke" || c.flavor == "loop-cache" {
                assert_eq!(c.solver_nodes, None, "no search in {c:?}");
            }
        }
    }

    #[test]
    fn observed_sweep_is_deterministic_and_matches_uninstrumented() {
        let g = small_grid();
        let plain = g.run_with_threads(2);
        let reports: Vec<SweepReport> = [1usize, 2, 4]
            .iter()
            .map(|&t| g.run_with_threads_obs(t, &Obs::enabled()))
            .collect();
        // Byte-identical across worker counts AND against the
        // uninstrumented run: metrics and spans are quarantined away
        // from deterministic_json.
        for r in &reports {
            assert_eq!(plain.deterministic_json(), r.deterministic_json());
        }
        // The metric values themselves are also worker-count
        // independent (per-cell registries, grid-order merge).
        for r in &reports[1..] {
            assert_eq!(reports[0].metrics, r.metrics);
            for (a, b) in reports[0].cells.iter().zip(&r.cells) {
                assert_eq!(a.metrics, b.metrics);
            }
        }
        // Rollups cover the whole fig. 3 pipeline for every cell.
        let r = &reports[0];
        assert!(!r.metrics.is_empty());
        let phase = |name: &str| r.phases.iter().find(|p| p.name == name);
        for name in ["cell", "trace", "conflict", "solve", "simulate"] {
            let p = phase(name).unwrap_or_else(|| panic!("missing phase {name}"));
            assert_eq!(p.count, g.cell_count() as u64, "phase {name}");
        }
        assert_eq!(phase("prepare").unwrap().count, 1);
        // The full JSON carries the metrics section; histogram keys in
        // it are sorted (BTreeMap order).
        let full = r.to_json();
        assert!(full.contains("\"metrics\":{\""));
        assert!(full.contains("\"phases\":[{\"name\":\"cell\""));
        let plain_full = plain.to_json();
        assert!(plain_full.contains("\"metrics\":{}"));
        assert!(plain_full.contains("\"phases\":[]"));
    }

    #[test]
    fn flight_recorder_does_not_leak_into_deterministic_json() {
        // Satellite guard for the PR-4 flight recorder: CellResult's
        // wall-clock fields and the flight ring are both quarantined
        // away from deterministic_json, so turning the recorder on
        // (via an enabled Obs) must not change a single byte, for any
        // worker count.
        let g = small_grid();
        let plain = g.run_with_threads(2).deterministic_json();
        for threads in [1usize, 2, 4] {
            let obs = Obs::enabled();
            let r = g.run_with_threads_obs(threads, &obs);
            assert_eq!(
                plain,
                r.deterministic_json(),
                "flight-enabled sweep must be byte-identical ({threads} workers)"
            );
            // The recorder really was live: cells mirrored events into
            // the shared ring.
            assert!(
                !obs.flight_events().is_empty(),
                "flight ring empty with {threads} workers"
            );
            assert!(obs
                .flight_events()
                .iter()
                .any(|e| e.kind == casa_obs::FlightKind::Span && e.name == "cell"));
        }
    }

    #[test]
    fn served_sweep_stays_byte_identical_and_exposes_live_telemetry() {
        use casa_obs::{collect_sse, http_get, validate_exposition};
        use std::time::Duration;
        let g = small_grid();
        let plain = g.run_with_threads(2).deterministic_json();
        let t = Duration::from_secs(5);
        for threads in [1usize, 2, 4] {
            let obs = Obs::enabled();
            let mut server = obs.serve("127.0.0.1:0").expect("bind");
            let r = g.run_with_threads_obs(threads, &obs);
            // The acceptance bar: serving telemetry must not move a
            // single byte of the deterministic report, for any worker
            // count.
            assert_eq!(
                plain,
                r.deterministic_json(),
                "served sweep diverged with {threads} workers"
            );
            let addr = server.local_addr();
            let (st, metrics) = http_get(&addr, "/metrics", t).unwrap();
            assert_eq!(st, 200);
            let stats =
                validate_exposition(&metrics).unwrap_or_else(|e| panic!("invalid exposition: {e}"));
            assert!(stats.families > 5, "rich exposition, got {stats:?}");
            // Progress counters published by the pool...
            assert!(metrics.contains(&format!("casa_sweep_cells_done {}", g.cell_count())));
            assert!(metrics.contains(&format!("casa_sweep_cells_total {}", g.cell_count())));
            // ...heartbeat gauges...
            assert!(metrics.contains("casa_heartbeat_us_execute"));
            // ...per-cell flow metrics merged up: per-phase counters,
            // energy gauges, histogram quantiles.
            assert!(metrics.contains("# TYPE casa_solver_nodes counter"));
            assert!(metrics.contains("# TYPE casa_energy_total_uj gauge"));
            assert!(metrics.contains("quantile=\"0.99\""));
            // The event stream replays the sweep's phase spans to a
            // late subscriber (CI probes connect whenever they can).
            let (frames, _) = collect_sse(&addr, "/events", t, 24).unwrap();
            let named = |name: &str| {
                frames
                    .iter()
                    .any(|(_, d)| d.contains(&format!("\"name\":\"{name}\"")))
            };
            assert!(named("prepare"), "prepare span streamed");
            assert!(named("cell"), "cell span streamed");
            assert!(
                frames.iter().any(|(e, _)| e == "span_end"),
                "span_end frames present"
            );
            server.shutdown();
        }
    }

    #[test]
    fn fingerprint_tracks_grid_configuration() {
        let a = small_grid();
        let b = small_grid();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same grid, same hash");
        assert_eq!(a.fingerprint().len(), 16);
        let mut c = small_grid();
        c.push_loop_cache(0, CacheConfig::direct_mapped(128, LINE_SIZE), 64);
        assert_ne!(a.fingerprint(), c.fingerprint(), "extra cell changes hash");
        let mut d = small_grid();
        d.set_budget(Budget::nodes(1));
        assert_ne!(a.fingerprint(), d.fingerprint(), "budget changes hash");
        let mut e = small_grid();
        e.set_session_dir(std::env::temp_dir());
        assert_eq!(
            a.fingerprint(),
            e.fingerprint(),
            "session capture is an output channel, not configuration"
        );
        let mut f = small_grid();
        f.set_capture_trees(true);
        assert_eq!(
            a.fingerprint(),
            f.fingerprint(),
            "tree capture is an output channel, not configuration"
        );
        // Fingerprints only reflect configuration, not execution.
        let _ = a.run_with_threads(1);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn deterministic_json_excludes_timing_full_json_includes_it() {
        let g = small_grid();
        let r = g.run_with_threads(1);
        let det = r.deterministic_json();
        assert!(!det.contains("secs"));
        assert!(!det.contains("threads"));
        let full = r.to_json();
        assert!(full.contains("\"threads\":1"));
        assert!(full.contains("\"solver_secs\""));
        assert!(full.contains("\"prepare_secs\""));
        // Shared preparation: one workload, many cells.
        assert_eq!(r.workloads.len(), 1);
        assert_eq!(r.cells.len(), 6);
    }

    #[test]
    fn session_capture_writes_replayable_files_for_spm_cells() {
        let dir = std::env::temp_dir().join(format!("casa-sweep-sessions-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut g = SweepGrid::new();
        let w = g.workload("adpcm", 1, 2004);
        let cache = CacheConfig::direct_mapped(128, LINE_SIZE);
        for alloc in [AllocatorKind::CasaBb, AllocatorKind::Steinke] {
            g.push_spm(
                w,
                FlowConfig {
                    cache,
                    spm_size: 128,
                    allocator: alloc,
                    tech: TechParams::default(),
                    trace_cap: None,
                },
            );
        }
        g.push_loop_cache(w, cache, 128);
        g.set_session_dir(&dir);
        let report = g.run_with_threads(1);
        assert_eq!(report.cells.len(), 3);

        let mut sessions: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .expect("session dir exists")
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "casa-session"))
            .collect();
        sessions.sort();
        assert_eq!(
            sessions.len(),
            2,
            "one session per SPM cell, none for loop-cache"
        );
        for path in &sessions {
            let s = casa_core::Session::load(path).expect("session loads");
            let summary = s
                .replay()
                .unwrap_or_else(|e| panic!("{} replay: {e}", path.display()));
            let cell = report
                .cells
                .iter()
                .find(|c| {
                    let stem = format!("{}-{}-{}", c.benchmark, c.flavor.replace(':', "_"), 128);
                    path.file_name().is_some_and(|f| {
                        f.to_string_lossy().as_ref() == format!("{stem}.casa-session")
                    })
                })
                .expect("session maps back to a cell");
            assert_eq!(summary.status, cell.status);
            // The canonical report sibling holds exactly the session's
            // rendered response.
            let bytes =
                std::fs::read(path.with_extension("report.json")).expect("report sibling exists");
            assert_eq!(bytes, s.report.as_bytes());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn env_override_controls_thread_count() {
        // Serialized with other env readers by being the only test
        // that touches CASA_SWEEP_THREADS.
        std::env::set_var("CASA_SWEEP_THREADS", "3");
        assert_eq!(sweep_threads(), 3);
        std::env::set_var("CASA_SWEEP_THREADS", "0");
        assert_eq!(sweep_threads(), 1, "clamped to at least one worker");
        std::env::set_var("CASA_SWEEP_THREADS", "not-a-number");
        let fallback = sweep_threads();
        assert!(fallback >= 1);
        std::env::remove_var("CASA_SWEEP_THREADS");
    }

    #[test]
    fn node_budget_sweep_reports_status_and_stays_deterministic() {
        let mut g = small_grid();
        g.set_budget(Budget::nodes(1));
        let r1 = g.run_with_threads(1);
        let r2 = g.run_with_threads(2);
        let r4 = g.run_with_threads(4);
        // Node budgets are machine-independent: byte-identical across
        // worker counts, status columns included.
        assert_eq!(r1.deterministic_json(), r2.deterministic_json());
        assert_eq!(r1.deterministic_json(), r4.deterministic_json());
        assert!(r1.deterministic_json().contains("\"status\""));
        for c in &r1.cells {
            assert!(!c.status.is_empty(), "{c:?}");
            assert!(!c.wall_clock_budget);
            if c.status != "fallback" {
                let gap = c.gap.expect("non-fallback cells report a gap");
                assert!(gap.is_finite() && gap >= 0.0, "{c:?}");
            }
        }
        // The truncated B&B cells surface which budget dimension
        // stopped them; completion-sense cells (Steinke, loop cache)
        // stay optimal with no stop.
        assert!(r1
            .cells
            .iter()
            .any(|c| c.flavor == "spm:CasaBb" && c.budget_kind.as_deref() == Some("nodes")));
        for c in &r1.cells {
            if c.flavor == "spm:Steinke" || c.flavor == "loop-cache" {
                assert_eq!(c.status, "optimal", "{c:?}");
                assert_eq!(c.budget_kind, None);
            }
        }
    }

    #[test]
    fn wall_clock_budget_redacts_nondeterministic_columns() {
        let mut g = small_grid();
        // A generous deadline never fires, but its mere presence makes
        // node counts machine-dependent in principle — the
        // deterministic view must not carry them.
        g.set_budget(Budget::unlimited().with_deadline(std::time::Duration::from_secs(3600)));
        let r = g.run_with_threads(1);
        let det = r.deterministic_json();
        assert!(!det.contains("\"status\""));
        assert!(!det.contains("\"gap\""));
        assert!(!det.contains("\"solver_nodes\""));
        assert!(!det.contains("\"budget_kind\""));
        let full = r.to_json();
        assert!(full.contains("\"status\""));
        assert!(full.contains("\"gap\""));
        for c in &r.cells {
            assert!(c.wall_clock_budget);
            assert_eq!(c.status, "optimal", "deadline never fires: {c:?}");
        }
    }

    #[test]
    fn tree_and_timeseries_capture_stay_deterministic_and_quarantined() {
        let mut g = small_grid();
        g.set_capture_trees(true);
        let plain = small_grid().run_with_threads(2).deterministic_json();
        let reports: Vec<SweepReport> = [1usize, 2, 4]
            .iter()
            .map(|&t| g.run_with_threads_obs(t, &Obs::enabled()))
            .collect();
        // Capture must not move a byte of the deterministic report...
        for r in &reports {
            assert_eq!(plain, r.deterministic_json());
        }
        // ...and the capture documents are themselves byte-identical
        // across worker counts (grid-order merging).
        for r in &reports[1..] {
            assert_eq!(reports[0].tree_json(), r.tree_json());
            assert_eq!(reports[0].timeseries_json(), r.timeseries_json());
        }
        let r = &reports[0];
        // Exactly the tree-searching cells captured a tree, and each
        // log agrees with the cell's reported node count.
        for c in &r.cells {
            if c.flavor == "spm:CasaBb" {
                let tree = c.tree.as_ref().expect("CasaBb cell captured a tree");
                let log = casa_ilp::tree::parse_tree_log(tree).expect("valid casa_tree doc");
                assert_eq!(Some(log.nodes), c.solver_nodes);
                assert!(!log.events.is_empty());
            } else {
                assert_eq!(c.tree, None, "no tree for {}", c.flavor);
            }
        }
        // The sweep-level document embeds every captured tree under
        // its session stem, in grid order, and parses as JSON.
        let doc = serde::json::parse(&r.tree_json()).expect("valid tree sweep doc");
        assert_eq!(
            doc.get("casa_tree_sweep").and_then(|v| v.as_f64()),
            Some(1.0)
        );
        let cells = doc.get("cells").and_then(|v| v.as_array()).expect("cells");
        assert_eq!(
            cells.len(),
            r.cells.iter().filter(|c| c.tree.is_some()).count()
        );
        let key0 = cells[0].get("key").and_then(|v| v.as_str()).expect("key");
        assert!(key0.contains("spm_CasaBb"), "stem sanitized: {key0}");
        // Time-series carry the sweep's own per-cell series plus the
        // flow- and solver-level series merged up from the cells.
        let ts = &r.timeseries;
        assert_eq!(
            ts.series.get("sweep.energy_uj").map(Vec::len),
            Some(r.cells.len())
        );
        assert!(ts.series.contains_key("flow.progress"));
        assert!(ts.series.contains_key("bb.incumbent_savings"));
        // Tree capture rides the flow, not the Obs: an uninstrumented
        // run captures identical trees but no flow series.
        let off = g.run_with_threads(2);
        assert_eq!(off.tree_json(), r.tree_json());
        assert!(!off.timeseries.series.contains_key("flow.progress"));
        // Without opting in, no cell pays for capture.
        assert!(small_grid()
            .run_with_threads(1)
            .cells
            .iter()
            .all(|c| c.tree.is_none()));
    }

    #[test]
    fn explain_capture_stays_deterministic_and_quarantined() {
        let mut g = small_grid();
        g.set_capture_explain(true);
        let plain = small_grid().run_with_threads(2).deterministic_json();
        let reports: Vec<SweepReport> = [1usize, 2, 4]
            .iter()
            .map(|&t| g.run_with_threads(t))
            .collect();
        // Explain must not move a byte of the deterministic report...
        for r in &reports {
            assert_eq!(plain, r.deterministic_json());
        }
        // ...and the explain document itself is byte-identical across
        // worker counts (grid-order assembly; serial ≡ parallel).
        for r in &reports[1..] {
            assert_eq!(reports[0].explain_json(), r.explain_json());
        }
        let r = &reports[0];
        // Every scratchpad cell carries a provenance document whose
        // per-object records agree with the cell's placement counts;
        // the loop-cache cell has no allocation solve to explain.
        for c in &r.cells {
            if c.flavor == "loop-cache" {
                assert_eq!(c.explain, None, "no explain for {}", c.flavor);
                continue;
            }
            let text = c.explain.as_ref().expect("spm cell captured explain");
            let doc = casa_core::parse_explain(text).expect("valid casa_explain doc");
            assert!(!doc.objects.is_empty(), "{}", c.flavor);
            for o in &doc.objects {
                assert!(o.regret.is_finite());
            }
            let exact =
                ["spm:CasaBb", "spm:CasaIlpPaper", "spm:CasaIlpTight"].contains(&c.flavor.as_str());
            if exact {
                assert!(
                    doc.shadow_price.is_some(),
                    "exact cells report a shadow price: {}",
                    c.flavor
                );
                assert!(doc
                    .objects
                    .iter()
                    .all(|o| o.fixed_by != casa_core::FixedBy::Heuristic));
            }
        }
        // The sweep-level document embeds every captured explain doc
        // under its session stem, in grid order, and parses as JSON.
        let doc = serde::json::parse(&r.explain_json()).expect("valid explain sweep doc");
        assert_eq!(
            doc.get("casa_explain_sweep").and_then(|v| v.as_f64()),
            Some(1.0)
        );
        let cells = doc.get("cells").and_then(|v| v.as_array()).expect("cells");
        assert_eq!(
            cells.len(),
            r.cells.iter().filter(|c| c.explain.is_some()).count()
        );
        // Without opting in, no cell pays for capture.
        assert!(small_grid()
            .run_with_threads(1)
            .cells
            .iter()
            .all(|c| c.explain.is_none()));
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
        assert_eq!(jnum(1.5), "1.5");
        assert_eq!(jnum(f64::NAN), "null");
    }
}
