//! Noise-aware regression sentinel over the run-history store.
//!
//! Diffs the newest [`HistoryRecord`] against the **median of the last
//! K** comparable records (same schema version, same grid
//! fingerprint) with per-metric policies:
//!
//! * **Exact** for metrics the sweep proves deterministic — per-cell
//!   `energy_uj`, `solver_nodes`, `gap`, `status`, `cache_misses`.
//!   These are byte-identical across worker counts by construction
//!   (see `SweepReport::deterministic_json`), so *any* drift is a real
//!   behaviour change and fails the check.
//! * **Relative** for wall clocks — phase rollups and the sweep's
//!   prepare/execute/total seconds — which are legitimately noisy. A
//!   wall-clock check fails only when the current value exceeds the
//!   baseline median by more than [`SentinelConfig::wall_tol`]
//!   relative **and** [`SentinelConfig::wall_floor_secs`] absolute, so
//!   scheduler jitter on a 3 ms phase can never page anyone.
//!
//! The median is the *lower median* (an actually-observed value), so
//! exact comparisons never manufacture a value no run produced.
//!
//! Verdicts are emitted twice: a human-readable table
//! ([`render_report`]) and a machine document ([`regress_json`],
//! written as `BENCH_regress.json` by the `sentinel` bin, which exits
//! non-zero on regression so CI can gate on it).

use crate::history::{ExplainCensus, HistoryCell, HistoryRecord};
use casa_obs::{jnum, json_escape, TimeSeriesSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema version of the `BENCH_regress.json` document.
pub const REGRESS_SCHEMA: u32 = 1;

/// How many ranked entries a [`RegressionAttribution`] keeps.
pub const ATTRIBUTION_TOP: usize = 8;

/// Sentinel knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SentinelConfig {
    /// How many prior comparable records form the baseline (the most
    /// recent `k` are used; fewer is fine).
    pub k: usize,
    /// Relative tolerance for wall-clock metrics (0.5 = +50%).
    pub wall_tol: f64,
    /// Absolute floor for wall-clock regressions, seconds: deltas
    /// smaller than this never fail regardless of ratio.
    pub wall_floor_secs: f64,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            k: 5,
            wall_tol: 0.5,
            wall_floor_secs: 0.05,
        }
    }
}

/// Which comparison policy a check ran under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Deterministic metric: any difference from the baseline median
    /// is a regression.
    Exact,
    /// Noisy wall-clock metric: fails only beyond the relative
    /// tolerance and the absolute floor.
    Relative,
}

impl Policy {
    /// Stable lowercase tag.
    pub fn as_str(self) -> &'static str {
        match self {
            Policy::Exact => "exact",
            Policy::Relative => "relative",
        }
    }
}

/// Baseline/current pair of one checked metric.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckValue {
    /// Numeric metric.
    Num {
        /// Baseline median.
        baseline: f64,
        /// Current run's value.
        current: f64,
    },
    /// Categorical metric (e.g. allocation `status`).
    Tag {
        /// Baseline consensus (modal value).
        baseline: String,
        /// Current run's value.
        current: String,
    },
}

/// One evaluated metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Metric path, e.g. `cell[adpcm/.../l64].energy_uj` or
    /// `phase[simulate].total_us`.
    pub metric: String,
    /// Policy the comparison used.
    pub policy: Policy,
    /// The compared values.
    pub value: CheckValue,
    /// Whether the check passed.
    pub ok: bool,
}

/// One failing check, ranked for attribution: what moved, by how
/// much, and which metric family it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionEntry {
    /// Full metric path of the failing check.
    pub metric: String,
    /// Family the metric belongs to ([`metric_family`]): the path with
    /// its `[...]` instance stripped, e.g. `cell.energy_uj`.
    pub family: String,
    /// Signed absolute delta `current - baseline`; `None` for
    /// categorical flips (e.g. `status`).
    pub delta: Option<f64>,
    /// Ranking key: `|delta / baseline|`, or `+inf` for categorical
    /// flips and something-from-nothing numeric changes.
    pub severity: f64,
}

/// The earliest logical tick at which the current run's time-series
/// diverges from the baseline's.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Series name (e.g. `sweep.energy_uj`, `bb.incumbent_savings`).
    pub series: String,
    /// Logical tick of the first diverging point.
    pub tick: u64,
    /// Baseline value at that point (`NaN` when the baseline series
    /// ends before it).
    pub baseline: f64,
    /// Current value at that point.
    pub current: f64,
}

/// One object whose scratchpad placement flipped between the current
/// run and the baseline, named by the per-cell top-regret explain
/// census: the cell, the object, both placements, and the energy at
/// stake. Only objects that appear in *both* censuses can be named —
/// the census is top-K, so absence of flips is evidence about the
/// highest-regret objects only.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementFlip {
    /// [`HistoryCell::key`] of the cell.
    pub cell: String,
    /// Object index within the cell's conflict graph.
    pub object: usize,
    /// Baseline placement (`true` = scratchpad).
    pub baseline_on_spm: bool,
    /// Current placement.
    pub current_on_spm: bool,
    /// Current run's regret for the object, nJ.
    pub regret: f64,
}

/// Why a failing sentinel run failed: the divergent checks ranked by
/// severity, a per-family census of every regression, and — when both
/// runs recorded time-series — the first logical tick where their
/// trajectories split.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionAttribution {
    /// The worst failing checks, severity-descending (ties broken by
    /// metric name), truncated to [`ATTRIBUTION_TOP`].
    pub top: Vec<AttributionEntry>,
    /// Regression count per metric family, over **all** failing
    /// checks (never truncated).
    pub families: BTreeMap<String, usize>,
    /// First time-series divergence against the most recent baseline
    /// record that carried a time-series; `None` when neither side has
    /// one or they agree point-for-point.
    pub first_divergence: Option<Divergence>,
    /// Top-regret objects whose placements flipped against the most
    /// recent baseline record carrying an explain census,
    /// regret-descending. Empty when either side lacks a census or no
    /// censused placement moved.
    pub placement_flips: Vec<PlacementFlip>,
}

/// Outcome of one sentinel run.
#[derive(Debug, Clone, PartialEq)]
pub struct SentinelReport {
    /// `true` when every check passed (also when there was no
    /// baseline to compare against).
    pub pass: bool,
    /// Comparable baseline records actually used.
    pub baseline_runs: usize,
    /// Grid fingerprint of the compared runs.
    pub grid_hash: String,
    /// Every evaluated metric, cells first, wall clocks after.
    pub checks: Vec<Check>,
    /// Human-readable context ("no baseline yet", skipped-line
    /// counts, ...).
    pub notes: Vec<String>,
    /// Present exactly when the run failed: which metrics moved and
    /// where the trajectories first split.
    pub attribution: Option<RegressionAttribution>,
}

impl SentinelReport {
    /// Failing checks only.
    pub fn regressions(&self) -> Vec<&Check> {
        self.checks.iter().filter(|c| !c.ok).collect()
    }
}

/// A metric's family: the path with its `[...]` instance stripped, so
/// every cell's `energy_uj` check lands in one `cell.energy_uj`
/// bucket (`phase[simulate].total_secs` → `phase.total_secs`;
/// bracket-free paths like `sweep.total_secs` are their own family).
pub fn metric_family(metric: &str) -> String {
    match (metric.find('['), metric.rfind(']')) {
        (Some(a), Some(b)) if b > a => format!("{}{}", &metric[..a], &metric[b + 1..]),
        _ => metric.to_string(),
    }
}

/// Lower median of `values` (an observed value, not an average), or
/// `None` when empty.
fn lower_median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("metric values are finite"));
    Some(values[(values.len() - 1) / 2])
}

/// Most frequent value; ties resolve to the lexicographically first so
/// the verdict does not depend on record order.
fn modal(values: &[&str]) -> Option<String> {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for v in values {
        *counts.entry(v).or_default() += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
        .map(|(v, _)| v.to_string())
}

/// `Option<u64>` → comparable f64: `None` (no tree search) maps to -1,
/// which no real count produces, so a `Some`/`None` flip is caught as
/// a plain mismatch.
fn opt_num(v: Option<f64>) -> f64 {
    v.unwrap_or(-1.0)
}

fn exact_check(metric: String, baseline: f64, current: f64) -> Check {
    Check {
        metric,
        policy: Policy::Exact,
        ok: baseline == current,
        value: CheckValue::Num { baseline, current },
    }
}

fn relative_check(
    cfg: &SentinelConfig,
    metric: String,
    baseline_secs: f64,
    current_secs: f64,
) -> Check {
    let over = current_secs - baseline_secs;
    let ok = !(over > cfg.wall_floor_secs && current_secs > baseline_secs * (1.0 + cfg.wall_tol));
    Check {
        metric,
        policy: Policy::Relative,
        ok,
        value: CheckValue::Num {
            baseline: baseline_secs,
            current: current_secs,
        },
    }
}

/// Compare `current` against the last [`SentinelConfig::k`] records of
/// `history` that share its schema version and grid fingerprint.
/// `history` is the full chronological log; `current` itself is
/// excluded by identity (the last record of the log is typically the
/// current run).
pub fn compare(
    current: &HistoryRecord,
    history: &[HistoryRecord],
    cfg: &SentinelConfig,
) -> SentinelReport {
    let comparable: Vec<&HistoryRecord> = history
        .iter()
        .filter(|r| {
            !std::ptr::eq(*r, current)
                && r.schema_version == current.schema_version
                && r.grid_hash == current.grid_hash
        })
        .collect();
    let baseline: Vec<&HistoryRecord> =
        comparable.iter().rev().take(cfg.k).rev().copied().collect();

    let mut report = SentinelReport {
        pass: true,
        baseline_runs: baseline.len(),
        grid_hash: current.grid_hash.clone(),
        checks: Vec::new(),
        notes: Vec::new(),
        attribution: None,
    };
    if baseline.is_empty() {
        report
            .notes
            .push("no comparable baseline records; nothing to diff".to_string());
        return report;
    }

    // Per-cell deterministic columns.
    for cell in &current.cells {
        let key = cell.key();
        let peers: Vec<&HistoryCell> = baseline
            .iter()
            .filter_map(|r| r.cells.iter().find(|c| c.key() == key))
            .collect();
        if peers.is_empty() {
            report
                .notes
                .push(format!("cell {key} has no baseline peers"));
            continue;
        }
        let median_of = |f: &dyn Fn(&HistoryCell) -> f64| {
            lower_median(&mut peers.iter().map(|c| f(c)).collect::<Vec<f64>>())
                .expect("peers non-empty")
        };
        report.checks.push(exact_check(
            format!("cell[{key}].energy_uj"),
            median_of(&|c| c.energy_uj),
            cell.energy_uj,
        ));
        report.checks.push(exact_check(
            format!("cell[{key}].cache_misses"),
            median_of(&|c| c.cache_misses as f64),
            cell.cache_misses as f64,
        ));
        report.checks.push(exact_check(
            format!("cell[{key}].solver_nodes"),
            median_of(&|c| opt_num(c.solver_nodes.map(|n| n as f64))),
            opt_num(cell.solver_nodes.map(|n| n as f64)),
        ));
        report.checks.push(exact_check(
            format!("cell[{key}].gap"),
            median_of(&|c| opt_num(c.gap)),
            opt_num(cell.gap),
        ));
        let statuses: Vec<&str> = peers.iter().map(|c| c.status.as_str()).collect();
        let consensus = modal(&statuses).expect("peers non-empty");
        report.checks.push(Check {
            metric: format!("cell[{key}].status"),
            policy: Policy::Exact,
            ok: consensus == cell.status,
            value: CheckValue::Tag {
                baseline: consensus,
                current: cell.status.clone(),
            },
        });
    }

    // Wall clocks: phase rollups (µs, compared in seconds) then the
    // sweep aggregates.
    for phase in &current.phases {
        let mut peers: Vec<f64> = baseline
            .iter()
            .filter_map(|r| r.phases.iter().find(|p| p.name == phase.name))
            .map(|p| p.total_us as f64 / 1e6)
            .collect();
        if let Some(base) = lower_median(&mut peers) {
            report.checks.push(relative_check(
                cfg,
                format!("phase[{}].total_secs", phase.name),
                base,
                phase.total_us as f64 / 1e6,
            ));
        }
    }
    for (name, get) in [
        (
            "prepare_secs",
            (|r: &HistoryRecord| r.prepare_secs) as fn(&HistoryRecord) -> f64,
        ),
        ("execute_secs", |r| r.execute_secs),
        ("total_secs", |r| r.total_secs),
    ] {
        let base = lower_median(&mut baseline.iter().map(|r| get(r)).collect::<Vec<f64>>())
            .expect("baseline non-empty");
        report.checks.push(relative_check(
            cfg,
            format!("sweep.{name}"),
            base,
            get(current),
        ));
    }

    report.pass = report.checks.iter().all(|c| c.ok);
    if !report.pass {
        report.attribution = Some(attribute(&report.checks, current, &baseline));
    }
    report
}

/// Build the attribution for a failing run: rank the failing checks,
/// census their families, and locate the first time-series divergence
/// against the most recent baseline record that carried one.
fn attribute(
    checks: &[Check],
    current: &HistoryRecord,
    baseline: &[&HistoryRecord],
) -> RegressionAttribution {
    let mut top: Vec<AttributionEntry> = Vec::new();
    let mut families: BTreeMap<String, usize> = BTreeMap::new();
    for c in checks.iter().filter(|c| !c.ok) {
        let family = metric_family(&c.metric);
        *families.entry(family.clone()).or_default() += 1;
        let (delta, severity) = match &c.value {
            CheckValue::Num { baseline, current } => {
                let delta = current - baseline;
                let severity = if *baseline != 0.0 {
                    (delta / baseline).abs()
                } else {
                    f64::INFINITY
                };
                (Some(delta), severity)
            }
            CheckValue::Tag { .. } => (None, f64::INFINITY),
        };
        top.push(AttributionEntry {
            metric: c.metric.clone(),
            family,
            delta,
            severity,
        });
    }
    // Severity-descending; ties break on the metric name so the
    // ranking (and the JSON) is deterministic.
    top.sort_by(|a, b| {
        b.severity
            .partial_cmp(&a.severity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.metric.cmp(&b.metric))
    });
    top.truncate(ATTRIBUTION_TOP);
    let first_divergence = baseline
        .iter()
        .rev()
        .find(|r| !r.timeseries.is_empty())
        .and_then(|r| first_divergence(&current.timeseries, &r.timeseries));
    let placement_flips = baseline
        .iter()
        .rev()
        .find(|r| !r.explain_census.is_empty())
        .map(|r| census_flips(&current.explain_census, &r.explain_census))
        .unwrap_or_default();
    RegressionAttribution {
        top,
        families,
        first_divergence,
        placement_flips,
    }
}

/// Diff two explain censuses: for every cell and object present in
/// both, report a [`PlacementFlip`] when the scratchpad placement
/// differs. Regret-descending (ties by cell then object) so the most
/// energy-significant flip leads.
fn census_flips(current: &[ExplainCensus], baseline: &[ExplainCensus]) -> Vec<PlacementFlip> {
    let mut flips = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|c| c.key == cur.key) else {
            continue;
        };
        for o in &cur.objects {
            let Some(b) = base.objects.iter().find(|b| b.index == o.index) else {
                continue;
            };
            if b.on_spm != o.on_spm {
                flips.push(PlacementFlip {
                    cell: cur.key.clone(),
                    object: o.index,
                    baseline_on_spm: b.on_spm,
                    current_on_spm: o.on_spm,
                    regret: o.regret,
                });
            }
        }
    }
    flips.sort_by(|a, b| {
        b.regret
            .partial_cmp(&a.regret)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (&a.cell, a.object).cmp(&(&b.cell, b.object)))
    });
    flips
}

/// Earliest logical tick where `current` departs from `baseline`:
/// for every series present in both snapshots, points are compared in
/// sample order; the winning divergence is the one with the smallest
/// tick (ties broken by series name). A `null`-exported non-finite
/// sample equals another non-finite sample.
fn first_divergence(
    current: &TimeSeriesSnapshot,
    baseline: &TimeSeriesSnapshot,
) -> Option<Divergence> {
    let mut best: Option<Divergence> = None;
    for (name, cur) in &current.series {
        let Some(base) = baseline.series.get(name) else {
            continue;
        };
        for (i, &(tick, value)) in cur.iter().enumerate() {
            let peer = base.get(i).copied();
            let same = peer.is_some_and(|(bt, bv)| {
                bt == tick && (bv == value || (bv.is_nan() && value.is_nan()))
            });
            if same {
                continue;
            }
            let d = Divergence {
                series: name.clone(),
                tick,
                baseline: peer.map_or(f64::NAN, |(_, bv)| bv),
                current: value,
            };
            let wins = best
                .as_ref()
                .is_none_or(|b| (d.tick, &d.series) < (b.tick, &b.series));
            if wins {
                best = Some(d);
            }
            break;
        }
    }
    best
}

/// Render the human verdict table.
pub fn render_report(r: &SentinelReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "sentinel: grid {} vs median of {} baseline run(s)",
        r.grid_hash, r.baseline_runs
    );
    for note in &r.notes {
        let _ = writeln!(s, "  note: {note}");
    }
    let _ = writeln!(
        s,
        "{:<58} {:>14} {:>14} {:>9} {:<8} verdict",
        "metric", "baseline", "current", "delta", "policy"
    );
    for c in &r.checks {
        let (b, cur, delta) = match &c.value {
            CheckValue::Num { baseline, current } => {
                let delta = if *baseline != 0.0 {
                    format!("{:+.2}%", 100.0 * (current - baseline) / baseline)
                } else if current == baseline {
                    "+0.00%".to_string()
                } else {
                    "n/a".to_string()
                };
                (format!("{baseline:.6}"), format!("{current:.6}"), delta)
            }
            CheckValue::Tag { baseline, current } => {
                (baseline.clone(), current.clone(), "-".to_string())
            }
        };
        let _ = writeln!(
            s,
            "{:<58} {:>14} {:>14} {:>9} {:<8} {}",
            c.metric,
            b,
            cur,
            delta,
            c.policy.as_str(),
            if c.ok { "ok" } else { "REGRESSION" }
        );
    }
    let _ = writeln!(
        s,
        "verdict: {} ({} checks, {} regressions)",
        if r.pass { "PASS" } else { "REGRESSION" },
        r.checks.len(),
        r.regressions().len()
    );
    s
}

/// Render the attribution as a human table (`sentinel --explain`).
/// Empty string when the report passed (nothing to attribute).
pub fn render_attribution(r: &SentinelReport) -> String {
    let Some(a) = &r.attribution else {
        return String::new();
    };
    let mut s = String::new();
    let _ = writeln!(s, "attribution: why this run failed");
    let _ = writeln!(s, "  families ({} regressed):", a.families.len());
    for (family, count) in &a.families {
        let _ = writeln!(s, "    {family:<28} {count} regression(s)");
    }
    let _ = writeln!(s, "  top divergent checks:");
    for e in &a.top {
        let delta = match e.delta {
            Some(d) => format!("{d:+.6}"),
            None => "flip".to_string(),
        };
        let _ = writeln!(s, "    {:<58} {:>14}  [{}]", e.metric, delta, e.family);
    }
    match &a.first_divergence {
        Some(d) => {
            let _ = writeln!(
                s,
                "  first time-series divergence: {} at tick {} ({} -> {})",
                d.series,
                d.tick,
                jnum(d.baseline),
                jnum(d.current)
            );
        }
        None => {
            let _ = writeln!(s, "  first time-series divergence: none recorded");
        }
    }
    if a.placement_flips.is_empty() {
        let _ = writeln!(s, "  placement flips (top-regret census): none recorded");
    } else {
        let _ = writeln!(
            s,
            "  placement flips (top-regret census): {}",
            a.placement_flips.len()
        );
        for f in &a.placement_flips {
            let side = |on: bool| if on { "spm" } else { "cache" };
            let _ = writeln!(
                s,
                "    {} obj {:>3}: {} -> {} ({} nJ at stake)",
                f.cell,
                f.object,
                side(f.baseline_on_spm),
                side(f.current_on_spm),
                jnum(f.regret)
            );
        }
    }
    s
}

/// Serialize the machine verdict (`BENCH_regress.json`).
pub fn regress_json(r: &SentinelReport) -> String {
    let mut s = format!(
        "{{\"schema_version\":{REGRESS_SCHEMA},\"verdict\":\"{}\",\"grid_hash\":\"{}\",\
         \"baseline_runs\":{},\"notes\":[",
        if r.pass { "pass" } else { "regression" },
        json_escape(&r.grid_hash),
        r.baseline_runs,
    );
    for (i, n) in r.notes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", json_escape(n));
    }
    s.push_str("],\"checks\":[");
    for (i, c) in r.checks.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let (b, cur) = match &c.value {
            CheckValue::Num { baseline, current } => (jnum(*baseline), jnum(*current)),
            CheckValue::Tag { baseline, current } => (
                format!("\"{}\"", json_escape(baseline)),
                format!("\"{}\"", json_escape(current)),
            ),
        };
        let _ = write!(
            s,
            "{{\"metric\":\"{}\",\"policy\":\"{}\",\"baseline\":{},\"current\":{},\"ok\":{}}}",
            json_escape(&c.metric),
            c.policy.as_str(),
            b,
            cur,
            c.ok
        );
    }
    s.push_str("],\"attribution\":");
    match &r.attribution {
        None => s.push_str("null"),
        Some(a) => {
            s.push_str("{\"top\":[");
            for (i, e) in a.top.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"metric\":\"{}\",\"family\":\"{}\",\"delta\":{},\"severity\":{}}}",
                    json_escape(&e.metric),
                    json_escape(&e.family),
                    e.delta.map_or_else(|| "null".to_string(), jnum),
                    jnum(e.severity)
                );
            }
            s.push_str("],\"families\":[");
            for (i, (family, count)) in a.families.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"family\":\"{}\",\"regressions\":{count}}}",
                    json_escape(family)
                );
            }
            s.push_str("],\"first_divergence\":");
            match &a.first_divergence {
                None => s.push_str("null"),
                Some(d) => {
                    let _ = write!(
                        s,
                        "{{\"series\":\"{}\",\"tick\":{},\"baseline\":{},\"current\":{}}}",
                        json_escape(&d.series),
                        d.tick,
                        jnum(d.baseline),
                        jnum(d.current)
                    );
                }
            }
            s.push_str(",\"placement_flips\":[");
            for (i, f) in a.placement_flips.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"cell\":\"{}\",\"object\":{},\"baseline_on_spm\":{},\
                     \"current_on_spm\":{},\"regret\":{}}}",
                    json_escape(&f.cell),
                    f.object,
                    f.baseline_on_spm,
                    f.current_on_spm,
                    jnum(f.regret)
                );
            }
            s.push_str("]}");
        }
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{CensusObject, ExplainCensus, HistoryCell};
    use crate::sweep::PhaseRollup;

    fn cell(energy: f64, nodes: Option<u64>, status: &str) -> HistoryCell {
        HistoryCell {
            benchmark: "adpcm".to_string(),
            scale: 1,
            seed: 2004,
            flavor: "spm:CasaBb".to_string(),
            cache_size: 128,
            policy: "Lru".to_string(),
            local_size: 64,
            energy_uj: energy,
            cache_misses: 4096,
            solver_nodes: nodes,
            status: status.to_string(),
            gap: Some(0.0),
            solver_secs: 0.01,
            cell_secs: 0.05,
        }
    }

    fn record(energy: f64, total_secs: f64) -> HistoryRecord {
        HistoryRecord {
            schema_version: 1,
            ts_unix_s: 1_700_000_000,
            grid_hash: "feedfacefeedface".to_string(),
            threads: 1,
            prepare_secs: 0.1,
            execute_secs: total_secs - 0.1,
            total_secs,
            cells: vec![cell(energy, Some(20), "optimal")],
            phases: vec![PhaseRollup {
                name: "simulate".to_string(),
                count: 3,
                total_us: 900_000,
            }],
            metrics: Default::default(),
            timeseries: TimeSeriesSnapshot {
                cap: 16,
                dropped: 0,
                series: BTreeMap::from([(
                    "sweep.energy_uj".to_string(),
                    vec![(0, energy), (1, energy * 2.0)],
                )]),
            },
            explain_census: vec![ExplainCensus {
                key: cell(energy, Some(20), "optimal").key(),
                objects: vec![
                    CensusObject {
                        index: 3,
                        on_spm: true,
                        regret: 7_500.0,
                    },
                    CensusObject {
                        index: 1,
                        on_spm: false,
                        regret: 300.0,
                    },
                ],
            }],
        }
    }

    #[test]
    fn identical_runs_pass() {
        let history = vec![record(100.0, 1.0), record(100.0, 1.05), record(100.0, 1.0)];
        let r = compare(
            history.last().unwrap(),
            &history,
            &SentinelConfig::default(),
        );
        assert!(r.pass, "{}", render_report(&r));
        assert_eq!(r.baseline_runs, 2);
        assert!(r.checks.iter().any(|c| c.metric.contains("energy_uj")));
        assert!(regress_json(&r).contains("\"verdict\":\"pass\""));
        assert_eq!(r.attribution, None, "nothing to attribute on a pass");
        assert!(regress_json(&r).contains("\"attribution\":null"));
        assert_eq!(render_attribution(&r), "");
    }

    #[test]
    fn detects_injected_five_percent_energy_perturbation() {
        // The acceptance-criterion case: a +5% energy drift — well
        // within plausible "it still looks fine" territory for a human
        // eyeballing BENCH_sweep.json — must fail the exact policy.
        let mut history = vec![record(100.0, 1.0), record(100.0, 1.0), record(100.0, 1.0)];
        let mut bad = record(100.0, 1.0);
        bad.cells[0].energy_uj *= 1.05;
        // The sweep samples `sweep.energy_uj` from the same cell
        // results, so the run's time-series drifts with it.
        bad.timeseries
            .series
            .get_mut("sweep.energy_uj")
            .expect("fixture series")[0]
            .1 *= 1.05;
        history.push(bad);
        let r = compare(
            history.last().unwrap(),
            &history,
            &SentinelConfig::default(),
        );
        assert!(!r.pass);
        let regressions = r.regressions();
        assert_eq!(regressions.len(), 1, "{}", render_report(&r));
        assert!(regressions[0].metric.ends_with(".energy_uj"));
        assert_eq!(regressions[0].policy, Policy::Exact);
        match &regressions[0].value {
            CheckValue::Num { baseline, current } => {
                assert_eq!(*baseline, 100.0);
                assert_eq!(*current, 105.0);
            }
            other => panic!("numeric check expected, got {other:?}"),
        }
        assert!(regress_json(&r).contains("\"verdict\":\"regression\""));
        assert!(render_report(&r).contains("REGRESSION"));
        // Attribution names the family, the signed delta, and the
        // first logical tick where the trajectories split.
        let a = r.attribution.as_ref().expect("failing run attributes");
        assert_eq!(a.top.len(), 1);
        assert_eq!(a.top[0].family, "cell.energy_uj");
        assert_eq!(a.top[0].delta, Some(5.0));
        assert!((a.top[0].severity - 0.05).abs() < 1e-12);
        assert_eq!(a.families.get("cell.energy_uj"), Some(&1));
        let d = a.first_divergence.as_ref().expect("timeseries diverged");
        assert_eq!(d.series, "sweep.energy_uj");
        assert_eq!(d.tick, 0);
        assert_eq!(d.baseline, 100.0);
        assert_eq!(d.current, 105.0);
        let explain = render_attribution(&r);
        assert!(explain.contains("cell.energy_uj"), "{explain}");
        assert!(explain.contains("tick 0"), "{explain}");
        // The machine document always carries the attribution.
        let json = regress_json(&r);
        let v = serde::json::parse(&json).expect("valid JSON");
        let attr = v.get("attribution").expect("attribution present");
        let top = attr.get("top").and_then(|t| t.as_array()).expect("top");
        assert_eq!(
            top[0].get("family").and_then(|f| f.as_str()),
            Some("cell.energy_uj")
        );
        assert_eq!(top[0].get("delta").and_then(|x| x.as_f64()), Some(5.0));
        let fd = attr.get("first_divergence").expect("divergence present");
        assert_eq!(fd.get("tick").and_then(|t| t.as_f64()), Some(0.0));
        assert_eq!(
            fd.get("series").and_then(|x| x.as_str()),
            Some("sweep.energy_uj")
        );
    }

    #[test]
    fn attribution_ranks_flips_above_numeric_drift_and_truncates() {
        let history = vec![record(100.0, 1.0), record(100.0, 1.0)];
        let mut bad = record(100.0, 1.0);
        bad.cells[0].energy_uj = 101.0; // +1%
        bad.cells[0].status = "fallback".to_string(); // categorical flip
        let mut h = history;
        h.push(bad);
        let r = compare(h.last().unwrap(), &h, &SentinelConfig::default());
        let a = r.attribution.as_ref().expect("attribution");
        assert_eq!(a.top[0].family, "cell.status", "flips rank first");
        assert_eq!(a.top[0].delta, None);
        assert!(a.top.len() <= ATTRIBUTION_TOP);
        // Identical timeseries: divergence honestly reports nothing.
        assert_eq!(a.first_divergence, None);
        assert!(render_attribution(&r).contains("none recorded"));
    }

    #[test]
    fn attribution_names_census_placement_flips_by_regret() {
        let history = vec![record(100.0, 1.0), record(100.0, 1.0)];
        let mut bad = record(100.0, 1.0);
        // The regression: energy moved, and the census says which
        // placement did it — object 3 left the scratchpad.
        bad.cells[0].energy_uj = 107.5;
        bad.explain_census[0].objects[0].on_spm = false;
        let mut h = history;
        h.push(bad);
        let r = compare(h.last().unwrap(), &h, &SentinelConfig::default());
        assert!(!r.pass);
        let a = r.attribution.as_ref().expect("attribution");
        assert_eq!(a.placement_flips.len(), 1);
        let f = &a.placement_flips[0];
        assert_eq!(f.object, 3);
        assert!(f.baseline_on_spm && !f.current_on_spm);
        assert_eq!(f.regret, 7_500.0);
        assert_eq!(f.cell, cell(100.0, Some(20), "optimal").key());
        let text = render_attribution(&r);
        assert!(text.contains("obj   3: spm -> cache"), "{text}");
        let v = serde::json::parse(&regress_json(&r)).expect("valid JSON");
        let flips = v
            .get("attribution")
            .and_then(|a| a.get("placement_flips"))
            .and_then(|f| f.as_array())
            .expect("placement_flips");
        assert_eq!(flips.len(), 1);
        assert_eq!(flips[0].get("object").and_then(|o| o.as_f64()), Some(3.0));
        assert_eq!(
            flips[0].get("current_on_spm").and_then(|b| b.as_bool()),
            Some(false)
        );
    }

    #[test]
    fn unchanged_census_attributes_no_flips() {
        // A wall-clock-only failure with an identical census: the
        // attribution honestly reports no placement movement.
        let history = vec![record(100.0, 1.0), record(100.0, 1.0)];
        let mut slow = record(100.0, 9.0);
        slow.phases[0].total_us = 9_000_000;
        let mut h = history;
        h.push(slow);
        let r = compare(h.last().unwrap(), &h, &SentinelConfig::default());
        assert!(!r.pass);
        let a = r.attribution.as_ref().expect("attribution");
        assert!(a.placement_flips.is_empty());
        assert!(render_attribution(&r).contains("placement flips (top-regret census): none"));
    }

    #[test]
    fn metric_family_strips_the_instance() {
        assert_eq!(
            metric_family("cell[adpcm/s1/r2004/spm:CasaBb/c128/Lru/l64].energy_uj"),
            "cell.energy_uj"
        );
        assert_eq!(
            metric_family("phase[simulate].total_secs"),
            "phase.total_secs"
        );
        assert_eq!(metric_family("sweep.total_secs"), "sweep.total_secs");
    }

    #[test]
    fn wall_clock_noise_tolerated_but_blowups_flagged() {
        let history = vec![record(100.0, 1.0), record(100.0, 1.1), record(100.0, 0.9)];
        // +20% wall clock: inside the 50% tolerance → pass.
        let mut noisy = record(100.0, 1.2);
        noisy.phases[0].total_us = 1_080_000; // +20%
        let mut h = history.clone();
        h.push(noisy);
        let r = compare(h.last().unwrap(), &h, &SentinelConfig::default());
        assert!(r.pass, "{}", render_report(&r));
        // 3x wall clock: beyond tolerance and floor → regression, and
        // only on the relative checks.
        let mut slow = record(100.0, 3.0);
        slow.phases[0].total_us = 2_700_000;
        let mut h = history.clone();
        h.push(slow);
        let r = compare(h.last().unwrap(), &h, &SentinelConfig::default());
        assert!(!r.pass);
        assert!(r.regressions().iter().all(|c| c.policy == Policy::Relative));
        assert!(r
            .regressions()
            .iter()
            .any(|c| c.metric == "phase[simulate].total_secs"));
    }

    #[test]
    fn tiny_absolute_wall_clock_deltas_never_fail() {
        // 4x slower but only 30 ms absolute: under the floor → ok.
        let history = vec![record(100.0, 0.01), record(100.0, 0.01)];
        let mut h = history.clone();
        h.push(record(100.0, 0.04));
        let r = compare(h.last().unwrap(), &h, &SentinelConfig::default());
        assert!(r.pass, "{}", render_report(&r));
    }

    #[test]
    fn status_flip_and_node_count_drift_are_regressions() {
        let history = vec![record(100.0, 1.0), record(100.0, 1.0)];
        let mut bad = record(100.0, 1.0);
        bad.cells[0].status = "fallback".to_string();
        bad.cells[0].solver_nodes = Some(21);
        let mut h = history;
        h.push(bad);
        let r = compare(h.last().unwrap(), &h, &SentinelConfig::default());
        assert!(!r.pass);
        let failed: Vec<&str> = r.regressions().iter().map(|c| c.metric.as_str()).collect();
        assert!(failed.iter().any(|m| m.ends_with(".status")));
        assert!(failed.iter().any(|m| m.ends_with(".solver_nodes")));
    }

    #[test]
    fn solver_nodes_some_none_flip_is_caught() {
        let history = vec![record(100.0, 1.0), record(100.0, 1.0)];
        let mut bad = record(100.0, 1.0);
        bad.cells[0].solver_nodes = None;
        let mut h = history;
        h.push(bad);
        let r = compare(h.last().unwrap(), &h, &SentinelConfig::default());
        assert!(!r.pass);
        assert!(r
            .regressions()
            .iter()
            .any(|c| c.metric.ends_with(".solver_nodes")));
    }

    #[test]
    fn different_grid_hash_is_not_a_baseline() {
        let mut other = record(999.0, 9.0);
        other.grid_hash = "0000000000000000".to_string();
        let history = vec![other, record(100.0, 1.0)];
        let r = compare(
            history.last().unwrap(),
            &history,
            &SentinelConfig::default(),
        );
        assert!(r.pass);
        assert_eq!(r.baseline_runs, 0, "foreign grids are invisible");
        assert!(!r.notes.is_empty());
    }

    #[test]
    fn baseline_uses_last_k_records() {
        // Ancient records with a different energy fall out of the K
        // window; only the recent consensus matters.
        let mut history: Vec<HistoryRecord> = (0..10).map(|_| record(50.0, 1.0)).collect();
        history.extend((0..5).map(|_| record(100.0, 1.0)));
        history.push(record(100.0, 1.0));
        let cfg = SentinelConfig {
            k: 5,
            ..SentinelConfig::default()
        };
        let r = compare(history.last().unwrap(), &history, &cfg);
        assert_eq!(r.baseline_runs, 5);
        assert!(r.pass, "{}", render_report(&r));
    }

    #[test]
    fn regress_json_parses_back() {
        let history = vec![record(100.0, 1.0), record(105.0, 1.0)];
        let r = compare(
            history.last().unwrap(),
            &history,
            &SentinelConfig::default(),
        );
        let json = regress_json(&r);
        let v = serde::json::parse(&json).expect("valid JSON");
        assert_eq!(
            v.get("verdict").and_then(|x| x.as_str()),
            Some("regression")
        );
        let checks = v.get("checks").and_then(|x| x.as_array()).unwrap();
        assert!(!checks.is_empty());
        assert!(checks
            .iter()
            .any(|c| c.get("ok").and_then(|o| o.as_bool()) == Some(false)));
    }
}
