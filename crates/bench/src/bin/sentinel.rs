//! Noise-aware regression sentinel over `BENCH_history.jsonl`.
//!
//! Treats the newest history record as "the current run", diffs it
//! against the median of the last K comparable records (same schema
//! version and grid fingerprint), prints the human verdict table, and
//! writes the machine verdict to `BENCH_regress.json`.
//!
//! Usage: `cargo run --release -p casa-bench --bin sentinel --
//!         [--history <path>] [--k <n>] [--wall-tol <frac>]
//!         [--out <path>] [--explain] [--serve <addr>]
//!         [--serve-addr-file <path>] [--serve-linger-ms <ms>]`
//!
//! Defaults: `--history BENCH_history.jsonl`, `--k 5`,
//! `--wall-tol 0.5`, `--out BENCH_regress.json`.
//!
//! `--explain` prints the regression attribution after the verdict
//! table on a failing run: which metric families regressed, the worst
//! divergent checks with signed deltas, and the first logical tick
//! where the run's time-series departed from the baseline's. The
//! machine document always embeds the same attribution under
//! `"attribution"` (null on a pass), so CI artifacts carry it whether
//! or not the flag was passed.
//!
//! `--serve <addr>` additionally publishes the verdict on the live
//! telemetry exporter — `casa_sentinel_regressions`,
//! `casa_sentinel_checks`, `casa_sentinel_pass` and
//! `casa_sentinel_baseline_runs` gauges on `/metrics` — and keeps the
//! endpoints up for `--serve-linger-ms <ms>` (default 60000) or until
//! a scraper sends `/quitquitquit`, whichever comes first.
//!
//! Exit status: 0 on pass (including "no baseline yet"), 1 on
//! regression, 2 on usage/IO errors — so CI can gate on it.

use casa_bench::history::read_history;
use casa_bench::runner::cli_value;
use casa_bench::sentinel::{
    compare, regress_json, render_attribution, render_report, SentinelConfig, SentinelReport,
};
use casa_obs::Obs;
use std::process::ExitCode;
use std::time::Duration;

/// Publish the verdict table as gauges on the live telemetry exporter
/// and hold the endpoints open for a scraper.
///
/// # Panics
///
/// Panics when the address cannot be bound or the addr file cannot be
/// written (CI wants loud failures).
fn serve_verdict(addr: &str, report: &SentinelReport) {
    let obs = Obs::enabled();
    obs.gauge_set("sentinel.regressions", report.regressions().len() as f64);
    obs.gauge_set("sentinel.checks", report.checks.len() as f64);
    obs.gauge_set("sentinel.pass", if report.pass { 1.0 } else { 0.0 });
    obs.gauge_set("sentinel.baseline_runs", report.baseline_runs as f64);
    let server = obs
        .serve(addr)
        .unwrap_or_else(|e| panic!("--serve {addr}: {e}"));
    let bound = server.local_addr();
    println!("serving sentinel verdict on {bound}");
    if let Some(path) = cli_value("--serve-addr-file") {
        std::fs::write(&path, format!("{bound}\n"))
            .unwrap_or_else(|e| panic!("--serve-addr-file {path}: {e}"));
    }
    let linger_ms: u64 = cli_value("--serve-linger-ms")
        .map(|v| v.parse().expect("--serve-linger-ms takes milliseconds"))
        .unwrap_or(60_000);
    eprintln!("lingering up to {linger_ms} ms (GET /quitquitquit to release)");
    server.wait_quit(Duration::from_millis(linger_ms));
}

fn main() -> ExitCode {
    let history_path = cli_value("--history").unwrap_or_else(|| "BENCH_history.jsonl".to_string());
    let out_path = cli_value("--out").unwrap_or_else(|| "BENCH_regress.json".to_string());
    let mut cfg = SentinelConfig::default();
    if let Some(k) = cli_value("--k") {
        cfg.k = k.parse().expect("--k takes an integer");
    }
    if let Some(tol) = cli_value("--wall-tol") {
        cfg.wall_tol = tol.parse().expect("--wall-tol takes a fraction, e.g. 0.5");
    }

    let log = match read_history(std::path::Path::new(&history_path)) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("sentinel: cannot read {history_path}: {e}");
            return ExitCode::from(2);
        }
    };
    if log.skipped_lines > 0 {
        eprintln!(
            "sentinel: skipped {} unreadable line(s) in {history_path}",
            log.skipped_lines
        );
    }
    let Some(current) = log.records.last() else {
        eprintln!("sentinel: {history_path} has no readable records; run `sweep` first");
        return ExitCode::from(2);
    };

    let report = compare(current, &log.records, &cfg);
    print!("{}", render_report(&report));
    if std::env::args().any(|a| a == "--explain") {
        print!("{}", render_attribution(&report));
    }
    std::fs::write(&out_path, regress_json(&report))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
    if let Some(addr) = cli_value("--serve") {
        serve_verdict(&addr, &report);
    }
    if report.pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
