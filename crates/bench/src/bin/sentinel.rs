//! Noise-aware regression sentinel over `BENCH_history.jsonl`.
//!
//! Treats the newest history record as "the current run", diffs it
//! against the median of the last K comparable records (same schema
//! version and grid fingerprint), prints the human verdict table, and
//! writes the machine verdict to `BENCH_regress.json`.
//!
//! Usage: `cargo run --release -p casa-bench --bin sentinel --
//!         [--history <path>] [--k <n>] [--wall-tol <frac>]
//!         [--out <path>]`
//!
//! Defaults: `--history BENCH_history.jsonl`, `--k 5`,
//! `--wall-tol 0.5`, `--out BENCH_regress.json`.
//!
//! Exit status: 0 on pass (including "no baseline yet"), 1 on
//! regression, 2 on usage/IO errors — so CI can gate on it.

use casa_bench::history::read_history;
use casa_bench::runner::cli_value;
use casa_bench::sentinel::{compare, regress_json, render_report, SentinelConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let history_path = cli_value("--history").unwrap_or_else(|| "BENCH_history.jsonl".to_string());
    let out_path = cli_value("--out").unwrap_or_else(|| "BENCH_regress.json".to_string());
    let mut cfg = SentinelConfig::default();
    if let Some(k) = cli_value("--k") {
        cfg.k = k.parse().expect("--k takes an integer");
    }
    if let Some(tol) = cli_value("--wall-tol") {
        cfg.wall_tol = tol.parse().expect("--wall-tol takes a fraction, e.g. 0.5");
    }

    let log = match read_history(std::path::Path::new(&history_path)) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("sentinel: cannot read {history_path}: {e}");
            return ExitCode::from(2);
        }
    };
    if log.skipped_lines > 0 {
        eprintln!(
            "sentinel: skipped {} unreadable line(s) in {history_path}",
            log.skipped_lines
        );
    }
    let Some(current) = log.records.last() else {
        eprintln!("sentinel: {history_path} has no readable records; run `sweep` first");
        return ExitCode::from(2);
    };

    let report = compare(current, &log.records, &cfg);
    print!("{}", render_report(&report));
    std::fs::write(&out_path, regress_json(&report))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
    if report.pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
