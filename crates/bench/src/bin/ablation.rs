//! Ablation sweep across techniques on every benchmark:
//! baseline (cache only), cache-aware code placement (no SPM),
//! Steinke, CASA-greedy, CASA-exact, and overlay.
//!
//! Usage: `cargo run --release -p casa-bench --bin ablation [scale]
//!         [--trace-out <path>] [--serve <addr>]
//!         [--serve-addr-file <path>] [--serve-linger-ms <ms>]`
//!
//! `--trace-out <path>` (or `CASA_TRACE=1`) instruments the SPM flows
//! and writes a Chrome `trace_event` timeline; `--serve <addr>`
//! exposes live telemetry while the ablation runs.

use casa_bench::experiments::{paper_sizes, LINE_SIZE};
use casa_bench::runner::{cli_obs, cli_scale, prepared};
use casa_core::flow::{run_spm_flow, AllocatorKind, FlowConfig, FlowCtx};
use casa_core::overlay::{run_overlay_flow, OverlayMethod};
use casa_core::placement::run_placement_flow;
use casa_energy::TechParams;
use casa_ilp::SolverOptions;
use casa_mem::cache::CacheConfig;
use casa_workloads::mediabench;

fn main() {
    let scale = cli_scale();
    let cli = cli_obs();
    println!("Ablation — instruction-memory energy (µJ), mid-size SPM per benchmark\n");
    println!(
        "{:<8} {:>10} {:>11} {:>10} {:>10} {:>10} {:>10}",
        "bench", "baseline", "placement", "Steinke", "greedy", "CASA", "overlay4"
    );
    for spec in mediabench::all() {
        let name = spec.name.clone();
        let (cache_size, sizes) = paper_sizes(&name);
        let spm = sizes[sizes.len() / 2];
        let w = prepared(spec, scale, 2004);
        let cache = CacheConfig::direct_mapped(cache_size, LINE_SIZE);
        let run = |alloc| {
            run_spm_flow(
                &w.program,
                &w.profile,
                &w.exec,
                &FlowConfig {
                    cache,
                    spm_size: spm,
                    allocator: alloc,
                    tech: TechParams::default(),
                    trace_cap: None,
                },
                &FlowCtx::observed(&cli.obs),
            )
            .expect("flow")
            .energy_uj()
        };
        let baseline = run(AllocatorKind::None);
        let steinke = run(AllocatorKind::Steinke);
        let greedy = run(AllocatorKind::CasaGreedy);
        let casa = run(AllocatorKind::CasaBb);
        let placement = run_placement_flow(
            &w.program,
            &w.profile,
            &w.exec,
            cache,
            &TechParams::default(),
        )
        .expect("placement flow")
        .energy_uj();
        let overlay = run_overlay_flow(
            &w.program,
            &w.profile,
            &w.exec,
            cache,
            spm,
            4,
            OverlayMethod::CandidateDp,
            &TechParams::default(),
            &SolverOptions::default(),
        )
        .map(|r| r.energy_uj());
        let overlay_str = match overlay {
            Ok(e) => format!("{e:>10.2}"),
            Err(_) => format!("{:>10}", "n/a"),
        };
        println!(
            "{name:<8} {baseline:>10.2} {placement:>11.2} {steinke:>10.2} {greedy:>10.2} {casa:>10.2} {overlay_str}"
        );
    }
    println!("\nplacement = conflict-aware trace reordering, no scratchpad (own trace");
    println!("            granularity: cache-sized, vs. SPM-sized elsewhere; falls back");
    println!("            to program order when reordering does not cut misses);");
    println!("overlay4  = CASA with dynamic copying across 4 execution phases.");
    if let Some(path) = cli.finish() {
        println!("wrote Chrome trace to {}", path.display());
    }
    cli.linger();
}
