//! Regenerates `EXPERIMENTS.md`: runs every experiment of the paper's
//! evaluation and records measured-vs-paper values.
//!
//! ```sh
//! cargo run --release -p casa-bench --bin experiments_md [-- out_path]
//! ```

use casa_bench::experiments::{fig4, fig5, paper_sizes, table1, LOOP_CACHE_SLOTS};
use casa_bench::runner::prepared;
use casa_workloads::mediabench;
use std::fmt::Write as _;

/// Paper Table 1 values: (benchmark, size, CASA µJ, Steinke µJ, Ross µJ).
const PAPER_TABLE1: &[(&str, u32, f64, f64, f64)] = &[
    ("adpcm", 64, 3398.37, 3261.04, 3779.80),
    ("adpcm", 128, 1694.71, 2052.12, 2702.20),
    ("adpcm", 256, 224.55, 856.83, 1480.59),
    ("g721", 128, 7493.75, 8011.68, 8343.61),
    ("g721", 256, 6640.65, 6510.00, 6734.41),
    ("g721", 512, 4941.53, 4951.91, 5616.16),
    ("g721", 1024, 2106.53, 3033.11, 4707.76),
    ("mpeg", 128, 7554.88, 10364.46, 10918.01),
    ("mpeg", 256, 7521.28, 9744.85, 8624.61),
    ("mpeg", 512, 3904.27, 9502.60, 5189.06),
    ("mpeg", 1024, 3400.70, 3518.72, 5261.94),
];

/// Paper per-benchmark averages: (benchmark, vs Steinke %, vs LC %).
const PAPER_AVGS: &[(&str, f64, f64)] = &[
    ("adpcm", 29.0, 44.1),
    ("g721", 8.2, 19.7),
    ("mpeg", 28.0, 26.0),
];

fn paper_improvement(bench: &str, size: u32) -> Option<(f64, f64)> {
    PAPER_TABLE1
        .iter()
        .find(|&&(b, s, ..)| b == bench && s == size)
        .map(|&(_, _, c, st, lc)| (100.0 * (1.0 - c / st), 100.0 * (1.0 - c / lc)))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "EXPERIMENTS.md".to_owned());
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# EXPERIMENTS — paper vs. measured\n\n\
         Reproduction of the evaluation of *Cache-Aware Scratchpad Allocation\n\
         Algorithm* (Verma/Wehmeyer/Marwedel, DATE 2004). Absolute energies are\n\
         **not comparable** (the substrate is a simulator with a cacti-lite\n\
         energy model, not the authors' ARM7T board — see DESIGN.md §2); the\n\
         paper itself reports its figures as percentages of a baseline, and\n\
         those *shapes* are what is reproduced here. Regenerate with:\n\n\
         ```sh\n cargo run --release -p casa-bench --bin experiments_md\n ```\n"
    );

    // ---------- Table 1 ----------
    let _ = writeln!(md, "## Table 1 — overall energy savings\n");
    let _ = writeln!(
        md,
        "Setup: direct-mapped I-cache (adpcm 128 B, g721 1 kB, mpeg 2 kB; 16 B\n\
         lines), scratchpad vs. preloaded loop cache (4 objects) of equal size.\n"
    );
    let _ = writeln!(
        md,
        "| bench | size B | SP(CASA) µJ | SP(Steinke) µJ | LC(Ross) µJ | vs Steinke % (paper) | vs LC % (paper) |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|");
    let mut avg_lines = Vec::new();
    let mut max_solver = 0.0f64;
    for spec in mediabench::all() {
        let name = spec.name.clone();
        let (cache, sizes) = paper_sizes(&name);
        let w = prepared(spec, 1, 2004);
        let block = table1(&w, cache, &sizes);
        for r in &block.rows {
            let (p_st, p_lc) = paper_improvement(&r.benchmark, r.mem_size).expect("paper row");
            let _ = writeln!(
                md,
                "| {} | {} | {:.2} | {:.2} | {:.2} | {:+.1} ({:+.1}) | {:+.1} ({:+.1}) |",
                r.benchmark,
                r.mem_size,
                r.sp_casa_uj,
                r.sp_steinke_uj,
                r.lc_ross_uj,
                r.casa_vs_steinke_pct(),
                p_st,
                r.casa_vs_lc_pct(),
                p_lc
            );
            max_solver = max_solver.max(r.casa_solver_secs);
        }
        let paper = PAPER_AVGS.iter().find(|&&(b, ..)| b == name).expect("avg");
        avg_lines.push(format!(
            "| {} | {:+.1} ({:+.1}) | {:+.1} ({:+.1}) |",
            name,
            block.avg_vs_steinke(),
            paper.1,
            block.avg_vs_lc(),
            paper.2
        ));
    }
    let _ = writeln!(
        md,
        "\n**Averages** (measured (paper)):\n\n| bench | CASA vs Steinke % | CASA vs LC % |\n|---|---|---|"
    );
    for l in &avg_lines {
        let _ = writeln!(md, "{l}");
    }
    let _ = writeln!(
        md,
        "\nShape checks that hold: CASA wins on average on every benchmark;\n\
         individual rows can go negative (the paper has adpcm@64 = −4.2 % and\n\
         g721@256 = −2.0 %); the largest wins appear where the scratchpad\n\
         finally covers the thrashing working set; the loop cache falls\n\
         further behind as sizes grow and its 4-object limit binds.\n"
    );

    // ---------- Figure 4 ----------
    let w = prepared(mediabench::mpeg(), 1, 2004);
    let _ = writeln!(
        md,
        "## Figure 4 — CASA vs. Steinke, MPEG, 2 kB direct-mapped I-cache\n\n\
         All values as % of Steinke (= 100%), as in the paper's bar chart.\n"
    );
    let _ = writeln!(
        md,
        "| SPM B | SP accesses % | I$ accesses % | I$ misses % | energy % |\n|---|---|---|---|---|"
    );
    let rows = fig4(&w, 2048, &[128, 256, 512, 1024]);
    for r in &rows {
        let _ = writeln!(
            md,
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} |",
            r.spm_size, r.spm_accesses_pct, r.cache_accesses_pct, r.cache_misses_pct, r.energy_pct
        );
    }
    let inversion = rows
        .iter()
        .filter(|r| r.energy_pct < 100.0 && r.cache_accesses_pct > 100.0)
        .count();
    let _ = writeln!(
        md,
        "\nPaper shape: CASA shows **fewer scratchpad accesses and more I-cache\n\
         accesses than Steinke, yet lower energy**, because it removes misses\n\
         rather than hits (the figure's apparent paradox, §6). Measured: the\n\
         inversion (I$ accesses > 100 % while energy < 100 %) holds at {inversion}\n\
         of 4 sizes; misses stay well below 100 % wherever CASA wins.\n"
    );

    // ---------- Figure 5 ----------
    let _ = writeln!(
        md,
        "## Figure 5 — SPM(CASA) vs. loop cache(Ross), MPEG\n\n\
         All values as % of the loop-cache system (= 100%); {LOOP_CACHE_SLOTS} preloadable objects.\n"
    );
    let _ = writeln!(
        md,
        "| size B | SPM/LC accesses % | I$ accesses % | I$ misses % | energy % |\n|---|---|---|---|---|"
    );
    let rows5 = fig5(&w, 2048, &[128, 256, 512, 1024]);
    for r in &rows5 {
        let _ = writeln!(
            md,
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} |",
            r.size, r.local_accesses_pct, r.cache_accesses_pct, r.cache_misses_pct, r.energy_pct
        );
    }
    let misses_fall = rows5
        .windows(2)
        .all(|w| w[1].cache_misses_pct <= w[0].cache_misses_pct + 5.0);
    let always_wins = rows5.iter().all(|r| r.energy_pct < 100.0);
    let _ = writeln!(
        md,
        "\nPaper shape: as sizes grow the scratchpad (unlimited object count)\n\
         pulls ahead of the 4-object loop cache — relative I-cache misses\n\
         fall monotonically and energy stays below 100 % at every size\n\
         (paper: 26 % average for mpeg). Measured: misses fall monotonically\n\
         = {misses_fall}; SPM wins at every size = {always_wins}.\n"
    );

    // ---------- §4 runtime claim ----------
    let _ = writeln!(
        md,
        "## §4 runtime claim — \"maximum ILP runtime below one second\"\n\n\
         Measured maximum CASA allocation time over every Table 1 row:\n\
         **{max_solver:.4} s** (specialized exact branch & bound; see\n\
         `cargo bench -p casa-bench --bench solver` for the generic-ILP\n\
         ablation, including the paper's (13)–(15) linearization).\n"
    );

    std::fs::write(&out_path, md).expect("write EXPERIMENTS.md");
    println!("wrote {out_path} (max CASA solver time {max_solver:.4} s)");
}
