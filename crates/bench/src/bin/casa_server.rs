//! casa-server — allocation as a service.
//!
//! A long-lived HTTP service that mounts `POST /solve` on the same
//! std-only listener that serves the live telemetry routes
//! (`/metrics`, `/healthz`, `/events`, `/quitquitquit`). Requests
//! carry either an inline conflict graph or a workload name plus an
//! allocator, capacity, and budget; replies are the deterministic
//! JSON of `casa_core::server`, with the cache disposition in the
//! `X-Casa-Cache` header (`hit` / `warm` / `miss`).
//!
//! Usage: `cargo run --release -p casa-bench --bin casa-server --
//!         [--listen 127.0.0.1:0] [--addr-file <path>]
//!         [--workers N] [--queue-cap N] [--cache-cap N]
//!         [--max-budget-nodes N] [--max-seconds N]
//!         [--flight-dump <path>]`
//!
//! Every response carries an `X-Casa-Request-Id` correlation header
//! (client-supplied or minted), each `/solve` reply's solve
//! attribution (cache outcome, gap, nodes, queue wait, worker shard)
//! lands in the request journal at `/requests.json` and the access
//! log — see the "Request observability" section of the README.
//! `--flight-dump` sets the sink slow/degraded requests auto-dump to.
//!
//! `--addr-file` writes the bound address (useful with port 0) once
//! the service is up — CI polls for the file, then points the load
//! generator at it. `--max-seconds` is a safety timeout: the server
//! exits on `/quitquitquit` or after that many seconds, whichever
//! comes first, so an orphaned CI server can never outlive its job.

use casa_bench::runner::cli_value;
use casa_core::flow::FlowConfig;
use casa_core::server::{
    AllocService, ParsedRequest, ServiceConfig, SolveJob, SubmitError, WorkloadRequest,
    DEFAULT_MAX_NODES,
};
use casa_core::{AllocatorKind, ConflictGraph};
use casa_energy::{EnergyTable, TechParams};
use casa_mem::cache::CacheConfig;
use casa_mem::{simulate, HierarchyConfig};
use casa_obs::{json_escape, Obs, Request, Response, Router, ServeOptions};
use casa_trace::trace::{form_traces, TraceConfig};
use casa_trace::Layout;
use casa_workloads::mediabench;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Trip-count scale ceiling for workload-form requests: graph
/// preparation runs on the connection thread, so an absurd scale must
/// not be able to pin it.
const MAX_SCALE: u64 = 16;

/// Resolved-workload memo: benchmark preparation (compile → walk →
/// trace → profile-simulate → conflict graph) costs orders of
/// magnitude more than most solves, and the result is a pure function
/// of the request's workload parameters.
struct WorkloadMemo {
    cache: Mutex<HashMap<String, Arc<(ConflictGraph, EnergyTable)>>>,
    obs: Obs,
}

impl WorkloadMemo {
    fn resolve(&self, w: &WorkloadRequest) -> Result<Arc<(ConflictGraph, EnergyTable)>, String> {
        if w.scale > MAX_SCALE {
            return Err(format!("workload.scale must be <= {MAX_SCALE}"));
        }
        let spec = mediabench::all()
            .into_iter()
            .find(|s| s.name == w.benchmark)
            .ok_or_else(|| format!("unknown benchmark {:?}", w.benchmark))?;
        let cache_cfg = w.cache.unwrap_or_else(|| {
            let (size, _) = casa_bench::experiments::paper_sizes(&w.benchmark);
            CacheConfig::direct_mapped(size, casa_bench::experiments::LINE_SIZE)
        });
        let key = format!(
            "{}:{}:{}:{}:{}:{}:{}",
            w.benchmark,
            w.scale,
            w.seed,
            cache_cfg.size,
            cache_cfg.line_size,
            cache_cfg.associativity,
            w.capacity,
        );
        if let Some(hit) = self
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.obs.add("server.workload_memo_hits_total", 1);
            return Ok(Arc::clone(hit));
        }
        let prepared = casa_bench::runner::prepared(spec, w.scale, w.seed);
        let flow = FlowConfig::new(cache_cfg, w.capacity, AllocatorKind::CasaBb);
        let traces = form_traces(
            &prepared.program,
            &prepared.profile,
            TraceConfig::new(flow.effective_trace_cap(), cache_cfg.line_size),
            &Obs::disabled(),
        );
        let layout = Layout::initial(&prepared.program, &traces);
        let hierarchy = HierarchyConfig::spm_system(cache_cfg, w.capacity);
        let sim = simulate(
            &prepared.program,
            &traces,
            &layout,
            &prepared.exec,
            &hierarchy,
        )
        .map_err(|e| format!("profiling simulation failed: {e}"))?;
        let graph = ConflictGraph::from_simulation(&traces, &sim);
        let table = EnergyTable::build(
            cache_cfg.size,
            cache_cfg.line_size,
            cache_cfg.associativity,
            w.capacity,
            None,
            &TechParams::default(),
        );
        let entry = Arc::new((graph, table));
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, Arc::clone(&entry));
        self.obs.add("server.workload_memo_misses_total", 1);
        Ok(entry)
    }
}

fn error_json(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", json_escape(message))
}

fn solve_response(service: &AllocService, job: SolveJob, req_id: &str) -> Response {
    match service.submit_tagged(job, Some(req_id)) {
        Ok(reply) => Response::json(200, reply.body.clone())
            .with_header("X-Casa-Cache", reply.cache.as_str())
            .with_solve(reply.attribution),
        Err(SubmitError::Overloaded) => Response::json(429, error_json("admission queue full")),
        Err(SubmitError::Closed) => Response::json(503, error_json("service shut down")),
    }
}

/// CI hook: with `CASA_SELFTEST_SLOW_REQ=<ms>` set, requests whose
/// correlation ID starts with `slow-` sleep that long before solving —
/// a deterministic way to drive the slow-request flight capture
/// (`CASA_SLOW_REQ_MS`) without making every request slow.
fn selftest_slow_req(req_id: &str) {
    if !req_id.starts_with("slow-") {
        return;
    }
    if let Some(ms) = std::env::var("CASA_SELFTEST_SLOW_REQ")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

fn handle_solve(service: &AllocService, memo: &WorkloadMemo, req: &Request) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::json(400, error_json("request body is not UTF-8"));
    };
    selftest_slow_req(&req.req_id);
    match casa_core::server::parse_request(body) {
        Ok(ParsedRequest::Graph(job)) => solve_response(service, job, &req.req_id),
        Ok(ParsedRequest::Workload(w)) => match memo.resolve(&w) {
            Ok(resolved) => {
                let (graph, table) = (&resolved.0, &resolved.1);
                solve_response(
                    service,
                    SolveJob {
                        graph: graph.clone(),
                        table: *table,
                        capacity: w.capacity,
                        allocator: w.allocator,
                        budget_nodes: w.budget_nodes,
                        budget_ms: w.budget_ms,
                        explain: w.explain,
                    },
                    &req.req_id,
                )
            }
            Err(e) => Response::json(400, error_json(&e)),
        },
        // Parse refusals carry their own structured 400 body — version
        // refusals include the `supported` list clients negotiate on.
        Err(e) => Response::json(400, e.http_body()),
    }
}

const HELP: &str = "casa-server: POST /solve with a JSON allocation request.\n\
    Request: {\"v\":1, \"graph\":{\"fetches\":[..],\"sizes\":[..],\"edges\":[[i,j,m],..]},\n\
    \x20         \"table\":{..} | \"cache\":{\"size\":..,\"line\":..,\"assoc\":..},\n\
    \x20         \"capacity\":N, \"allocator\":\"casa-bb\", \"budget\":{\"nodes\":N,\"ms\":N}}\n\
    or       {\"workload\":{\"benchmark\":\"adpcm\",\"scale\":1,\"seed\":42}, \"capacity\":N, ..}\n\
    \"v\" is the wire-schema version (absent = 1); unknown versions get a\n\
    structured 400 listing the supported ones.\n\
    CASA_SESSION_DIR=<dir> captures every solved request as a replayable\n\
    .casa-session file named by its X-Casa-Request-Id (see `diag replay`).\n\
    \"explain\":true additionally captures a decision-provenance document\n\
    as a <stem>.explain.json sibling (misses only; see `diag explain`).\n\
    Telemetry: /metrics /healthz /snapshot.json /events; /quitquitquit stops the server.\n";

fn flag_u64(name: &str, default: u64) -> u64 {
    cli_value(&format!("--{name}")).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--{name} wants an integer, got {v:?}"))
    })
}

fn main() {
    let listen = cli_value("--listen").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let cfg = ServiceConfig {
        workers: flag_u64("workers", 2) as usize,
        queue_cap: flag_u64("queue-cap", 16) as usize,
        cache_cap: flag_u64("cache-cap", 256) as usize,
        max_nodes: flag_u64("max-budget-nodes", DEFAULT_MAX_NODES),
        session_dir: std::env::var("CASA_SESSION_DIR")
            .ok()
            .filter(|d| !d.is_empty())
            .map(Into::into),
    };
    let max_seconds = flag_u64("max-seconds", 600);

    let obs = Obs::enabled();
    if let Some(path) = cli_value("--flight-dump") {
        obs.set_flight_sink(Some(path.into()));
    }
    let service = Arc::new(AllocService::start(&cfg, &obs));
    let memo = Arc::new(WorkloadMemo {
        cache: Mutex::new(HashMap::new()),
        obs: obs.clone(),
    });
    let router: Router = {
        let service = Arc::clone(&service);
        let memo = Arc::clone(&memo);
        Arc::new(
            move |req: &Request| match (req.method.as_str(), req.path.as_str()) {
                ("POST", "/solve") => Some(handle_solve(&service, &memo, req)),
                ("GET", "/") => Some(Response::text(200, HELP)),
                _ => None,
            },
        )
    };

    let mut handle =
        casa_obs::serve::start_with(&obs, &listen, ServeOptions::default(), Some(router))
            .expect("bind casa-server listener");
    let addr = handle.local_addr();
    if let Some(path) = cli_value("--addr-file") {
        std::fs::write(&path, addr.to_string()).expect("write --addr-file");
    }
    println!("casa-server listening on http://{addr} (quit: POST /quitquitquit; safety timeout {max_seconds}s)");

    handle.wait_quit(Duration::from_secs(max_seconds));
    handle.shutdown();
    // The listener drained first, so every admitted request has its
    // reply written; dropping the handle releases the router's clone
    // of the service, and the last drop joins the solver workers.
    drop(handle);
    drop(memo);
    drop(service);
    println!("casa-server: shut down cleanly");
}
