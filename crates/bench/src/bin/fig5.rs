//! Figure 5 reproduction: scratchpad + CASA vs. preloaded loop cache
//! + Ross on MPEG, all parameters as % of the loop cache (= 100%).
//!
//! Usage: `cargo run --release -p casa-bench --bin fig5 [scale]`

use casa_bench::experiments::fig5;
use casa_bench::runner::{cli_scale, prepared};
use casa_workloads::mediabench;

fn main() {
    let scale = cli_scale();
    let w = prepared(mediabench::mpeg(), scale, 2004);
    println!("Figure 5 — SPM(CASA) vs. loop cache(Ross), MPEG, 2 kB I-cache");
    println!("(all values as % of the loop-cache system = 100%)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>10}",
        "size [B]", "SP/LC acc %", "I$ acc %", "I$ miss %", "energy %"
    );
    for r in fig5(&w, 2048, &[128, 256, 512, 1024]) {
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>14.1} {:>10.1}",
            r.size, r.local_accesses_pct, r.cache_accesses_pct, r.cache_misses_pct, r.energy_pct
        );
    }
    println!("\npaper shape: SPM accesses overtake LC as size grows; misses and energy < 100");
}
