//! Figure 4 reproduction: CASA vs. Steinke on MPEG, 2 kB
//! direct-mapped I-cache, all parameters as % of Steinke (= 100%).
//!
//! Usage: `cargo run --release -p casa-bench --bin fig4 [scale]`

use casa_bench::experiments::fig4;
use casa_bench::runner::{cli_scale, prepared};
use casa_workloads::mediabench;

fn main() {
    let scale = cli_scale();
    let w = prepared(mediabench::mpeg(), scale, 2004);
    println!("Figure 4 — CASA vs. Steinke, MPEG, 2 kB direct-mapped I-cache");
    println!("(all values as % of Steinke = 100%)\n");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>10}",
        "SPM [B]", "SP acc %", "I$ acc %", "I$ miss %", "energy %"
    );
    for r in fig4(&w, 2048, &[128, 256, 512, 1024]) {
        println!(
            "{:>8} {:>12.1} {:>14.1} {:>14.1} {:>10.1}",
            r.spm_size, r.spm_accesses_pct, r.cache_accesses_pct, r.cache_misses_pct, r.energy_pct
        );
    }
    println!("\npaper shape: SP acc < 100, I$ acc > 100, I$ miss << 100, energy < 100");
}
