//! Diagnostics toolbox, one subcommand per job:
//!
//! ```text
//! diag replay <file> [--divergence] [--report-out <path>]
//! diag tail <addr>
//! diag post <addr> <body-file> [--req-id <id>] [--out <path>]
//! diag probe <addr> [--quick] [--expect <family>]... [--expect-spans] [--quit]
//! diag flight <path>
//! diag render-trace <path>
//! diag tree <path> [--json]
//! diag explain <path> [--top <n>]
//! diag help [<subcommand>]
//! diag                       # workload calibration tables (no subcommand)
//! ```
//!
//! `replay` loads a recorded `.casa-session` (or its `.json` sibling),
//! re-executes the solve from the recorded decision log, and asserts
//! layout, energy, gap and report byte-equivalence — exit 0 and a
//! `replay <file>: status=.. gap=.. nodes=..` line on success, exit 1
//! with the first mismatch otherwise. `--divergence` instead re-solves
//! from scratch and pinpoints the first decision where the fresh
//! search departs from the recording; `--report-out <path>` writes the
//! replay-verified response JSON.
//! `tail` fetches `/requests.json` and prints one greppable line per
//! journal entry (ID, route, status, latency, and — for `/solve` —
//! cache outcome, gap, nodes, queue wait, worker shard).
//! `post` POSTs a body file to `/solve` with an optional `--req-id`
//! correlation header, asserts the 200 and the ID echo, and writes the
//! reply body to `--out` (or stdout).
//! `probe` is a std-only HTTP client for the live telemetry service:
//! it checks `/healthz`, validates `/metrics` as Prometheus text
//! exposition, parses `/snapshot.json` and `/flight.json`, and — with
//! `--expect-spans` — demands span frames over `/events`. `--quick`
//! only does the healthz + exposition checks (for polling until a
//! background run is ready); `--expect <family>` (repeatable) asserts
//! a metric family is declared; `--quit` sends `/quitquitquit` at the
//! end. Any failed check panics, so CI fails loudly.
//! `flight` re-parses a flight-recorder dump (written on panic, on
//! engine degradation, or by `Obs::dump_flight`) and prints its events
//! as a time-ordered table. `render-trace` re-parses a captured Chrome
//! `trace_event` file and prints its span tree.
//! `tree` renders a captured B&B search-tree log — either one
//! `casa_tree` document (a casa-server `<stem>.tree.json` capture) or
//! a whole `casa_tree_sweep` document (`sweep --tree-out`) — as a
//! convergence report per tree: event breakdown by kind, incumbent
//! trajectory with the local bound at each adoption, and the deepest
//! explored node. Values are in the engine's recorded orientation
//! (savings for the DFS allocator, signed energy objective for the
//! ILP engine). `--json` emits the same convergence report as a
//! deterministic sorted-key JSON document instead of text.
//! `explain` renders a captured `casa_explain` document (a casa-server
//! `<stem>.explain.json` capture, or a whole `casa_explain_sweep`
//! from `sweep --explain-out`) as a decision report per cell: the
//! capacity shadow-price line, the top-N regret table (`--top <n>`,
//! default 10), and the flip-distance ranking.
//!
//! Without a subcommand, `diag` prints the workload calibration
//! tables (code size, hot-set size, baseline cache behaviour,
//! conflict-graph density, model fidelity) used to tune the synthetic
//! benchmarks; `--trace-out <path>` (or `CASA_TRACE=1`) instruments
//! the flows and appends a per-phase span-tree table.
//!
//! The pre-subcommand spellings (`--render-trace`, `--flight`,
//! `--probe`, `--probe-quick`, `--tail`, `--post`) keep working as
//! aliases with a deprecation note on stderr.

use casa_bench::experiments::{paper_sizes, LINE_SIZE};
use casa_bench::runner::{cli_obs, cli_value, prepared};
use casa_core::flow::{run_spm_flow, AllocatorKind, FlowConfig, FlowCtx};
use casa_energy::TechParams;
use casa_mem::cache::CacheConfig;
use casa_obs::{
    collect_sse, header_value, http_get, http_request, render_flight_table, render_span_table,
    validate_exposition, ArgValue, EventKind, FlightEvent, FlightKind, TraceEvent,
    REQUEST_ID_HEADER,
};
use casa_workloads::mediabench;
use std::net::SocketAddr;
use std::time::Duration;

/// Rebuild span/instant events from a Chrome `trace_event` JSON file.
/// Parent links are not stored in the Chrome format; the span-tree
/// renderer reconstructs nesting from time containment per track.
fn parse_chrome_trace(json: &str) -> Vec<TraceEvent> {
    let v = serde::json::parse(json).expect("malformed trace JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    events
        .iter()
        .filter_map(|e| {
            let kind = match e.get("ph")?.as_str()? {
                "X" => EventKind::Span,
                "i" => EventKind::Instant,
                _ => return None,
            };
            Some(TraceEvent {
                name: e.get("name")?.as_str()?.to_string(),
                kind,
                tid: e.get("tid")?.as_f64()? as u32,
                parent: None,
                ts_us: e.get("ts")?.as_f64()? as u64,
                dur_us: e.get("dur").and_then(|d| d.as_f64()).map(|d| d as u64),
                args: Vec::new(),
            })
        })
        .collect()
}

/// Rebuild [`FlightEvent`]s from a flight-recorder dump
/// (`flight_dump_json` output). Unknown kinds are skipped rather than
/// fatal, so a newer dump still renders on an older `diag`.
fn parse_flight_dump(json: &str) -> (Vec<FlightEvent>, u64, u64) {
    let v = serde::json::parse(json).expect("malformed flight-dump JSON");
    assert!(
        v.get("casa_flight").and_then(|x| x.as_f64()).is_some(),
        "not a flight dump (missing casa_flight version field)"
    );
    let capacity = v.get("capacity").and_then(|x| x.as_f64()).unwrap_or(0.0) as u64;
    let dropped = v.get("dropped").and_then(|x| x.as_f64()).unwrap_or(0.0) as u64;
    let events = v
        .get("events")
        .and_then(|e| e.as_array())
        .expect("events array")
        .iter()
        .filter_map(|e| {
            let value = e.get("value").and_then(|val| {
                val.as_str()
                    .map(|s| ArgValue::Str(s.to_string()))
                    .or_else(|| val.as_f64().map(ArgValue::F64))
            });
            Some(FlightEvent {
                seq: e.get("seq")?.as_f64()? as u64,
                ts_us: e.get("ts_us")?.as_f64()? as u64,
                kind: FlightKind::from_tag(e.get("kind")?.as_str()?)?,
                name: e.get("name")?.as_str()?.to_string(),
                value,
            })
        })
        .collect();
    (events, capacity, dropped)
}

/// `--probe` / `--probe-quick`: validate a live telemetry server from
/// the outside with nothing but std TCP. Every failed check panics —
/// this is a CI gate, and CI wants loud failures.
fn probe(addr: &str, quick: bool) {
    let addr: SocketAddr = addr
        .parse()
        .unwrap_or_else(|e| panic!("--probe takes host:port, got {addr}: {e}"));
    let t = Duration::from_secs(5);
    let get = |path: &str| -> (u16, String) {
        http_get(&addr, path, t).unwrap_or_else(|e| panic!("GET {path} on {addr}: {e}"))
    };

    let (code, body) = get("/healthz");
    assert_eq!(
        (code, body.as_str()),
        (200, "ok\n"),
        "unhealthy exporter at {addr}"
    );

    let (code, text) = get("/metrics");
    assert_eq!(code, 200, "/metrics returned {code}");
    let stats = validate_exposition(&text)
        .unwrap_or_else(|e| panic!("invalid Prometheus exposition from {addr}: {e}"));
    println!(
        "probe {addr}: /metrics is valid exposition ({} families, {} samples)",
        stats.families, stats.samples
    );

    // Families CI requires (`--expect <family>`, repeatable). Presence
    // means a `# TYPE <family> <kind>` declaration, which the exporter
    // writes for every family it serves.
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a != "--expect" {
            continue;
        }
        let fam = args.next().expect("--expect needs a metric family name");
        let declared = text.lines().any(|l| {
            l.strip_prefix("# TYPE ")
                .and_then(|rest| rest.split_whitespace().next())
                == Some(fam.as_str())
        });
        assert!(declared, "family `{fam}` missing from /metrics:\n{text}");
        println!("  expected family `{fam}`: present");
    }

    if !quick {
        let (code, body) = get("/snapshot.json");
        assert_eq!(code, 200, "/snapshot.json returned {code}");
        serde::json::parse(&body).expect("/snapshot.json is not valid JSON");
        let (code, body) = get("/flight.json");
        assert_eq!(code, 200, "/flight.json returned {code}");
        let flight = serde::json::parse(&body).expect("/flight.json is not valid JSON");
        assert!(
            flight.get("casa_flight").is_some(),
            "/flight.json is not a flight dump"
        );
        println!("  /snapshot.json and /flight.json parse");

        if std::env::args().any(|a| a == "--expect-spans") {
            // Subscribing replays the collector's history first, so the
            // probe sees the run's phase spans even after the sweep is
            // done and only lingering for scrapers. By then every span
            // is closed, so history replays as span_end frames (which
            // carry name, start and duration); span_begin frames only
            // stream live while a phase is still open.
            let (frames, _pings) = collect_sse(&addr, "/events", Duration::from_millis(1500), 64)
                .unwrap_or_else(|e| panic!("GET /events on {addr}: {e}"));
            let is_span = |ev: &str| ev == "span_begin" || ev == "span_end";
            let spans = frames.iter().filter(|(ev, _)| is_span(ev)).count();
            let cells = frames
                .iter()
                .filter(|(ev, data)| is_span(ev) && data.contains("\"name\":\"cell\""))
                .count();
            assert!(spans > 0, "no span frames over /events (got {frames:?})");
            assert!(
                cells > 0,
                "no `cell` phase span over /events (got {frames:?})"
            );
            println!(
                "  /events streamed {} frame(s) ({spans} span frames, {cells} covering `cell`)",
                frames.len()
            );
        }
    }

    if std::env::args().any(|a| a == "--quit") {
        let (code, _) = get("/quitquitquit");
        assert_eq!(code, 200, "/quitquitquit returned {code}");
        println!("  released the server via /quitquitquit");
    }
    println!("probe {addr}: all checks passed");
}

/// `--tail <addr>`: fetch the request journal and print one greppable
/// line per entry, oldest first.
fn tail(addr: &str) {
    let addr: SocketAddr = addr
        .parse()
        .unwrap_or_else(|e| panic!("--tail takes host:port, got {addr}: {e}"));
    let t = Duration::from_secs(5);
    let (code, body) = http_get(&addr, "/requests.json", t)
        .unwrap_or_else(|e| panic!("GET /requests.json on {addr}: {e}"));
    assert_eq!(code, 200, "/requests.json returned {code}");
    let v = serde::json::parse(&body).expect("/requests.json is not valid JSON");
    let cap = v.get("cap").and_then(|x| x.as_f64()).unwrap_or(0.0) as u64;
    let dropped = v.get("dropped").and_then(|x| x.as_f64()).unwrap_or(0.0) as u64;
    let entries = v
        .get("entries")
        .and_then(|e| e.as_array())
        .expect("entries array");
    println!(
        "request journal of {addr}: {} entr(ies), cap {cap}, {dropped} dropped",
        entries.len()
    );
    for e in entries {
        let f = |k: &str| e.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0) as u64;
        let s = |k: &str| e.get(k).and_then(|x| x.as_str()).unwrap_or("-").to_string();
        let mut line = format!(
            "  #{:<6} {:<16} {:<4} {:<16} {} in {} out {} dur_us {}",
            f("seq"),
            s("id"),
            s("method"),
            s("path"),
            f("status"),
            f("bytes_in"),
            f("bytes_out"),
            f("handler_us"),
        );
        if let Some(solve) = e.get("solve").filter(|s| s.as_object().is_some()) {
            let gap = solve
                .get("gap")
                .and_then(|x| x.as_f64())
                .map_or("null".to_string(), |g| format!("{g}"));
            line.push_str(&format!(
                " | cache={} status={} gap={gap} nodes={} wait_us={} worker={}",
                solve.get("cache").and_then(|x| x.as_str()).unwrap_or("-"),
                solve.get("status").and_then(|x| x.as_str()).unwrap_or("-"),
                solve.get("nodes").and_then(|x| x.as_f64()).unwrap_or(0.0) as u64,
                solve
                    .get("queue_wait_us")
                    .and_then(|x| x.as_f64())
                    .unwrap_or(0.0) as u64,
                solve.get("worker").and_then(|x| x.as_f64()).unwrap_or(0.0) as u64,
            ));
        }
        println!("{line}");
    }
}

/// `--post <addr> <body-file>`: POST a solve request with an optional
/// `--req-id` correlation header, assert the 200 and the ID echo, and
/// write the reply body to `--out` (else stdout).
fn post_solve(addr: &str, body_path: &str) {
    let addr: SocketAddr = addr
        .parse()
        .unwrap_or_else(|e| panic!("--post takes host:port, got {addr}: {e}"));
    let body =
        std::fs::read_to_string(body_path).unwrap_or_else(|e| panic!("read {body_path}: {e}"));
    let req_id = cli_value("--req-id");
    let mut headers: Vec<(&str, &str)> = Vec::new();
    if let Some(id) = &req_id {
        headers.push((REQUEST_ID_HEADER, id));
    }
    let (code, resp_headers, resp) = http_request(
        &addr,
        "POST",
        "/solve",
        &headers,
        Some(("application/json", &body)),
        Duration::from_secs(30),
    )
    .unwrap_or_else(|e| panic!("POST /solve on {addr}: {e}"));
    assert_eq!(code, 200, "POST /solve returned {code}: {resp}");
    let echoed = header_value(&resp_headers, REQUEST_ID_HEADER)
        .unwrap_or_else(|| panic!("no {REQUEST_ID_HEADER} header in reply"));
    if let Some(id) = &req_id {
        assert_eq!(echoed, id, "server echoed a different request ID");
    }
    let cache = header_value(&resp_headers, "X-Casa-Cache").unwrap_or("-");
    eprintln!("post {addr}: 200, id {echoed}, cache {cache}");
    match cli_value("--out") {
        Some(path) => std::fs::write(&path, &resp).unwrap_or_else(|e| panic!("write {path}: {e}")),
        None => println!("{resp}"),
    }
}

/// `replay <file>`: load a recorded session, re-execute it from the
/// decision log, and assert byte-equivalence with the recording.
fn replay_cmd(rest: &[String]) {
    let file = rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| {
            panic!("usage: diag replay <file> [--divergence] [--report-out <path>]")
        });
    let session = casa_core::Session::load(std::path::Path::new(file))
        .unwrap_or_else(|e| panic!("load {file}: {e}"));
    if rest.iter().any(|a| a == "--divergence") {
        // Divergence analysis: a fresh cold solve of the recorded
        // request, diffed decision-by-decision against the log. A
        // warm-started server capture legitimately diverges at its
        // first incumbent; the point of this mode is to say exactly
        // where and how.
        match session.divergence() {
            Ok(None) => println!("replay {file}: no divergence (cold re-solve matches the log)"),
            Ok(Some(d)) => {
                eprintln!("replay {file}: DIVERGENCE: {d}");
                std::process::exit(1);
            }
            Err(e) => panic!("replay {file}: request not re-solvable: {e}"),
        }
        return;
    }
    match session.replay() {
        Ok(summary) => {
            let gap = summary.gap.map_or("null".to_string(), |g| format!("{g}"));
            println!(
                "replay {file}: status={} gap={gap} nodes={}",
                summary.status, summary.nodes
            );
            if let Some(out) = cli_value("--report-out") {
                // replay() proved the regenerated response equals the
                // recorded bytes, so this *is* the regenerated report.
                std::fs::write(&out, session.report.as_bytes())
                    .unwrap_or_else(|e| panic!("write {out}: {e}"));
            }
        }
        Err(e) => {
            eprintln!("replay {file}: MISMATCH: {e}");
            std::process::exit(1);
        }
    }
}

/// Render one captured search tree as a convergence report: totals,
/// event breakdown by kind, the incumbent trajectory (with the local
/// bound at each adoption), and the deepest explored node.
fn render_tree_report(log: &casa_ilp::tree::TreeLog) -> String {
    use casa_ilp::tree::TreeEventKind;
    use std::fmt::Write as _;
    let fnum = |v: f64| {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "-".to_string()
        }
    };
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {} node(s) explored, {} event(s) captured (cap {}, {} dropped)",
        log.nodes,
        log.events.len(),
        log.cap,
        log.dropped
    );
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for e in &log.events {
        *counts.entry(e.kind.as_str()).or_default() += 1;
    }
    let breakdown: Vec<String> = counts.iter().map(|(k, c)| format!("{k} {c}")).collect();
    let _ = writeln!(s, "  events: {}", breakdown.join(", "));
    let pruned = counts.get("prune_bound").copied().unwrap_or(0)
        + counts.get("prune_infeasible").copied().unwrap_or(0);
    let opened = counts.get("open").copied().unwrap_or(0);
    if opened > 0 {
        let _ = writeln!(
            s,
            "  pruning: {pruned}/{opened} opened node(s) cut ({:.1}%)",
            100.0 * pruned as f64 / opened as f64
        );
    }
    if let Some(deep) = log.events.iter().max_by_key(|e| e.depth) {
        let _ = writeln!(s, "  deepest node: #{} at depth {}", deep.node, deep.depth);
    }
    let incumbents: Vec<_> = log
        .events
        .iter()
        .filter(|e| e.kind == TreeEventKind::Incumbent)
        .collect();
    if incumbents.is_empty() {
        let _ = writeln!(s, "  no incumbent adopted within the captured window");
    } else {
        let _ = writeln!(s, "  convergence ({} incumbent(s)):", incumbents.len());
        let _ = writeln!(s, "    {:>10} {:>14} {:>14}", "node", "incumbent", "bound");
        for e in &incumbents {
            let _ = writeln!(
                s,
                "    {:>10} {:>14} {:>14}",
                e.node,
                fnum(e.best),
                fnum(e.bound)
            );
        }
    }
    s
}

/// The convergence report of one tree as a deterministic sorted-key
/// JSON object (what `diag tree --json` emits): totals, event
/// breakdown, pruning, deepest node and the incumbent trajectory —
/// derived from the log only, so identical logs give identical bytes.
fn tree_report_json(log: &casa_ilp::tree::TreeLog) -> String {
    use casa_ilp::tree::TreeEventKind;
    use casa_obs::jnum;
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for e in &log.events {
        *counts.entry(e.kind.as_str()).or_default() += 1;
    }
    let events: Vec<String> = counts.iter().map(|(k, c)| format!("\"{k}\":{c}")).collect();
    let pruned = counts.get("prune_bound").copied().unwrap_or(0)
        + counts.get("prune_infeasible").copied().unwrap_or(0);
    let deepest = log
        .events
        .iter()
        .max_by_key(|e| e.depth)
        .map_or("null".to_string(), |e| {
            format!("{{\"depth\":{},\"node\":{}}}", e.depth, e.node)
        });
    let incumbents: Vec<String> = log
        .events
        .iter()
        .filter(|e| e.kind == TreeEventKind::Incumbent)
        .map(|e| {
            format!(
                "{{\"best\":{},\"bound\":{},\"node\":{}}}",
                jnum(e.best),
                jnum(e.bound),
                e.node
            )
        })
        .collect();
    format!(
        "{{\"cap\":{},\"casa_tree_report\":1,\"deepest\":{deepest},\"dropped\":{},\
         \"events\":{{{}}},\"incumbents\":[{}],\"nodes\":{},\"pruned\":{pruned}}}",
        log.cap,
        log.dropped,
        events.join(","),
        incumbents.join(","),
        log.nodes,
    )
}

/// `tree <path> [--json]`: render a `casa_tree` or `casa_tree_sweep`
/// document as per-tree convergence reports — human text by default,
/// a deterministic JSON document with `--json`.
fn tree_cmd(path: &str, as_json: bool) {
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let v = serde::json::parse(&json).unwrap_or_else(|e| panic!("{path}: malformed JSON: {e}"));
    if v.get("casa_tree_sweep").is_some() {
        let cells = v
            .get("cells")
            .and_then(|c| c.as_array())
            .expect("cells array");
        let parsed: Vec<(&str, casa_ilp::tree::TreeLog)> = cells
            .iter()
            .map(|cell| {
                let key = cell.get("key").and_then(|k| k.as_str()).unwrap_or("?");
                let tree = cell.get("tree").expect("cell tree");
                let log = casa_ilp::tree::parse_tree_value(tree)
                    .unwrap_or_else(|e| panic!("{path}: cell {key}: {e}"));
                (key, log)
            })
            .collect();
        if as_json {
            let cells: Vec<String> = parsed
                .iter()
                .map(|(key, log)| {
                    format!(
                        "{{\"key\":\"{}\",\"report\":{}}}",
                        casa_obs::json_escape(key),
                        tree_report_json(log)
                    )
                })
                .collect();
            println!(
                "{{\"casa_tree_report_sweep\":1,\"cells\":[{}]}}",
                cells.join(",")
            );
            return;
        }
        println!(
            "search-tree sweep {path}: {} captured tree(s)",
            parsed.len()
        );
        for (key, log) in &parsed {
            println!("[{key}]");
            print!("{}", render_tree_report(log));
        }
    } else {
        let log = casa_ilp::tree::parse_tree_log(&json).unwrap_or_else(|e| panic!("{path}: {e}"));
        if as_json {
            println!("{}", tree_report_json(&log));
            return;
        }
        println!("search tree {path}:");
        print!("{}", render_tree_report(&log));
    }
}

/// `explain <path> [--top <n>]`: render a `casa_explain` document (or
/// a whole `casa_explain_sweep`) as per-cell decision reports — the
/// shadow-price line, the top-N regret table, and the flip-distance
/// ranking.
fn explain_cmd(path: &str) {
    let top = cli_value("--top").map_or(10, |v| {
        v.parse()
            .unwrap_or_else(|e| panic!("--top takes a count, got {v}: {e}"))
    });
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let v = serde::json::parse(&json).unwrap_or_else(|e| panic!("{path}: malformed JSON: {e}"));
    if v.get("casa_explain_sweep").is_some() {
        let cells = v
            .get("cells")
            .and_then(|c| c.as_array())
            .expect("cells array");
        println!("explain sweep {path}: {} captured document(s)", cells.len());
        for cell in cells {
            let key = cell.get("key").and_then(|k| k.as_str()).unwrap_or("?");
            // Re-serialize the embedded document through its own
            // parser (cheapest path with the vendored mini-parser:
            // slice the raw text is fragile, so round-trip via the
            // canonical codec instead).
            let raw = cell
                .get("explain")
                .map(render_value_json)
                .expect("cell explain");
            let doc = casa_core::parse_explain(&raw)
                .unwrap_or_else(|e| panic!("{path}: cell {key}: {e}"));
            println!("[{key}]");
            print!("{}", casa_core::render_explain(&doc, top));
        }
    } else {
        let doc = casa_core::parse_explain(&json).unwrap_or_else(|e| panic!("{path}: {e}"));
        println!("explain {path}:");
        print!("{}", casa_core::render_explain(&doc, top));
    }
}

/// Re-serialize a parsed [`serde::json::Value`] as JSON text, so an
/// embedded sub-document can be handed to its own typed parser.
fn render_value_json(v: &serde::json::Value) -> String {
    use serde::json::Value;
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => casa_obs::jnum(*n),
        Value::Str(s) => format!("\"{}\"", casa_obs::json_escape(s)),
        Value::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render_value_json).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Obj(map) => {
            let inner: Vec<String> = map
                .iter()
                .map(|(k, val)| {
                    format!(
                        "\"{}\":{}",
                        casa_obs::json_escape(k),
                        render_value_json(val)
                    )
                })
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

fn render_trace_cmd(path: &str) {
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let events = parse_chrome_trace(&json);
    println!("span tree of {path} ({} events):", events.len());
    print!("{}", render_span_table(&events));
}

fn flight_cmd(path: &str) {
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let (events, capacity, dropped) = parse_flight_dump(&json);
    println!(
        "flight buffer {path}: {} event(s), capacity {capacity}, {dropped} dropped",
        events.len()
    );
    print!("{}", render_flight_table(&events));
}

const USAGE: &str = "diag subcommands:\n\
    \x20 replay <file> [--divergence] [--report-out <path>]   replay a recorded .casa-session\n\
    \x20 tail <addr>                                          print the server request journal\n\
    \x20 post <addr> <body-file> [--req-id <id>] [--out <p>]  POST a /solve body\n\
    \x20 probe <addr> [--quick] [--expect <fam>]... [--expect-spans] [--quit]\n\
    \x20                                                      validate a live telemetry server\n\
    \x20 flight <path>                                        render a flight-recorder dump\n\
    \x20 render-trace <path>                                  render a Chrome trace span tree\n\
    \x20 tree <path> [--json]                                 render a captured B&B search tree\n\
    \x20 explain <path> [--top <n>]                           render a captured explain document\n\
    \x20 (no subcommand)                                      workload calibration tables\n";

/// Note a deprecated `--flag` spelling on stderr, pointing at the
/// subcommand that replaced it.
fn deprecation_note(old: &str, new: &str) {
    eprintln!("note: `{old}` is deprecated; use `diag {new}`");
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("replay") => return replay_cmd(&argv[1..]),
        Some("tail") => {
            let addr = argv.get(1).expect("usage: diag tail <addr>");
            return tail(addr);
        }
        Some("post") => {
            let addr = argv.get(1).expect("usage: diag post <addr> <body-file>");
            let body = argv.get(2).expect("usage: diag post <addr> <body-file>");
            return post_solve(addr, body);
        }
        Some("probe") => {
            let addr = argv.get(1).expect("usage: diag probe <addr> [--quick]");
            return probe(addr, argv.iter().any(|a| a == "--quick"));
        }
        Some("flight") => {
            return flight_cmd(argv.get(1).expect("usage: diag flight <path>"));
        }
        Some("render-trace") => {
            return render_trace_cmd(argv.get(1).expect("usage: diag render-trace <path>"));
        }
        Some("tree") => {
            return tree_cmd(
                argv.get(1).expect("usage: diag tree <path> [--json]"),
                argv.iter().any(|a| a == "--json"),
            );
        }
        Some("explain") => {
            return explain_cmd(argv.get(1).expect("usage: diag explain <path> [--top <n>]"));
        }
        Some("help" | "--help" | "-h") => {
            print!("{USAGE}");
            return;
        }
        _ => {}
    }
    // Pre-subcommand `--flag` spellings: honored, with a nudge.
    let mut args = argv.iter().cloned();
    while let Some(a) = args.next() {
        if a == "--render-trace" {
            deprecation_note(&a, "render-trace <path>");
            return render_trace_cmd(&args.next().expect("--render-trace needs a path"));
        }
        if a == "--flight" {
            deprecation_note(&a, "flight <path>");
            return flight_cmd(&args.next().expect("--flight needs a path"));
        }
        if a == "--probe" || a == "--probe-quick" {
            deprecation_note(&a, "probe <addr> [--quick]");
            let target = args.next().unwrap_or_else(|| panic!("{a} needs host:port"));
            return probe(&target, a == "--probe-quick");
        }
        if a == "--tail" {
            deprecation_note(&a, "tail <addr>");
            return tail(&args.next().expect("--tail needs host:port"));
        }
        if a == "--post" {
            deprecation_note(&a, "post <addr> <body-file>");
            let target = args.next().expect("--post needs host:port");
            let body_path = args.next().expect("--post needs a body file");
            return post_solve(&target, &body_path);
        }
    }
    let cli = cli_obs();
    for spec in mediabench::all() {
        let name = spec.name.clone();
        let (cache_size, sizes) = paper_sizes(&name);
        let w = prepared(spec, 1, 2004);
        let code = w.program.code_size();
        // Hot set: blocks contributing the top 95% of fetches.
        let mut per_block: Vec<(u64, u32)> = w
            .program
            .blocks()
            .iter()
            .map(|b| (w.profile.fetches(&w.program, b.id()), b.size()))
            .collect();
        per_block.sort_by_key(|&(f, _)| std::cmp::Reverse(f));
        let total_fetches: u64 = per_block.iter().map(|&(f, _)| f).sum();
        let mut acc = 0u64;
        let mut hot_bytes = 0u32;
        for &(f, s) in &per_block {
            if acc as f64 >= 0.95 * total_fetches as f64 {
                break;
            }
            acc += f;
            hot_bytes += s;
        }
        // Per-function footprint and heat.
        for f in w.program.functions() {
            let bytes: u32 = f.blocks().iter().map(|&b| w.program.block(b).size()).sum();
            let fetches: u64 = f
                .blocks()
                .iter()
                .map(|&b| w.profile.fetches(&w.program, b))
                .sum();
            println!(
                "    fn {:<16} {:>6} B {:>10} fetches",
                f.name(),
                bytes,
                fetches
            );
        }
        let cfg = FlowConfig {
            cache: CacheConfig::direct_mapped(cache_size, LINE_SIZE),
            spm_size: sizes[0],
            allocator: AllocatorKind::None,
            tech: TechParams::default(),
            trace_cap: None,
        };
        let base = run_spm_flow(
            &w.program,
            &w.profile,
            &w.exec,
            &cfg,
            &FlowCtx::observed(&cli.obs),
        )
        .unwrap();
        let stats = base.final_sim.stats;
        println!(
            "{name}: code {code} B, hot(95%) {hot_bytes} B, cache {cache_size} B, pressure {:.2}",
            f64::from(hot_bytes) / f64::from(cache_size)
        );
        println!(
            "  fetches {}, miss rate {:.2}%, conflict edges {}, traces {}",
            stats.fetches,
            100.0 * stats.miss_rate(),
            base.conflict_graph.edge_count(),
            base.traces.len(),
        );
        let conflict_misses: u64 = (0..base.conflict_graph.len())
            .map(|i| base.conflict_graph.conflict_misses_of(i))
            .sum();
        println!(
            "  misses {} (conflict {}, cold {})",
            stats.cache_misses,
            conflict_misses,
            stats.cache_misses - conflict_misses
        );
        // Model fidelity: CASA's predicted energy vs. re-simulated.
        for &spm in &sizes {
            let cfg = FlowConfig {
                cache: CacheConfig::direct_mapped(cache_size, LINE_SIZE),
                spm_size: spm,
                allocator: AllocatorKind::CasaBb,
                tech: TechParams::default(),
                trace_cap: None,
            };
            let r = run_spm_flow(
                &w.program,
                &w.profile,
                &w.exec,
                &cfg,
                &FlowCtx::observed(&cli.obs),
            )
            .unwrap();
            println!(
                "  CASA @{spm:>5}: predicted {:>10.1} µJ, simulated {:>10.1} µJ, misses {} -> {}",
                r.allocation.predicted_energy.unwrap_or(0.0) / 1000.0,
                r.energy_uj(),
                stats.cache_misses,
                r.final_sim.stats.cache_misses,
            );
        }
    }
    if cli.obs.is_enabled() {
        println!("\nper-phase span tree:");
        print!("{}", render_span_table(&cli.obs.events()));
    }
    if let Some(path) = cli.finish() {
        println!("wrote Chrome trace to {}", path.display());
    }
}
