//! Table 1 reproduction: overall energy savings for adpcm / g721 /
//! mpeg across memory sizes, for SP(CASA), SP(Steinke) and LC(Ross).
//!
//! Usage: `cargo run --release -p casa-bench --bin table1 [scale]
//!         [--timing] [--trace-out <path>] [--serve <addr>]
//!         [--serve-addr-file <path>] [--serve-linger-ms <ms>]`
//!
//! `--trace-out <path>` (or `CASA_TRACE=1`) instruments every flow
//! and writes a Chrome `trace_event` timeline of all rows.
//! `--serve <addr>` exposes the run's live telemetry (`/metrics`,
//! `/events`, ...) while the table is computed; see the README's
//! "Live telemetry" section.

use casa_bench::experiments::{paper_sizes, table1_obs, Table1Row};
use casa_bench::runner::{cli_obs, cli_scale, prepared};
use casa_workloads::mediabench;

fn main() {
    let scale = cli_scale();
    let timing = std::env::args().any(|a| a == "--timing");
    let cli = cli_obs();

    println!("Table 1 — overall energy savings (energies in µJ)\n");
    println!(
        "{:<10} {:>8} {:>12} {:>13} {:>11} {:>18} {:>16}",
        "benchmark",
        "size[B]",
        "SP(CASA)",
        "SP(Steinke)",
        "LC(Ross)",
        "CASA vs Steinke %",
        "CASA vs LC %"
    );

    for spec in mediabench::all() {
        let name = spec.name.clone();
        let (cache, sizes) = paper_sizes(&name);
        let w = prepared(spec, scale, 2004);
        let block = table1_obs(&w, cache, &sizes, &cli.obs);
        for r in &block.rows {
            println!(
                "{:<10} {:>8} {:>12.2} {:>13.2} {:>11.2} {:>18.1} {:>16.1}",
                r.benchmark,
                r.mem_size,
                r.sp_casa_uj,
                r.sp_steinke_uj,
                r.lc_ross_uj,
                r.casa_vs_steinke_pct(),
                r.casa_vs_lc_pct()
            );
        }
        println!(
            "{:<10} {:>8} {:>12} {:>13} {:>11} {:>18.1} {:>16.1}",
            "",
            "avg",
            "",
            "",
            "",
            block.avg_vs_steinke(),
            block.avg_vs_lc()
        );
        if timing {
            let max_t = block
                .rows
                .iter()
                .map(|r: &Table1Row| r.casa_solver_secs)
                .fold(0.0f64, f64::max);
            println!("{:<10} max CASA solver time: {:.4} s", "", max_t);
        }
        println!();
    }
    println!("paper averages: adpcm 29.0/44.1, g721 8.2/19.7, mpeg 28.0/26.0");
    if let Some(path) = cli.finish() {
        println!("wrote Chrome trace to {}", path.display());
    }
    cli.linger();
}
