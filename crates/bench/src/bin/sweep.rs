//! Deterministic parallel Table-1 sweep.
//!
//! Runs the canonical Table-1 grid (3 benchmarks × 4 local-memory
//! sizes × {SP(CASA), SP(Steinke), LC(Ross)}) once single-threaded
//! and once with the configured worker count, verifies the two
//! reports are byte-identical modulo timing, and writes the parallel
//! run (plus the serial baseline's wall clock and the speedup) to
//! `BENCH_sweep.json`.
//!
//! Usage: `cargo run --release -p casa-bench --bin sweep [scale]`
//! Worker count: `CASA_SWEEP_THREADS` (default: available cores).

use casa_bench::runner::cli_scale;
use casa_bench::sweep::{sweep_threads, SweepGrid};

fn main() {
    let scale = cli_scale();
    let threads = sweep_threads();
    let grid = SweepGrid::table1_paper(scale, 2004);
    println!(
        "sweep: {} cells over {} workloads (scale {scale}), {threads} worker(s)",
        grid.cell_count(),
        grid.workload_count()
    );

    let serial = grid.run_with_threads(1);
    let parallel = grid.run_with_threads(threads);
    assert_eq!(
        serial.deterministic_json(),
        parallel.deterministic_json(),
        "sweep results must not depend on the worker count"
    );
    println!("determinism: serial and {threads}-worker reports are byte-identical");

    let speedup = serial.total_secs / parallel.total_secs.max(1e-12);
    println!(
        "serial {:.2} s, parallel {:.2} s ({speedup:.2}x with {threads} worker(s))",
        serial.total_secs, parallel.total_secs
    );

    for c in &parallel.cells {
        println!(
            "{:<8} {:<14} {:>6} B  {:>12.2} µJ  {:>9} nodes  {:>8.4} s",
            c.benchmark, c.flavor, c.local_size, c.energy_uj, c.solver_nodes, c.cell_secs
        );
    }

    // Full report plus the serial baseline for the speedup record.
    let json = format!(
        "{{\"serial_total_secs\":{},\"parallel_speedup\":{},\"report\":{}}}",
        serial.total_secs,
        speedup,
        parallel.to_json()
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("wrote BENCH_sweep.json ({} bytes)", json.len());
}
