//! Deterministic parallel Table-1 sweep.
//!
//! Runs the canonical Table-1 grid (3 benchmarks × 4 local-memory
//! sizes × {SP(CASA), SP(Steinke), LC(Ross)}) once single-threaded
//! and once with the configured worker count, verifies the two
//! reports are byte-identical modulo timing, and writes the parallel
//! run (plus the serial baseline's wall clock and the speedup) to
//! `BENCH_sweep.json`.
//!
//! Usage: `cargo run --release -p casa-bench --bin sweep [scale]
//!         [--smoke] [--trace-out <path>] [--flight-dump <path>]
//!         [--history-out <path>] [--det-out <path>]
//!         [--tree-out <path>] [--ts-out <path>]
//!         [--explain-out <path>]
//!         [--budget-nodes <n>] [--budget-ms <ms>]
//!         [--session-dir <dir>]
//!         [--serve <addr>] [--serve-addr-file <path>]
//!         [--serve-linger-ms <ms>]`
//! Worker count: `CASA_SWEEP_THREADS` (default: available cores).
//! `--smoke` swaps the full grid for [`SweepGrid::smoke`] (one adpcm
//! workload, three cells) — the CI smoke configuration.
//! `--trace-out <path>` (or `CASA_TRACE=1`) instruments every flow
//! phase and writes a Chrome `trace_event` timeline; instrumented
//! runs also arm the flight recorder's dump sink (`--flight-dump
//! <path>` / `CASA_FLIGHT_DUMP`) and panic hook.
//! `--budget-nodes <n>` / `--budget-ms <ms>` solve every cell under
//! the given anytime budget: cells then report `status` (`optimal` /
//! `feasible` / `fallback`) and the proven optimality `gap`. Node
//! budgets keep the byte-identical determinism guarantee; wall-clock
//! budgets are machine-dependent, so the byte-equality check is
//! skipped and `deterministic_json` redacts the affected columns.
//! `--serve <addr>` starts the live telemetry service (`/metrics`,
//! `/snapshot.json`, `/flight.json`, `/events`, `/healthz`) for the
//! duration of the run; `--serve-addr-file <path>` writes the bound
//! address (useful with port 0) and `--serve-linger-ms <ms>` keeps
//! the endpoints up after the sweep until a scraper hits
//! `/quitquitquit` or the window closes. `CASA_WATCHDOG_MS=<ms>` arms
//! the phase watchdog on top of the sweep's heartbeats.
//! `--det-out <path>` writes the run's `deterministic_json()` — what
//! CI diffs between served and serverless runs.
//! `--session-dir <dir>` records every scratchpad cell's solve as a
//! replayable `.casa-session` file (plus a `.report.json` sibling)
//! under `dir` — the input to `diag replay` and CI's golden-trace
//! gate.
//! `--tree-out <path>` captures every tree-searching cell's B&B
//! search tree (cap: `CASA_TREE_CAP`) and writes the grid-ordered
//! `casa_tree_sweep` document — the input to `diag tree`. Capture
//! changes no allocation decision and the document is byte-identical
//! across worker counts.
//! `--ts-out <path>` writes the run's merged logical-tick time-series
//! (`casa_timeseries` document: `sweep.*` per-cell series plus the
//! flow/solver series from every cell, grid order); implies
//! instrumentation. Byte-identical across worker counts.
//! `--explain-out <path>` captures every scratchpad cell's decision
//! provenance (density ranks, reduced costs, shadow price, flip
//! distances) and writes the grid-ordered `casa_explain_sweep`
//! document — the input to `diag explain`. Capture changes no
//! allocation decision and the document is byte-identical across
//! worker counts.
//!
//! Outputs are split by audience: `BENCH_sweep.json` is the **latest
//! run** in full (overwritten every time — what the experiment docs
//! and plots read), while `--history-out <path>` (default
//! `BENCH_history.jsonl`) gets one compact [`HistoryRecord`] line
//! **appended** per run — the longitudinal log the `sentinel` bin
//! diffs for regressions.

use casa_bench::history::{append_record, unix_now_s, HistoryRecord};
use casa_bench::runner::{cli_budget, cli_obs, cli_scale, cli_value};
use casa_bench::sweep::{sweep_threads, SweepGrid};
use std::path::Path;

fn main() {
    let scale = cli_scale();
    let threads = sweep_threads();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cli = cli_obs();
    let budget = cli_budget();
    let mut grid = if smoke {
        SweepGrid::smoke(scale, 2004)
    } else {
        SweepGrid::table1_paper(scale, 2004)
    };
    grid.set_budget(budget.clone());
    let session_dir = cli_value("--session-dir");
    if let Some(dir) = &session_dir {
        grid.set_session_dir(dir);
    }
    let tree_out = cli_value("--tree-out");
    if tree_out.is_some() {
        grid.set_capture_trees(true);
    }
    let explain_out = cli_value("--explain-out");
    if explain_out.is_some() {
        grid.set_capture_explain(true);
    }
    println!(
        "sweep: {} cells over {} workloads (scale {scale}), {threads} worker(s)",
        grid.cell_count(),
        grid.workload_count()
    );
    if !budget.is_unlimited() {
        println!("per-cell solver budget: {budget:?}");
    }

    let serial = grid.run_with_threads(1);
    let parallel = grid.run_with_threads_obs(threads, &cli.obs);
    if budget.has_wall_clock() {
        // Where a deadline or cancellation lands in the search depends
        // on machine speed, so the reports are legitimately allowed to
        // differ; deterministic_json redacts those columns instead.
        println!("wall-clock budget: skipping the byte-equality check");
    } else {
        assert_eq!(
            serial.deterministic_json(),
            parallel.deterministic_json(),
            "sweep results must not depend on the worker count or tracing"
        );
        println!("determinism: serial and {threads}-worker reports are byte-identical");
        if tree_out.is_some() {
            assert_eq!(
                serial.tree_json(),
                parallel.tree_json(),
                "captured search trees must not depend on the worker count"
            );
        }
        if explain_out.is_some() {
            assert_eq!(
                serial.explain_json(),
                parallel.explain_json(),
                "explain documents must not depend on the worker count"
            );
        }
    }

    // Anytime contract: a budget may truncate the search, but every
    // cell still answers — with a status, and (unless a fallback
    // allocator substituted) a finite proven gap.
    for c in &parallel.cells {
        assert!(!c.status.is_empty(), "cell without a status: {c:?}");
        if c.status != "fallback" {
            let gap = c
                .gap
                .unwrap_or_else(|| panic!("{} cell missing gap: {c:?}", c.flavor));
            assert!(gap.is_finite() && gap >= 0.0, "unproven gap {gap} in {c:?}");
        }
    }

    let speedup = serial.total_secs / parallel.total_secs.max(1e-12);
    println!(
        "serial {:.2} s, parallel {:.2} s ({speedup:.2}x with {threads} worker(s))",
        serial.total_secs, parallel.total_secs
    );

    for c in &parallel.cells {
        println!(
            "{:<8} {:<14} {:>6} B  {:>12.2} µJ  {:>9} nodes  {:<8} {:>10}  {:>8.4} s",
            c.benchmark,
            c.flavor,
            c.local_size,
            c.energy_uj,
            c.solver_nodes
                .map_or_else(|| "-".to_string(), |n| n.to_string()),
            c.status,
            c.gap.map_or_else(|| "-".to_string(), |g| format!("{g:.3}")),
            c.cell_secs
        );
    }
    if !parallel.phases.is_empty() {
        println!("\nper-phase rollup:");
        for p in &parallel.phases {
            println!(
                "  {:<12} {:>5} spans  {:>10.3} ms",
                p.name,
                p.count,
                p.total_us as f64 / 1000.0
            );
        }
    }

    // Full report plus the serial baseline for the speedup record.
    let json = format!(
        "{{\"serial_total_secs\":{},\"parallel_speedup\":{},\"report\":{}}}",
        serial.total_secs,
        speedup,
        parallel.to_json()
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("wrote BENCH_sweep.json ({} bytes)", json.len());
    if let Some(dir) = &session_dir {
        println!("recorded scratchpad-cell sessions under {dir}");
    }

    // Longitudinal record: BENCH_sweep.json holds only the latest run,
    // so the sentinel's baseline lives in an append-only JSONL log.
    let history_path =
        cli_value("--history-out").unwrap_or_else(|| "BENCH_history.jsonl".to_string());
    let record = HistoryRecord::from_report(&parallel, &grid.fingerprint(), unix_now_s());
    append_record(Path::new(&history_path), &record)
        .unwrap_or_else(|e| panic!("append {history_path}: {e}"));
    println!("appended run record to {history_path}");

    // The bytes CI compares between a served and a serverless run.
    if let Some(path) = cli_value("--det-out") {
        let det = parallel.deterministic_json();
        std::fs::write(&path, &det).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote deterministic report to {path} ({} bytes)", det.len());
    }

    // Solver introspection artifacts: the search trees and the merged
    // logical-tick time-series, both byte-identical across worker
    // counts (CI diffs them between CASA_SWEEP_THREADS values).
    if let Some(path) = &tree_out {
        let json = parallel.tree_json();
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        let captured = parallel.cells.iter().filter(|c| c.tree.is_some()).count();
        println!(
            "wrote {captured} search tree(s) to {path} ({} bytes)",
            json.len()
        );
    }
    if let Some(path) = &explain_out {
        let json = parallel.explain_json();
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        let captured = parallel
            .cells
            .iter()
            .filter(|c| c.explain.is_some())
            .count();
        println!(
            "wrote {captured} explain document(s) to {path} ({} bytes)",
            json.len()
        );
    }
    if let Some(path) = cli_value("--ts-out") {
        let json = parallel.timeseries_json();
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!(
            "wrote time-series to {path} ({} bytes, {} points)",
            json.len(),
            parallel.timeseries.points()
        );
    }

    if let Some(path) = cli.finish() {
        println!("wrote Chrome trace to {}", path.display());
    }

    // CI self-test of the watchdog: beat a phase once, never again,
    // and demand the stall is flagged (event + flight dump) within
    // 2 × CASA_WATCHDOG_MS.
    if std::env::var("CASA_SELFTEST_STALL").is_ok_and(|v| !v.is_empty() && v != "0") {
        selftest_stall(&cli);
    }

    cli.linger();

    // CI self-test of the crash path: a deliberate panic *after* the
    // sweep has filled the flight ring, so the installed hook must
    // leave a non-empty dump at the configured sink. A real panic (not
    // debug_assert!) so the release binary CI runs exercises it too.
    if std::env::var("CASA_SELFTEST_PANIC").is_ok_and(|v| !v.is_empty() && v != "0") {
        panic!("CASA_SELFTEST_PANIC: deliberate crash to exercise the flight-dump path");
    }
}

/// Deliberately stall a phase and verify the watchdog catches it
/// within the promised window: a `watchdog_stall` instant event naming
/// the phase, plus a flight dump on disk.
fn selftest_stall(cli: &casa_bench::runner::CliObs) {
    use casa_obs::ArgValue;
    let ms = casa_obs::watchdog_ms_from_env()
        .expect("CASA_SELFTEST_STALL needs CASA_WATCHDOG_MS set to a non-zero value");
    assert!(
        cli.watchdog.is_some(),
        "watchdog must be armed for the stall selftest"
    );
    let phase = "selftest.stall";
    cli.obs.heartbeat(phase);
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(2 * ms);
    let caught = loop {
        let stalled = cli.obs.events().into_iter().any(|e| {
            e.name == "watchdog_stall"
                && e.args
                    .iter()
                    .any(|(k, v)| k == "phase" && *v == ArgValue::Str(phase.to_string()))
        });
        if stalled {
            break true;
        }
        if std::time::Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(std::time::Duration::from_millis(ms.div_ceil(10).max(1)));
    };
    assert!(
        caught,
        "CASA_SELFTEST_STALL: no watchdog_stall event within 2x{ms} ms"
    );
    let sink = cli.obs.flight_sink().expect("cli_obs wires a flight sink");
    let dump = std::fs::metadata(&sink).unwrap_or_else(|e| {
        panic!(
            "watchdog stall left no flight dump at {}: {e}",
            sink.display()
        )
    });
    assert!(dump.len() > 0, "empty watchdog flight dump");
    cli.obs.heartbeat_done(phase);
    println!(
        "selftest: watchdog flagged stalled phase `{phase}` within 2x{ms} ms (dump at {})",
        sink.display()
    );
}
