//! Extension experiment: how cache associativity changes CASA's value.
//!
//! The paper evaluates direct-mapped caches, where conflict misses —
//! the thing CASA removes — are worst. Higher associativity removes
//! conflicts in hardware (at an energy cost per access: all ways are
//! read in parallel), so CASA's *relative* win should shrink while the
//! associative cache's per-access energy grows. This sweep quantifies
//! the trade-off.
//!
//! Usage: `cargo run --release -p casa-bench --bin assoc [scale]`

use casa_bench::experiments::{paper_sizes, LINE_SIZE};
use casa_bench::runner::{cli_scale, prepared};
use casa_core::flow::{run_spm_flow, AllocatorKind, FlowConfig, FlowCtx};
use casa_energy::TechParams;
use casa_mem::cache::{CacheConfig, ReplacementPolicy};
use casa_workloads::mediabench;

fn main() {
    let scale = cli_scale();
    println!("Associativity sweep — CASA vs no allocation, mid-size SPM\n");
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>10} {:>12}",
        "bench", "ways", "none µJ", "CASA µJ", "win %", "I$ misses"
    );
    for spec in mediabench::all() {
        let name = spec.name.clone();
        let (cache_size, sizes) = paper_sizes(&name);
        let spm = sizes[sizes.len() / 2];
        let w = prepared(spec, scale, 2004);
        for assoc in [1u32, 2, 4] {
            let cache = CacheConfig {
                size: cache_size,
                line_size: LINE_SIZE,
                associativity: assoc,
                policy: ReplacementPolicy::Lru,
            };
            let run = |alloc| {
                run_spm_flow(
                    &w.program,
                    &w.profile,
                    &w.exec,
                    &FlowConfig {
                        cache,
                        spm_size: spm,
                        allocator: alloc,
                        tech: TechParams::default(),
                        trace_cap: None,
                    },
                    &FlowCtx::default(),
                )
                .expect("flow")
            };
            let none = run(AllocatorKind::None);
            let casa = run(AllocatorKind::CasaBb);
            println!(
                "{:<8} {:>6} {:>12.2} {:>12.2} {:>10.1} {:>12}",
                name,
                assoc,
                none.energy_uj(),
                casa.energy_uj(),
                100.0 * (1.0 - casa.energy_uj() / none.energy_uj()),
                none.final_sim.stats.cache_misses,
            );
        }
        println!();
    }
    println!("Two classic effects show up: cyclic working sets larger than the");
    println!("cache thrash *worse* under associative LRU than direct-mapped (the");
    println!("LRU anomaly for sequential loops), and every way read in parallel");
    println!("costs energy — so the scratchpad-plus-CASA configuration stays the");
    println!("right design across associativities, exactly the paper's premise.");
}
