//! casa-loadgen — CI load generator and checker for `casa-server`.
//!
//! Drives a running server with concurrent clients issuing a seeded,
//! deterministic mix of graph-form solve requests: cold solves,
//! exact repeats (cache hits), capacity-adjacent pairs (warm
//! starts), and one deliberately starved request that must degrade
//! gracefully. Asserts, loudly:
//!
//! * every repeated request's response is **byte-identical** to its
//!   first answer (client-side `assert_eq!`, and optionally dumped to
//!   files for an independent `cmp` in CI);
//! * the starved request reports `"status":"feasible"` with a finite
//!   optimality gap;
//! * `/metrics` afterwards shows at least the issued number of
//!   `casa_server_requests_total` and ≥ 1 `casa_server_cache_hits_total`.
//!
//! 429 (admission queue full) is retried with backoff — overload
//! shedding is correct server behaviour, not a test failure.
//!
//! Usage: `casa-loadgen --addr <host:port> [--clients 2] [--graphs 4]
//!         [--repeat 2] [--dump-a <path> --dump-b <path>]`
//!
//! Exits 0 iff every check passed (any failure panics).

use casa_bench::runner::cli_value;
use casa_obs::{http_get, http_post};
use serde::json::Value;
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

/// A deterministic graph-form request body (pure function of `seed`).
fn request_body(seed: u64, capacity: u32, budget_nodes: Option<u64>) -> String {
    let mut s = seed;
    let n = 4 + (lcg(&mut s) % 4) as usize;
    let fetches: Vec<String> = (0..n)
        .map(|_| (100 + lcg(&mut s) % 3000).to_string())
        .collect();
    let sizes: Vec<String> = (0..n)
        .map(|_| (8 + 8 * (lcg(&mut s) % 4)).to_string())
        .collect();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && lcg(&mut s).is_multiple_of(2) {
                edges.push(format!("[{i},{j},{}]", 1 + lcg(&mut s) % 500));
            }
        }
    }
    let budget = budget_nodes
        .map(|nodes| format!(",\"budget\":{{\"nodes\":{nodes}}}"))
        .unwrap_or_default();
    format!(
        "{{\"graph\":{{\"fetches\":[{}],\"sizes\":[{}],\"edges\":[{}]}},\"cache\":{{\"size\":1024,\"line\":16,\"assoc\":1}},\"capacity\":{capacity},\"allocator\":\"casa-bb\"{budget}}}",
        fetches.join(","),
        sizes.join(","),
        edges.join(","),
    )
}

/// POST one solve request, retrying 429s with backoff (overload
/// shedding is expected under concurrent load).
fn solve(addr: &SocketAddr, body: &str) -> String {
    for attempt in 0..8u32 {
        let (status, resp) =
            http_post(addr, "/solve", "application/json", body, TIMEOUT).expect("POST /solve");
        match status {
            200 => return resp,
            429 => thread::sleep(Duration::from_millis(50 << attempt)),
            other => panic!("POST /solve returned {other}: {resp}"),
        }
    }
    panic!("POST /solve still overloaded after 8 retries");
}

/// One client's deterministic request schedule. Returns
/// `(requests_issued, Vec<(label, body)>)` for cross-checking.
fn run_client(
    addr: SocketAddr,
    client: u64,
    graphs: u64,
    repeat: u64,
) -> (u64, Vec<(String, String)>) {
    let mut issued = 0;
    let mut transcript = Vec::new();
    for g in 0..graphs {
        let seed = 10_000 * (client + 1) + g;
        let cold = request_body(seed, 64, None);
        let adjacent = request_body(seed, 96, None);
        let first = solve(&addr, &cold);
        issued += 1;
        transcript.push((format!("c{client}g{g}:cold"), first.clone()));
        // Capacity-adjacent request for the same graph: lands on the
        // same shard (base fingerprint) and can warm-start from the
        // cold solve's optimum.
        let adj = solve(&addr, &adjacent);
        issued += 1;
        transcript.push((format!("c{client}g{g}:adjacent"), adj));
        for r in 0..repeat {
            let again = solve(&addr, &cold);
            issued += 1;
            assert_eq!(
                again, first,
                "repeat {r} of client {client} graph {g} differs from the first response"
            );
            transcript.push((format!("c{client}g{g}:repeat{r}"), again));
        }
    }
    (issued, transcript)
}

fn metric_value(metrics: &str, family: &str) -> f64 {
    metrics
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let (name, value) = l.rsplit_once(' ')?;
            (name == family).then(|| value.parse::<f64>().ok())?
        })
        .sum()
}

fn main() {
    let addr: SocketAddr = cli_value("--addr")
        .expect("--addr <host:port> is required")
        .parse()
        .expect("--addr must be host:port");
    let clients = cli_value("--clients").map_or(2, |v| v.parse().expect("--clients"));
    let graphs = cli_value("--graphs").map_or(4, |v| v.parse().expect("--graphs"));
    let repeat = cli_value("--repeat").map_or(2, |v| v.parse().expect("--repeat"));

    // Concurrent clients, each with a disjoint deterministic schedule.
    let handles: Vec<_> = (0..clients)
        .map(|c| thread::spawn(move || run_client(addr, c, graphs, repeat)))
        .collect();
    let mut issued = 0;
    let mut transcripts = Vec::new();
    for h in handles {
        let (n, t) = h.join().expect("client thread");
        issued += n;
        transcripts.push(t);
    }

    // One starved request: a single search node cannot close a
    // nontrivial graph, so the reply must be a graceful degradation —
    // feasible, with a finite proven gap — not an error.
    let starved = solve(&addr, &request_body(777, 64, Some(1)));
    issued += 1;
    let v = serde::json::parse(&starved).expect("degraded response is valid JSON");
    assert_eq!(
        v.get("status").and_then(Value::as_str),
        Some("feasible"),
        "starved request should degrade gracefully: {starved}"
    );
    let gap = v
        .get("gap")
        .and_then(Value::as_f64)
        .expect("degraded response carries a gap");
    assert!(gap.is_finite() && gap >= 0.0, "gap {gap} not finite");

    // Optional dump of one repeated pair for an independent `cmp` in
    // CI (defence against this binary's own assert being wrong).
    if let (Some(a), Some(b)) = (cli_value("--dump-a"), cli_value("--dump-b")) {
        let first = &transcripts[0][0];
        let same = transcripts[0]
            .iter()
            .find(|(label, _)| label.ends_with(":repeat0"))
            .expect("repeat in transcript");
        std::fs::write(&a, &first.1).expect("write --dump-a");
        std::fs::write(&b, &same.1).expect("write --dump-b");
    }

    // The server's own accounting must agree.
    let (status, metrics) = http_get(&addr, "/metrics", TIMEOUT).expect("GET /metrics");
    assert_eq!(status, 200, "metrics scrape failed");
    let requests = metric_value(&metrics, "casa_server_requests_total");
    assert!(
        requests >= issued as f64,
        "server counted {requests} requests, loadgen issued {issued}"
    );
    let hits = metric_value(&metrics, "casa_server_cache_hits_total");
    assert!(
        hits >= 1.0,
        "expected at least one exact cache hit, server counted {hits}"
    );

    println!(
        "casa-loadgen: OK — {clients} clients, {issued} requests, {requests} served, {hits} cache hits, degraded gap {gap:.6}"
    );
}
