//! casa-loadgen — CI load generator and checker for `casa-server`.
//!
//! Drives a running server with concurrent clients issuing a seeded,
//! deterministic mix of graph-form solve requests: cold solves,
//! exact repeats (cache hits), capacity-adjacent pairs (warm
//! starts), and one deliberately starved request that must degrade
//! gracefully. Asserts, loudly:
//!
//! * every repeated request's response is **byte-identical** to its
//!   first answer (client-side `assert_eq!`, and optionally dumped to
//!   files for an independent `cmp` in CI);
//! * the starved request reports `"status":"feasible"` with a finite
//!   optimality gap;
//! * `/metrics` afterwards shows at least the issued number of
//!   `casa_server_requests_total` and ≥ 1 `casa_server_cache_hits_total`.
//!
//! Per request **class** (`cold` / `adjacent` / `repeat` / `starved`)
//! it reports client-observed latency p50/p90/p99 and an error count;
//! any class that saw an unexpected HTTP status (or a starved reply
//! that did not degrade to `feasible`) makes the run exit nonzero.
//!
//! 429 (admission queue full) is retried with backoff — overload
//! shedding is correct server behaviour, not a test failure. A
//! request still rejected after the retry budget counts as an error.
//!
//! Usage: `casa-loadgen --addr <host:port> [--clients 2] [--graphs 4]
//!         [--repeat 2] [--dump-a <path> --dump-b <path>]`
//!
//! Exits 0 iff every check passed.

use casa_bench::runner::cli_value;
use casa_obs::{http_get, http_post};
use serde::json::Value;
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);

/// Request classes the generator distinguishes, in report order.
const CLASSES: [&str; 4] = ["cold", "adjacent", "repeat", "starved"];
const COLD: usize = 0;
const ADJACENT: usize = 1;
const REPEAT: usize = 2;
const STARVED: usize = 3;

/// Client-observed outcomes for one request class.
#[derive(Debug, Default, Clone)]
struct ClassStats {
    latencies_us: Vec<u64>,
    errors: u64,
}

impl ClassStats {
    fn merge(&mut self, other: &ClassStats) {
        self.latencies_us.extend_from_slice(&other.latencies_us);
        self.errors += other.errors;
    }

    /// Exact sample percentile (nearest-rank): the smallest recorded
    /// latency such that at least `q` of the samples are ≤ it.
    fn percentile_us(&self, q: f64) -> u64 {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

/// A deterministic graph-form request body (pure function of `seed`).
fn request_body(seed: u64, capacity: u32, budget_nodes: Option<u64>) -> String {
    let mut s = seed;
    let n = 4 + (lcg(&mut s) % 4) as usize;
    let fetches: Vec<String> = (0..n)
        .map(|_| (100 + lcg(&mut s) % 3000).to_string())
        .collect();
    let sizes: Vec<String> = (0..n)
        .map(|_| (8 + 8 * (lcg(&mut s) % 4)).to_string())
        .collect();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && lcg(&mut s).is_multiple_of(2) {
                edges.push(format!("[{i},{j},{}]", 1 + lcg(&mut s) % 500));
            }
        }
    }
    let budget = budget_nodes
        .map(|nodes| format!(",\"budget\":{{\"nodes\":{nodes}}}"))
        .unwrap_or_default();
    format!(
        "{{\"graph\":{{\"fetches\":[{}],\"sizes\":[{}],\"edges\":[{}]}},\"cache\":{{\"size\":1024,\"line\":16,\"assoc\":1}},\"capacity\":{capacity},\"allocator\":\"casa-bb\"{budget}}}",
        fetches.join(","),
        sizes.join(","),
        edges.join(","),
    )
}

/// POST one solve request, retrying 429s with backoff (overload
/// shedding is expected under concurrent load), and record the
/// outcome under `class`: the final attempt's latency always counts;
/// any terminal status other than 200 counts as an error. Returns the
/// body on success.
fn solve(addr: &SocketAddr, body: &str, stats: &mut ClassStats) -> Option<String> {
    let mut last_status = 0;
    for attempt in 0..8u32 {
        let began = Instant::now();
        let (status, resp) =
            http_post(addr, "/solve", "application/json", body, TIMEOUT).expect("POST /solve");
        let latency_us = began.elapsed().as_micros() as u64;
        last_status = status;
        match status {
            200 => {
                stats.latencies_us.push(latency_us);
                return Some(resp);
            }
            429 => thread::sleep(Duration::from_millis(50 << attempt)),
            _ => {
                stats.latencies_us.push(latency_us);
                break;
            }
        }
    }
    eprintln!("casa-loadgen: POST /solve ended with status {last_status}");
    stats.errors += 1;
    None
}

/// One client's deterministic request schedule. Returns
/// `(requests_issued, Vec<(label, body)>, per-class stats)`.
fn run_client(
    addr: SocketAddr,
    client: u64,
    graphs: u64,
    repeat: u64,
) -> (u64, Vec<(String, String)>, Vec<ClassStats>) {
    let mut issued = 0;
    let mut transcript = Vec::new();
    let mut stats = vec![ClassStats::default(); CLASSES.len()];
    for g in 0..graphs {
        let seed = 10_000 * (client + 1) + g;
        let cold = request_body(seed, 64, None);
        let adjacent = request_body(seed, 96, None);
        let first = solve(&addr, &cold, &mut stats[COLD]);
        issued += 1;
        if let Some(body) = &first {
            transcript.push((format!("c{client}g{g}:cold"), body.clone()));
        }
        // Capacity-adjacent request for the same graph: lands on the
        // same shard (base fingerprint) and can warm-start from the
        // cold solve's optimum.
        if let Some(adj) = solve(&addr, &adjacent, &mut stats[ADJACENT]) {
            transcript.push((format!("c{client}g{g}:adjacent"), adj));
        }
        issued += 1;
        for r in 0..repeat {
            let again = solve(&addr, &cold, &mut stats[REPEAT]);
            issued += 1;
            // On an error the failure is already counted; there is
            // nothing to compare.
            if let (Some(first), Some(again)) = (&first, again) {
                assert_eq!(
                    &again, first,
                    "repeat {r} of client {client} graph {g} differs from the first response"
                );
                transcript.push((format!("c{client}g{g}:repeat{r}"), again));
            }
        }
    }
    (issued, transcript, stats)
}

fn metric_value(metrics: &str, family: &str) -> f64 {
    metrics
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let (name, value) = l.rsplit_once(' ')?;
            (name == family).then(|| value.parse::<f64>().ok())?
        })
        .sum()
}

fn main() {
    let addr: SocketAddr = cli_value("--addr")
        .expect("--addr <host:port> is required")
        .parse()
        .expect("--addr must be host:port");
    let clients = cli_value("--clients").map_or(2, |v| v.parse().expect("--clients"));
    let graphs = cli_value("--graphs").map_or(4, |v| v.parse().expect("--graphs"));
    let repeat = cli_value("--repeat").map_or(2, |v| v.parse().expect("--repeat"));

    // Concurrent clients, each with a disjoint deterministic schedule.
    let handles: Vec<_> = (0..clients)
        .map(|c| thread::spawn(move || run_client(addr, c, graphs, repeat)))
        .collect();
    let mut issued = 0;
    let mut transcripts = Vec::new();
    let mut stats = vec![ClassStats::default(); CLASSES.len()];
    for h in handles {
        let (n, t, s) = h.join().expect("client thread");
        issued += n;
        transcripts.push(t);
        for (agg, part) in stats.iter_mut().zip(&s) {
            agg.merge(part);
        }
    }

    // One starved request: a single search node cannot close a
    // nontrivial graph, so the reply must be a graceful degradation —
    // feasible, with a finite proven gap — not an error.
    let starved = solve(&addr, &request_body(777, 64, Some(1)), &mut stats[STARVED]);
    issued += 1;
    let mut gap = f64::NAN;
    // (An HTTP-level starved failure is already counted as an error.)
    if let Some(body) = &starved {
        let v = serde::json::parse(body).expect("degraded response is valid JSON");
        if v.get("status").and_then(Value::as_str) == Some("feasible") {
            gap = v
                .get("gap")
                .and_then(Value::as_f64)
                .expect("degraded response carries a gap");
            assert!(gap.is_finite() && gap >= 0.0, "gap {gap} not finite");
        } else {
            eprintln!("casa-loadgen: starved request did not degrade to feasible: {body}");
            stats[STARVED].errors += 1;
        }
    }

    // Optional dump of one repeated pair for an independent `cmp` in
    // CI (defence against this binary's own assert being wrong).
    if let (Some(a), Some(b)) = (cli_value("--dump-a"), cli_value("--dump-b")) {
        let first = &transcripts[0][0];
        let same = transcripts[0]
            .iter()
            .find(|(label, _)| label.ends_with(":repeat0"))
            .expect("repeat in transcript");
        std::fs::write(&a, &first.1).expect("write --dump-a");
        std::fs::write(&b, &same.1).expect("write --dump-b");
    }

    // The server's own accounting must agree.
    let (status, metrics) = http_get(&addr, "/metrics", TIMEOUT).expect("GET /metrics");
    assert_eq!(status, 200, "metrics scrape failed");
    let requests = metric_value(&metrics, "casa_server_requests_total");
    assert!(
        requests >= issued as f64,
        "server counted {requests} requests, loadgen issued {issued}"
    );
    let hits = metric_value(&metrics, "casa_server_cache_hits_total");
    assert!(
        hits >= 1.0,
        "expected at least one exact cache hit, server counted {hits}"
    );

    // Per-class latency/error report, then the verdict.
    println!("casa-loadgen: class     count  errors  p50_us  p90_us  p99_us");
    let mut errors = 0;
    for (name, s) in CLASSES.iter().zip(&stats) {
        println!(
            "casa-loadgen: {name:<9} {:>5}  {:>6}  {:>6}  {:>6}  {:>6}",
            s.latencies_us.len(),
            s.errors,
            s.percentile_us(0.50),
            s.percentile_us(0.90),
            s.percentile_us(0.99),
        );
        errors += s.errors;
    }
    if errors > 0 {
        eprintln!("casa-loadgen: FAILED — {errors} request(s) saw an unexpected status");
        std::process::exit(1);
    }
    println!(
        "casa-loadgen: OK — {clients} clients, {issued} requests, {requests} served, {hits} cache hits, degraded gap {gap:.6}"
    );
}
