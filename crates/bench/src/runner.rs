//! Shared experiment plumbing: compile a benchmark spec, run the
//! walker once, and hand the pieces to the flows — plus the CLI
//! observability wiring (`CASA_TRACE=1`, `--trace-out <path>`) shared
//! by the experiment binaries.

use casa_core::engine::Budget;
use casa_ir::{Profile, Program};
use casa_mem::ExecutionTrace;
use casa_obs::{chrome_trace_json, Obs};
use casa_workloads::spec::BenchmarkSpec;
use casa_workloads::Walker;
use std::path::PathBuf;
use std::time::Duration;

/// A compiled benchmark with one recorded execution.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    /// Benchmark name.
    pub name: String,
    /// The program.
    pub program: Program,
    /// The execution profile (matches `exec`).
    pub profile: Profile,
    /// The dynamic block sequence all flows replay.
    pub exec: ExecutionTrace,
}

/// Flags that consume the following argument, skipped by
/// [`cli_scale`] when scanning for the positional scale.
const VALUE_FLAGS: &[&str] = &[
    "--trace-out",
    "--tree-out",
    "--ts-out",
    "--session-dir",
    "--render-trace",
    "--budget-nodes",
    "--budget-ms",
    "--flight-dump",
    "--flight",
    "--history-out",
    "--history",
    "--k",
    "--out",
    "--wall-tol",
    "--serve",
    "--serve-addr-file",
    "--serve-linger-ms",
    "--det-out",
    "--probe",
    "--probe-quick",
    "--expect",
    "--listen",
    "--addr-file",
    "--addr",
    "--workers",
    "--queue-cap",
    "--cache-cap",
    "--max-budget-nodes",
    "--max-seconds",
    "--clients",
    "--graphs",
    "--repeat",
    "--dump-a",
    "--dump-b",
];

/// The value following `--<name>` on the command line, if present.
/// Shared by the binaries for their value-taking flags; a flag listed
/// in [`VALUE_FLAGS`] stays invisible to [`cli_scale`].
///
/// # Panics
///
/// Panics when the flag is present without a following value
/// (experiment drivers want loud failures).
pub fn cli_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{name} needs a value")),
            );
        }
    }
    None
}

/// The optional positional `[scale]` argument shared by the
/// experiment binaries: the first CLI argument that parses as an
/// integer, else 1. Flags (`--timing`, `--smoke`, `--trace-out
/// <path>`, ...) anywhere on the command line are skipped, so
/// `sweep --trace-out t.json 4` and `sweep 4 --trace-out t.json`
/// both mean scale 4.
pub fn cli_scale() -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            let _ = args.next();
            continue;
        }
        if a.starts_with('-') {
            continue;
        }
        if let Ok(v) = a.parse() {
            return v;
        }
    }
    1
}

/// Parse the per-cell solver budget flags shared by the experiment
/// binaries: `--budget-nodes <n>` caps branch & bound nodes,
/// `--budget-ms <ms>` sets a wall-clock deadline. Both may be
/// combined; with neither present the budget is unlimited.
///
/// # Panics
///
/// Panics when a flag is present without a parseable value
/// (experiment drivers want loud failures).
pub fn cli_budget() -> Budget {
    let mut budget = Budget::unlimited();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--budget-nodes" => {
                let v = args.next().expect("--budget-nodes needs a count");
                budget = budget.with_nodes(v.parse().expect("--budget-nodes takes an integer"));
            }
            "--budget-ms" => {
                let v = args.next().expect("--budget-ms needs milliseconds");
                budget = budget.with_deadline(std::time::Duration::from_millis(
                    v.parse().expect("--budget-ms takes an integer"),
                ));
            }
            _ => {}
        }
    }
    budget
}

/// Observability wiring for an experiment binary.
///
/// Instrumentation turns on when `CASA_TRACE` is set to a non-empty
/// value other than `0`, **or** `--trace-out <path>` is on the
/// command line, **or** `--serve <addr>` requests the live telemetry
/// server, **or** `--ts-out <path>` asks for the logical-tick
/// time-series (which only the instrumented flows sample);
/// [`CliObs::finish`] then writes the Chrome `trace_event`
/// JSON (open with `chrome://tracing` or Perfetto) to the requested
/// path, defaulting to `casa_trace.json`.
///
/// When instrumentation is on, the flight recorder's dump sink is
/// also wired up — to `--flight-dump <path>` or `CASA_FLIGHT_DUMP`,
/// defaulting to `casa_flight_dump.json` — and a panic hook is
/// installed so a crash leaves the recent-event ring on disk.
///
/// With `--serve`, the bound address is printed (`serving telemetry
/// on <addr>`) and, when `--serve-addr-file <path>` is given, written
/// to that file — `--serve 127.0.0.1:0` picks a free port, so
/// scripts need a way to find it. When `CASA_WATCHDOG_MS` is set to a
/// non-zero value, a phase watchdog is started alongside the server.
#[derive(Debug)]
pub struct CliObs {
    /// The observability handle to thread through the flows.
    pub obs: Obs,
    /// Where `--trace-out` asked the Chrome trace to go.
    pub trace_out: Option<PathBuf>,
    /// The live telemetry server, when `--serve` asked for one.
    pub serve: Option<casa_obs::ServeHandle>,
    /// The phase watchdog, when `CASA_WATCHDOG_MS` armed one.
    pub watchdog: Option<casa_obs::WatchdogHandle>,
}

/// Parse `--trace-out` / `CASA_TRACE` / `--flight-dump` /
/// `CASA_FLIGHT_DUMP` / `--serve` / `CASA_WATCHDOG_MS` from the
/// environment.
///
/// # Panics
///
/// Panics when `--serve` cannot bind its address or
/// `--serve-addr-file` cannot be written (experiment drivers want
/// loud failures).
pub fn cli_obs() -> CliObs {
    let trace_out = cli_value("--trace-out").map(PathBuf::from);
    let serve_addr = cli_value("--serve");
    let ts_out = cli_value("--ts-out");
    let obs = if trace_out.is_some() || serve_addr.is_some() || ts_out.is_some() {
        Obs::enabled()
    } else {
        Obs::from_env()
    };
    let mut serve = None;
    let mut watchdog = None;
    if obs.is_enabled() {
        let sink = cli_value("--flight-dump")
            .or_else(|| {
                std::env::var("CASA_FLIGHT_DUMP")
                    .ok()
                    .filter(|s| !s.is_empty())
            })
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("casa_flight_dump.json"));
        obs.set_flight_sink(Some(sink));
        obs.install_panic_hook();
        if let Some(addr) = serve_addr {
            let handle = obs
                .serve(&addr)
                .unwrap_or_else(|e| panic!("--serve {addr}: {e}"));
            let bound = handle.local_addr();
            println!("serving telemetry on {bound}");
            if let Some(path) = cli_value("--serve-addr-file") {
                std::fs::write(&path, format!("{bound}\n"))
                    .unwrap_or_else(|e| panic!("--serve-addr-file {path}: {e}"));
            }
            serve = Some(handle);
        }
        if let Some(ms) = casa_obs::watchdog_ms_from_env() {
            watchdog = obs.start_watchdog(casa_obs::WatchdogConfig::new(Duration::from_millis(ms)));
        }
    }
    CliObs {
        obs,
        trace_out,
        serve,
        watchdog,
    }
}

impl CliObs {
    /// When instrumentation is on, write the collected span timeline
    /// as Chrome `trace_event` JSON and return the path written.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (experiment drivers want
    /// loud failures).
    pub fn finish(&self) -> Option<PathBuf> {
        if !self.obs.is_enabled() {
            return None;
        }
        let path = self
            .trace_out
            .clone()
            .unwrap_or_else(|| PathBuf::from("casa_trace.json"));
        let json = chrome_trace_json(&self.obs.events());
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        Some(path)
    }

    /// With `--serve` and `--serve-linger-ms <ms>`, keep the process
    /// (and its telemetry endpoints) alive after the work is done so a
    /// scraper can collect the final state — until a client requests
    /// `/quitquitquit` or the linger window closes, whichever comes
    /// first. A no-op without both flags.
    pub fn linger(&self) {
        let (Some(server), Some(ms)) = (&self.serve, cli_value("--serve-linger-ms")) else {
            return;
        };
        let ms: u64 = ms.parse().expect("--serve-linger-ms takes milliseconds");
        eprintln!(
            "lingering up to {ms} ms for a scraper on {} (GET /quitquitquit to release)",
            server.local_addr()
        );
        server.wait_quit(Duration::from_millis(ms));
    }
}

/// Compile `spec`, optionally scaling loop trip counts by `scale`,
/// and record one execution with `seed`.
///
/// # Panics
///
/// Panics if the walk fails (spec bug) — experiment drivers want a
/// loud failure, not a `Result`.
pub fn prepared(mut spec: BenchmarkSpec, scale: u64, seed: u64) -> PreparedWorkload {
    if scale > 1 {
        spec.scale_trips(scale);
    }
    let name = spec.name.clone();
    let w = spec.compile();
    let walker = Walker::new(&w.program, &w.behaviors);
    let (exec, profile) = walker
        .run(seed)
        .unwrap_or_else(|e| panic!("workload {name} failed to execute: {e}"));
    PreparedWorkload {
        name,
        program: w.program,
        profile,
        exec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_workloads::mediabench;

    #[test]
    fn prepares_adpcm() {
        let p = prepared(mediabench::adpcm(), 1, 42);
        assert_eq!(p.name, "adpcm");
        p.exec.check(&p.program).expect("legal");
        assert!(p.profile.total_fetches(&p.program) > 10_000);
    }

    #[test]
    fn scale_lengthens_execution() {
        let a = prepared(mediabench::adpcm(), 1, 42);
        let b = prepared(mediabench::adpcm(), 2, 42);
        assert!(b.profile.total_fetches(&b.program) > a.profile.total_fetches(&a.program));
    }
}
