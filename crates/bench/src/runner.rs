//! Shared experiment plumbing: compile a benchmark spec, run the
//! walker once, and hand the pieces to the flows.

use casa_ir::{Profile, Program};
use casa_mem::ExecutionTrace;
use casa_workloads::spec::BenchmarkSpec;
use casa_workloads::Walker;

/// A compiled benchmark with one recorded execution.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    /// Benchmark name.
    pub name: String,
    /// The program.
    pub program: Program,
    /// The execution profile (matches `exec`).
    pub profile: Profile,
    /// The dynamic block sequence all flows replay.
    pub exec: ExecutionTrace,
}

/// The optional positional `[scale]` argument shared by the
/// experiment binaries: first CLI argument when it parses as an
/// integer, else 1.
pub fn cli_scale() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Compile `spec`, optionally scaling loop trip counts by `scale`,
/// and record one execution with `seed`.
///
/// # Panics
///
/// Panics if the walk fails (spec bug) — experiment drivers want a
/// loud failure, not a `Result`.
pub fn prepared(mut spec: BenchmarkSpec, scale: u64, seed: u64) -> PreparedWorkload {
    if scale > 1 {
        spec.scale_trips(scale);
    }
    let name = spec.name.clone();
    let w = spec.compile();
    let walker = Walker::new(&w.program, &w.behaviors);
    let (exec, profile) = walker
        .run(seed)
        .unwrap_or_else(|e| panic!("workload {name} failed to execute: {e}"));
    PreparedWorkload {
        name,
        program: w.program,
        profile,
        exec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_workloads::mediabench;

    #[test]
    fn prepares_adpcm() {
        let p = prepared(mediabench::adpcm(), 1, 42);
        assert_eq!(p.name, "adpcm");
        p.exec.check(&p.program).expect("legal");
        assert!(p.profile.total_fetches(&p.program) > 10_000);
    }

    #[test]
    fn scale_lengthens_execution() {
        let a = prepared(mediabench::adpcm(), 1, 42);
        let b = prepared(mediabench::adpcm(), 2, 42);
        assert!(b.profile.total_fetches(&b.program) > a.profile.total_fetches(&a.program));
    }
}
