//! Append-only run-history store: one JSON line per sweep run.
//!
//! `BENCH_sweep.json` answers "what did the *latest* run measure";
//! this module answers "how has that been trending". Every sweep run
//! appends one [`HistoryRecord`] line to `BENCH_history.jsonl` —
//! schema version, timestamp, the grid fingerprint
//! ([`crate::sweep::SweepGrid::fingerprint`]), per-cell results,
//! per-phase wall clocks, and a flattened metrics rollup — and never
//! rewrites old lines, so the perf/energy trajectory of the repo
//! accumulates instead of being clobbered.
//!
//! The reader is hand-rolled on the vendored JSON parser and is
//! **tolerant of unknown fields**: future schema versions may add
//! fields freely, and old readers will keep extracting what they know.
//! Lines that fail to parse (or miss a required field) are skipped and
//! counted, never fatal — a corrupt tail must not invalidate the
//! trajectory before it.
//!
//! Schema policy: [`HISTORY_SCHEMA`] bumps only when the *meaning* of
//! an existing field changes; additions are free. The regression
//! sentinel ([`crate::sentinel`]) only compares records whose schema
//! version and grid fingerprint both match.

use crate::sweep::{CellResult, PhaseRollup, SweepReport};
use casa_core::parse_explain;
use casa_obs::{
    jnum, json_escape, timeseries_json, MetricValue, MetricsSnapshot, TimeSeriesSnapshot,
};
use serde::json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Current history-record schema version.
pub const HISTORY_SCHEMA: u32 = 1;

/// How many top-regret objects the per-cell explain census keeps.
pub const CENSUS_TOP: usize = 5;

/// Per-cell measurements as persisted in a history record — the
/// deterministic result columns plus the (noisy, never
/// exact-compared) wall clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryCell {
    /// Benchmark name.
    pub benchmark: String,
    /// Trip scale of the workload.
    pub scale: u64,
    /// Walker seed of the workload.
    pub seed: u64,
    /// `spm:<allocator>` or `loop-cache`.
    pub flavor: String,
    /// I-cache size in bytes.
    pub cache_size: u32,
    /// I-cache replacement policy.
    pub policy: String,
    /// SPM size or loop-cache capacity in bytes.
    pub local_size: u32,
    /// Total instruction-memory energy, µJ (deterministic).
    pub energy_uj: f64,
    /// I-cache misses in the final simulation (deterministic).
    pub cache_misses: u64,
    /// Solver tree-search nodes (deterministic; `None` for flows
    /// without a tree search).
    pub solver_nodes: Option<u64>,
    /// Allocation proof status.
    pub status: String,
    /// Proven absolute optimality gap (deterministic under node
    /// budgets).
    pub gap: Option<f64>,
    /// Allocator wall time, seconds (noisy).
    pub solver_secs: f64,
    /// Whole-cell wall time, seconds (noisy).
    pub cell_secs: f64,
}

impl HistoryCell {
    /// Identity of the cell inside one grid: everything that names its
    /// configuration, nothing that it measured.
    pub fn key(&self) -> String {
        format!(
            "{}/s{}/r{}/{}/c{}/{}/l{}",
            self.benchmark,
            self.scale,
            self.seed,
            self.flavor,
            self.cache_size,
            self.policy,
            self.local_size
        )
    }
}

impl From<&CellResult> for HistoryCell {
    fn from(c: &CellResult) -> HistoryCell {
        HistoryCell {
            benchmark: c.benchmark.clone(),
            scale: c.scale,
            seed: c.seed,
            flavor: c.flavor.clone(),
            cache_size: c.cache_size,
            policy: c.policy.clone(),
            local_size: c.local_size,
            energy_uj: c.energy_uj,
            cache_misses: c.cache_misses,
            solver_nodes: c.solver_nodes,
            status: c.status.clone(),
            gap: c.gap,
            solver_secs: c.solver_secs,
            cell_secs: c.cell_secs,
        }
    }
}

/// One object of a cell's explain census: the highest-regret
/// placements of the run, compact enough to persist on every line.
#[derive(Debug, Clone, PartialEq)]
pub struct CensusObject {
    /// Object index in the cell's conflict graph.
    pub index: usize,
    /// Whether the run placed it on the scratchpad.
    pub on_spm: bool,
    /// Energy at stake in the placement, nJ (the explain document's
    /// regret: linear saving plus realized conflict premium).
    pub regret: f64,
}

/// Top-regret object census of one cell, distilled from its explain
/// document when the sweep ran with explain capture. An *addition*
/// under the schema policy: absent on old lines (and on runs without
/// capture), and [`crate::sentinel`] uses it only when both sides of a
/// comparison carry one.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainCensus {
    /// [`HistoryCell::key`] of the cell the census describes.
    pub key: String,
    /// Top [`CENSUS_TOP`] objects by regret (descending, ties by
    /// index).
    pub objects: Vec<CensusObject>,
}

/// Distill a cell's explain document to its census: parse, rank by
/// regret, keep the top [`CENSUS_TOP`]. `None` when the document is
/// missing or unreadable (census is context, never a hard dependency).
fn census_of(cell: &CellResult) -> Option<ExplainCensus> {
    let doc = parse_explain(cell.explain.as_deref()?).ok()?;
    let mut objects: Vec<&casa_core::ObjectExplain> = doc.objects.iter().collect();
    objects.sort_by(|a, b| {
        b.regret
            .partial_cmp(&a.regret)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.index.cmp(&b.index))
    });
    Some(ExplainCensus {
        key: HistoryCell::from(cell).key(),
        objects: objects
            .into_iter()
            .take(CENSUS_TOP)
            .map(|o| CensusObject {
                index: o.index,
                on_spm: o.on_spm,
                regret: o.regret,
            })
            .collect(),
    })
}

/// One appended line of `BENCH_history.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Schema version the record was written under.
    pub schema_version: u32,
    /// Unix timestamp (seconds) of the run.
    pub ts_unix_s: u64,
    /// [`crate::sweep::SweepGrid::fingerprint`] of the grid that ran.
    pub grid_hash: String,
    /// Worker threads used.
    pub threads: usize,
    /// Preparation-phase wall time, seconds (noisy).
    pub prepare_secs: f64,
    /// Execution-phase wall time, seconds (noisy).
    pub execute_secs: f64,
    /// Total sweep wall time, seconds (noisy).
    pub total_secs: f64,
    /// Per-cell results, grid order.
    pub cells: Vec<HistoryCell>,
    /// Per-phase span rollups (empty when observability was off).
    pub phases: Vec<PhaseRollup>,
    /// Flattened metrics rollup: counters and gauges by name,
    /// histograms as `<name>.count/.sum/.p50/.p90/.p99`.
    pub metrics: BTreeMap<String, f64>,
    /// Logical-tick time-series of the run (grid-order merge of
    /// `sweep.*` and per-cell series). An *addition* under the schema
    /// policy: old readers ignore the field, and records written
    /// before it parse back with an empty snapshot.
    pub timeseries: TimeSeriesSnapshot,
    /// Per-cell top-regret object census (grid order), present only
    /// when the sweep captured explain documents. Same addition
    /// policy as the time-series.
    pub explain_census: Vec<ExplainCensus>,
}

/// Flatten a metrics snapshot to scalars for longitudinal storage:
/// counters and gauges keep their name, histograms expand to
/// `.count`, `.sum` and the within-bucket-interpolated
/// `.p50`/`.p90`/`.p99` quantile estimates (omitted when empty).
pub fn flatten_metrics(snap: &MetricsSnapshot) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for (name, v) in snap {
        match v {
            MetricValue::Counter(c) => {
                out.insert(name.clone(), *c as f64);
            }
            MetricValue::Gauge(g) => {
                out.insert(name.clone(), *g);
            }
            MetricValue::Histogram(h) => {
                out.insert(format!("{name}.count"), h.count as f64);
                out.insert(format!("{name}.sum"), h.sum as f64);
                for (tag, q) in [("p50", h.p50()), ("p90", h.p90()), ("p99", h.p99())] {
                    if let Some(q) = q {
                        out.insert(format!("{name}.{tag}"), q);
                    }
                }
            }
        }
    }
    out
}

/// Seconds since the Unix epoch (0 if the clock is before it).
pub fn unix_now_s() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

impl HistoryRecord {
    /// Build the record for one finished sweep run.
    pub fn from_report(report: &SweepReport, grid_hash: &str, ts_unix_s: u64) -> HistoryRecord {
        HistoryRecord {
            schema_version: HISTORY_SCHEMA,
            ts_unix_s,
            grid_hash: grid_hash.to_string(),
            threads: report.threads,
            prepare_secs: report.prepare_secs,
            execute_secs: report.execute_secs,
            total_secs: report.total_secs,
            cells: report.cells.iter().map(HistoryCell::from).collect(),
            phases: report.phases.clone(),
            metrics: flatten_metrics(&report.metrics),
            timeseries: report.timeseries.clone(),
            explain_census: report.cells.iter().filter_map(census_of).collect(),
        }
    }

    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = format!(
            "{{\"schema_version\":{},\"ts_unix_s\":{},\"grid_hash\":\"{}\",\"threads\":{},\
             \"prepare_secs\":{},\"execute_secs\":{},\"total_secs\":{},\"cells\":[",
            self.schema_version,
            self.ts_unix_s,
            json_escape(&self.grid_hash),
            self.threads,
            jnum(self.prepare_secs),
            jnum(self.execute_secs),
            jnum(self.total_secs),
        );
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"benchmark\":\"{}\",\"scale\":{},\"seed\":{},\"flavor\":\"{}\",\
                 \"cache_size\":{},\"policy\":\"{}\",\"local_size\":{},\"energy_uj\":{},\
                 \"cache_misses\":{},\"solver_nodes\":{},\"status\":\"{}\",\"gap\":{},\
                 \"solver_secs\":{},\"cell_secs\":{}}}",
                json_escape(&c.benchmark),
                c.scale,
                c.seed,
                json_escape(&c.flavor),
                c.cache_size,
                json_escape(&c.policy),
                c.local_size,
                jnum(c.energy_uj),
                c.cache_misses,
                c.solver_nodes
                    .map_or_else(|| "null".to_string(), |n| n.to_string()),
                json_escape(&c.status),
                c.gap.map_or_else(|| "null".to_string(), jnum),
                jnum(c.solver_secs),
                jnum(c.cell_secs),
            );
        }
        s.push_str("],\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"count\":{},\"total_us\":{}}}",
                json_escape(&p.name),
                p.count,
                p.total_us
            );
        }
        s.push_str("],\"metrics\":{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", json_escape(k), jnum(*v));
        }
        s.push('}');
        let _ = write!(s, ",\"timeseries\":{}", timeseries_json(&self.timeseries));
        if !self.explain_census.is_empty() {
            s.push_str(",\"explain_census\":[");
            for (i, c) in self.explain_census.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{{\"key\":\"{}\",\"objects\":[", json_escape(&c.key));
                for (j, o) in c.objects.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "{{\"i\":{},\"on_spm\":{},\"regret\":{}}}",
                        o.index,
                        o.on_spm,
                        jnum(o.regret)
                    );
                }
                s.push_str("]}");
            }
            s.push(']');
        }
        s.push('}');
        s
    }

    /// Parse one history line. `None` when the line is not a JSON
    /// object or misses a required field — unknown *extra* fields are
    /// ignored by construction (only known keys are looked up).
    pub fn parse(line: &str) -> Option<HistoryRecord> {
        let v = serde::json::parse(line).ok()?;
        let num = |k: &str| v.get(k).and_then(Value::as_f64);
        let cells = v
            .get("cells")?
            .as_array()?
            .iter()
            .map(parse_cell)
            .collect::<Option<Vec<_>>>()?;
        let phases = v
            .get("phases")
            .and_then(Value::as_array)
            .map(|a| a.iter().filter_map(parse_phase).collect())
            .unwrap_or_default();
        let metrics = v
            .get("metrics")
            .and_then(Value::as_object)
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| Some((k.clone(), v.as_f64()?)))
                    .collect()
            })
            .unwrap_or_default();
        Some(HistoryRecord {
            schema_version: num("schema_version")? as u32,
            ts_unix_s: num("ts_unix_s")? as u64,
            grid_hash: v.get("grid_hash")?.as_str()?.to_string(),
            threads: num("threads").unwrap_or(0.0) as usize,
            prepare_secs: num("prepare_secs").unwrap_or(0.0),
            execute_secs: num("execute_secs").unwrap_or(0.0),
            total_secs: num("total_secs").unwrap_or(0.0),
            cells,
            phases,
            metrics,
            timeseries: v
                .get("timeseries")
                .map(parse_timeseries)
                .unwrap_or_default(),
            explain_census: v
                .get("explain_census")
                .and_then(Value::as_array)
                .map(|a| a.iter().filter_map(parse_census).collect())
                .unwrap_or_default(),
        })
    }
}

/// Parse one census entry; malformed objects are skipped (diagnostic
/// context, not a required column).
fn parse_census(v: &Value) -> Option<ExplainCensus> {
    Some(ExplainCensus {
        key: v.get("key")?.as_str()?.to_string(),
        objects: v
            .get("objects")?
            .as_array()?
            .iter()
            .filter_map(|o| {
                Some(CensusObject {
                    index: o.get("i")?.as_f64()? as usize,
                    on_spm: o.get("on_spm")?.as_bool()?,
                    regret: o.get("regret")?.as_f64()?,
                })
            })
            .collect(),
    })
}

/// Parse an embedded `casa_timeseries` document back to a snapshot.
/// Malformed points are skipped (never fatal): the time-series is
/// diagnostic context, not a required column.
fn parse_timeseries(v: &Value) -> TimeSeriesSnapshot {
    let mut snap = TimeSeriesSnapshot {
        cap: v.get("cap").and_then(Value::as_f64).unwrap_or(0.0) as usize,
        dropped: v.get("dropped").and_then(Value::as_f64).unwrap_or(0.0) as u64,
        series: BTreeMap::new(),
    };
    let Some(series) = v.get("series").and_then(Value::as_object) else {
        return snap;
    };
    for (name, points) in series {
        let Some(points) = points.as_array() else {
            continue;
        };
        let parsed: Vec<(u64, f64)> = points
            .iter()
            .filter_map(|p| {
                let p = p.as_array()?;
                let tick = p.first()?.as_f64()? as u64;
                // `null` marks a non-finite sample; keep the point.
                let value = p.get(1).and_then(Value::as_f64).unwrap_or(f64::NAN);
                Some((tick, value))
            })
            .collect();
        snap.series.insert(name.clone(), parsed);
    }
    snap
}

fn parse_cell(v: &Value) -> Option<HistoryCell> {
    let num = |k: &str| v.get(k).and_then(Value::as_f64);
    let s = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
    Some(HistoryCell {
        benchmark: s("benchmark")?,
        scale: num("scale")? as u64,
        seed: num("seed")? as u64,
        flavor: s("flavor")?,
        cache_size: num("cache_size")? as u32,
        policy: s("policy")?,
        local_size: num("local_size")? as u32,
        energy_uj: num("energy_uj")?,
        cache_misses: num("cache_misses").unwrap_or(0.0) as u64,
        solver_nodes: num("solver_nodes").map(|n| n as u64),
        status: s("status").unwrap_or_default(),
        gap: num("gap"),
        solver_secs: num("solver_secs").unwrap_or(0.0),
        cell_secs: num("cell_secs").unwrap_or(0.0),
    })
}

fn parse_phase(v: &Value) -> Option<PhaseRollup> {
    Some(PhaseRollup {
        name: v.get("name")?.as_str()?.to_string(),
        count: v.get("count")?.as_f64()? as u64,
        total_us: v.get("total_us")?.as_f64()? as u64,
    })
}

/// What [`read_history`] returns: the parseable records in file order
/// plus how many non-empty lines were skipped as malformed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistoryLog {
    /// Records in append (= chronological) order.
    pub records: Vec<HistoryRecord>,
    /// Non-empty lines that failed to parse.
    pub skipped_lines: usize,
}

/// Append one record as a line to `path`, creating the file if needed.
pub fn append_record(path: &Path, record: &HistoryRecord) -> io::Result<()> {
    use io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(record.to_json_line().as_bytes())?;
    f.write_all(b"\n")
}

/// Read the whole history. A missing file is an empty history, not an
/// error; malformed lines are skipped and counted.
pub fn read_history(path: &Path) -> io::Result<HistoryLog> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(HistoryLog::default()),
        Err(e) => return Err(e),
    };
    let mut log = HistoryLog::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match HistoryRecord::parse(line) {
            Some(r) => log.records.push(r),
            None => log.skipped_lines += 1,
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casa_obs::{HistogramSnapshot, MetricValue};

    fn cell(benchmark: &str, energy: f64) -> HistoryCell {
        HistoryCell {
            benchmark: benchmark.to_string(),
            scale: 1,
            seed: 2004,
            flavor: "spm:CasaBb".to_string(),
            cache_size: 128,
            policy: "Lru".to_string(),
            local_size: 64,
            energy_uj: energy,
            cache_misses: 123,
            solver_nodes: Some(17),
            status: "optimal".to_string(),
            gap: Some(0.0),
            solver_secs: 0.01,
            cell_secs: 0.05,
        }
    }

    fn record(energy: f64) -> HistoryRecord {
        HistoryRecord {
            schema_version: HISTORY_SCHEMA,
            ts_unix_s: 1_700_000_000,
            grid_hash: "deadbeefdeadbeef".to_string(),
            threads: 2,
            prepare_secs: 0.2,
            execute_secs: 0.5,
            total_secs: 0.8,
            cells: vec![cell("adpcm", energy)],
            phases: vec![PhaseRollup {
                name: "solve".to_string(),
                count: 3,
                total_us: 1500,
            }],
            metrics: BTreeMap::from([("solver.nodes".to_string(), 17.0)]),
            timeseries: TimeSeriesSnapshot {
                cap: 8,
                dropped: 0,
                series: BTreeMap::from([
                    ("sweep.energy_uj".to_string(), vec![(0, energy)]),
                    ("bb.incumbent_savings".to_string(), vec![(1, 3.5), (4, 7.0)]),
                ]),
            },
            explain_census: vec![ExplainCensus {
                key: cell("adpcm", energy).key(),
                objects: vec![
                    CensusObject {
                        index: 6,
                        on_spm: true,
                        regret: 9_000.5,
                    },
                    CensusObject {
                        index: 2,
                        on_spm: false,
                        regret: 450.0,
                    },
                ],
            }],
        }
    }

    #[test]
    fn record_round_trips_through_its_own_line() {
        let r = record(123.456);
        let line = r.to_json_line();
        assert!(!line.contains('\n'), "one record, one line");
        let back = HistoryRecord::parse(&line).expect("parse own output");
        assert_eq!(back, r);
    }

    #[test]
    fn reader_tolerates_unknown_fields() {
        let r = record(1.0);
        let line = r.to_json_line();
        // A future writer adds fields everywhere: top level, cell
        // level. The current reader must not care.
        let future = line
            .replacen(
                "{\"schema_version\"",
                "{\"hostname\":\"ci-runner-7\",\"schema_version\"",
                1,
            )
            .replacen(
                "{\"benchmark\"",
                "{\"future_column\":[1,2],\"benchmark\"",
                1,
            );
        let back = HistoryRecord::parse(&future).expect("unknown fields are ignored");
        assert_eq!(back, r);
    }

    #[test]
    fn append_and_read_skip_malformed_lines() {
        let path =
            std::env::temp_dir().join(format!("casa_history_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_record(&path, &record(1.0)).unwrap();
        // A torn write (crash mid-append) must not poison the log.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, "{{\"schema_version\":1,\"truncat").unwrap();
        }
        append_record(&path, &record(2.0)).unwrap();
        let log = read_history(&path).unwrap();
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.skipped_lines, 1);
        assert_eq!(log.records[0].cells[0].energy_uj, 1.0);
        assert_eq!(log.records[1].cells[0].energy_uj, 2.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lines_without_timeseries_parse_to_an_empty_snapshot() {
        // A record written before the timeseries field existed.
        let mut r = record(1.0);
        let line = r.to_json_line();
        let (prefix, _) = line.split_once(",\"timeseries\":").expect("field present");
        let old_line = format!("{prefix}}}");
        let back = HistoryRecord::parse(&old_line).expect("old line still parses");
        r.timeseries = TimeSeriesSnapshot::default();
        r.explain_census = Vec::new();
        assert_eq!(back, r);
    }

    #[test]
    fn missing_file_is_empty_history() {
        let log = read_history(Path::new("/nonexistent/casa/history.jsonl")).unwrap();
        assert!(log.records.is_empty());
        assert_eq!(log.skipped_lines, 0);
    }

    #[test]
    fn cell_key_names_configuration_not_measurement() {
        let a = cell("adpcm", 1.0);
        let b = cell("adpcm", 99.0);
        assert_eq!(a.key(), b.key(), "measurements don't change identity");
        let mut c = cell("adpcm", 1.0);
        c.local_size = 128;
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn flatten_expands_histograms_with_quantiles() {
        let mut snap = MetricsSnapshot::new();
        snap.insert("n".to_string(), MetricValue::Counter(5));
        snap.insert("g".to_string(), MetricValue::Gauge(1.5));
        let h = HistogramSnapshot {
            count: 2,
            sum: 5,
            buckets: vec![(1, 1), (7, 1)],
            min: Some(1),
            max: Some(4),
        };
        snap.insert("h".to_string(), MetricValue::Histogram(h));
        let flat = flatten_metrics(&snap);
        assert_eq!(flat.get("n"), Some(&5.0));
        assert_eq!(flat.get("g"), Some(&1.5));
        assert_eq!(flat.get("h.count"), Some(&2.0));
        assert_eq!(flat.get("h.sum"), Some(&5.0));
        assert_eq!(flat.get("h.p50"), Some(&1.0));
        assert_eq!(flat.get("h.p99"), Some(&4.0));
    }
}
