//! The paper's experiments, one function per table/figure.

use crate::runner::PreparedWorkload;
use casa_core::flow::{
    run_loop_cache_flow, run_spm_flow, AllocatorKind, FlowConfig, FlowCtx, FlowReport,
    LoopCacheConfig,
};
use casa_energy::TechParams;
use casa_mem::cache::CacheConfig;
use casa_obs::Obs;
use serde::{Deserialize, Serialize};

/// Loop-cache comparator slots assumed throughout (paper §5: "maximum
/// of 4 loops").
pub const LOOP_CACHE_SLOTS: usize = 4;
/// Cache line size used by every experiment.
pub const LINE_SIZE: u32 = 16;

fn spm_config(cache_size: u32, spm_size: u32, allocator: AllocatorKind) -> FlowConfig {
    FlowConfig {
        cache: CacheConfig::direct_mapped(cache_size, LINE_SIZE),
        spm_size,
        allocator,
        tech: TechParams::default(),
        trace_cap: None,
    }
}

/// Run one SPM flow, panicking on failure (experiment drivers want
/// loud failures).
fn spm_flow(w: &PreparedWorkload, cache_size: u32, spm: u32, alloc: AllocatorKind) -> FlowReport {
    spm_flow_obs(w, cache_size, spm, alloc, &Obs::disabled())
}

fn spm_flow_obs(
    w: &PreparedWorkload,
    cache_size: u32,
    spm: u32,
    alloc: AllocatorKind,
    obs: &Obs,
) -> FlowReport {
    run_spm_flow(
        &w.program,
        &w.profile,
        &w.exec,
        &spm_config(cache_size, spm, alloc),
        &FlowCtx::observed(obs),
    )
    .unwrap_or_else(|e| panic!("{} spm flow failed: {e}", w.name))
}

fn lc_flow(w: &PreparedWorkload, cache_size: u32, capacity: u32) -> FlowReport {
    lc_flow_obs(w, cache_size, capacity, &Obs::disabled())
}

fn lc_flow_obs(w: &PreparedWorkload, cache_size: u32, capacity: u32, obs: &Obs) -> FlowReport {
    run_loop_cache_flow(
        &w.program,
        &w.profile,
        &w.exec,
        &LoopCacheConfig::new(
            CacheConfig::direct_mapped(cache_size, LINE_SIZE),
            capacity,
            LOOP_CACHE_SLOTS,
        ),
        &FlowCtx::observed(obs),
    )
    .unwrap_or_else(|e| panic!("{} loop-cache flow failed: {e}", w.name))
}

/// One row of figure 4: CASA's parameters as a percentage of
/// Steinke's (= 100%).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Scratchpad size in bytes.
    pub spm_size: u32,
    /// Scratchpad accesses, % of Steinke.
    pub spm_accesses_pct: f64,
    /// I-cache accesses, % of Steinke.
    pub cache_accesses_pct: f64,
    /// I-cache misses, % of Steinke.
    pub cache_misses_pct: f64,
    /// Energy, % of Steinke.
    pub energy_pct: f64,
}

fn pct(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        if a == 0.0 {
            100.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * a / b
    }
}

/// Figure 4: CASA vs. Steinke on MPEG with a 2 kB direct-mapped
/// I-cache, scratchpad sizes swept.
pub fn fig4(w: &PreparedWorkload, cache_size: u32, spm_sizes: &[u32]) -> Vec<Fig4Row> {
    spm_sizes
        .iter()
        .map(|&spm| {
            let casa = spm_flow(w, cache_size, spm, AllocatorKind::CasaBb);
            let steinke = spm_flow(w, cache_size, spm, AllocatorKind::Steinke);
            let (cs, ss) = (&casa.final_sim.stats, &steinke.final_sim.stats);
            Fig4Row {
                spm_size: spm,
                spm_accesses_pct: pct(cs.spm_accesses as f64, ss.spm_accesses as f64),
                cache_accesses_pct: pct(cs.cache_accesses as f64, ss.cache_accesses as f64),
                cache_misses_pct: pct(cs.cache_misses as f64, ss.cache_misses as f64),
                energy_pct: pct(casa.breakdown.total_nj, steinke.breakdown.total_nj),
            }
        })
        .collect()
}

/// One row of figure 5: the CASA scratchpad's parameters as a
/// percentage of the preloaded loop cache's (= 100%).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// SPM / loop-cache size in bytes.
    pub size: u32,
    /// SPM accesses as % of loop-cache accesses.
    pub local_accesses_pct: f64,
    /// I-cache accesses, % of the loop-cache system's.
    pub cache_accesses_pct: f64,
    /// I-cache misses, % of the loop-cache system's.
    pub cache_misses_pct: f64,
    /// Energy, % of the loop-cache system's.
    pub energy_pct: f64,
}

/// Figure 5: scratchpad + CASA vs. loop cache + Ross at equal sizes.
pub fn fig5(w: &PreparedWorkload, cache_size: u32, sizes: &[u32]) -> Vec<Fig5Row> {
    sizes
        .iter()
        .map(|&size| {
            let casa = spm_flow(w, cache_size, size, AllocatorKind::CasaBb);
            let lc = lc_flow(w, cache_size, size);
            let (cs, ls) = (&casa.final_sim.stats, &lc.final_sim.stats);
            Fig5Row {
                size,
                local_accesses_pct: pct(cs.spm_accesses as f64, ls.loop_cache_accesses as f64),
                cache_accesses_pct: pct(cs.cache_accesses as f64, ls.cache_accesses as f64),
                cache_misses_pct: pct(cs.cache_misses as f64, ls.cache_misses as f64),
                energy_pct: pct(casa.breakdown.total_nj, lc.breakdown.total_nj),
            }
        })
        .collect()
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Scratchpad / loop-cache size in bytes.
    pub mem_size: u32,
    /// Energy (µJ) of scratchpad + CASA.
    pub sp_casa_uj: f64,
    /// Energy (µJ) of scratchpad + Steinke.
    pub sp_steinke_uj: f64,
    /// Energy (µJ) of loop cache + Ross.
    pub lc_ross_uj: f64,
    /// CASA allocator wall time (for the §4 "< 1 s" claim), seconds.
    pub casa_solver_secs: f64,
}

impl Table1Row {
    /// Improvement of CASA over Steinke, % (positive = CASA better).
    pub fn casa_vs_steinke_pct(&self) -> f64 {
        100.0 * (1.0 - self.sp_casa_uj / self.sp_steinke_uj)
    }

    /// Improvement of SP(CASA) over LC(Ross), %.
    pub fn casa_vs_lc_pct(&self) -> f64 {
        100.0 * (1.0 - self.sp_casa_uj / self.lc_ross_uj)
    }
}

/// Per-benchmark block of Table 1: all sizes plus the averages the
/// paper prints under each block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Block {
    /// Rows, one per memory size.
    pub rows: Vec<Table1Row>,
}

impl Table1Block {
    /// Average CASA-vs-Steinke improvement over the block.
    pub fn avg_vs_steinke(&self) -> f64 {
        self.rows
            .iter()
            .map(Table1Row::casa_vs_steinke_pct)
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Average CASA-vs-loop-cache improvement over the block.
    pub fn avg_vs_lc(&self) -> f64 {
        self.rows.iter().map(Table1Row::casa_vs_lc_pct).sum::<f64>() / self.rows.len() as f64
    }
}

/// Table 1 for one benchmark: `cache_size` per the paper (2 kB mpeg,
/// 1 kB g721, 128 B adpcm), `sizes` are the SPM/LC sizes of the rows.
pub fn table1(w: &PreparedWorkload, cache_size: u32, sizes: &[u32]) -> Table1Block {
    table1_obs(w, cache_size, sizes, &Obs::disabled())
}

/// [`table1`] with observability: every flow of every row runs
/// instrumented against `obs`, so a `--trace-out` run of the table1
/// binary yields a span timeline covering all 3×N×3 flows.
pub fn table1_obs(w: &PreparedWorkload, cache_size: u32, sizes: &[u32], obs: &Obs) -> Table1Block {
    let rows = sizes
        .iter()
        .map(|&size| {
            let casa = spm_flow_obs(w, cache_size, size, AllocatorKind::CasaBb, obs);
            let steinke = spm_flow_obs(w, cache_size, size, AllocatorKind::Steinke, obs);
            let lc = lc_flow_obs(w, cache_size, size, obs);
            Table1Row {
                benchmark: w.name.clone(),
                mem_size: size,
                sp_casa_uj: casa.energy_uj(),
                sp_steinke_uj: steinke.energy_uj(),
                lc_ross_uj: lc.energy_uj(),
                casa_solver_secs: casa.solver_time.as_secs_f64(),
            }
        })
        .collect();
    Table1Block { rows }
}

/// The paper's memory sizes per benchmark (Table 1).
pub fn paper_sizes(benchmark: &str) -> (u32, Vec<u32>) {
    match benchmark {
        "adpcm" => (128, vec![64, 128, 256]),
        "g721" => (1024, vec![128, 256, 512, 1024]),
        "mpeg" => (2048, vec![128, 256, 512, 1024]),
        other => panic!("unknown benchmark {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepared;
    use casa_workloads::mediabench;

    #[test]
    fn fig4_shape_on_adpcm() {
        // Use the small benchmark for test speed; the inversion the
        // paper highlights (CASA: more cache accesses, fewer misses,
        // less energy) must show at some size.
        let w = prepared(mediabench::adpcm(), 1, 2004);
        let rows = fig4(&w, 128, &[64, 128, 256]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.energy_pct.is_finite());
            assert!(r.cache_misses_pct.is_finite());
        }
        // CASA never loses by much, and wins somewhere.
        assert!(
            rows.iter().any(|r| r.energy_pct < 100.0),
            "CASA should beat Steinke at some size: {rows:?}"
        );
    }

    #[test]
    fn table1_adpcm_block() {
        // Seed 2004 is the canonical experiment seed used by the
        // drivers; allocation quality is (mildly) execution-dependent,
        // exactly as the paper's own negative rows show.
        let w = prepared(mediabench::adpcm(), 1, 2004);
        let (cache, sizes) = paper_sizes("adpcm");
        let block = table1(&w, cache, &sizes);
        assert_eq!(block.rows.len(), 3);
        for r in &block.rows {
            assert!(r.sp_casa_uj > 0.0);
            assert!(r.sp_steinke_uj > 0.0);
            assert!(r.lc_ross_uj > 0.0);
            // §4 runtime claim at this scale.
            assert!(r.casa_solver_secs < 1.0);
        }
        // CASA's exactness is a *model* theorem: evaluated on the
        // profiled conflict graph, its allocation never loses to
        // Steinke's. In simulation individual rows can flip either
        // way (the paper's own adpcm@64 row is -4.2 %): attribution
        // chains under heavy cache pressure make the model optimistic
        // and Steinke's move semantics compacts the main-memory
        // layout, so the sign of the simulated average depends on the
        // recorded execution. Assert the theorem exactly, and bound
        // the simulation drift.
        use casa_core::energy_model::EnergyModel;
        for &size in &sizes {
            let casa = spm_flow(&w, cache, size, AllocatorKind::CasaBb);
            let steinke = spm_flow(&w, cache, size, AllocatorKind::Steinke);
            let model = EnergyModel::new(&casa.conflict_graph, &casa.energy_table);
            let e_casa = model.total_energy(&casa.allocation.on_spm);
            let e_steinke = model.total_energy(&steinke.allocation.on_spm);
            assert!(
                e_casa <= e_steinke + 1e-9,
                "CASA must be model-optimal at spm {size}: {e_casa} vs {e_steinke}"
            );
        }
        // Paper shape: at the largest size the scratchpad finally
        // covers the thrashing working set and CASA crushes the
        // cache-only baseline.
        let largest = *sizes.last().unwrap();
        let base = spm_flow(&w, cache, largest, AllocatorKind::None);
        let casa = spm_flow(&w, cache, largest, AllocatorKind::CasaBb);
        assert!(
            casa.energy_uj() * 5.0 < base.energy_uj(),
            "CASA at spm {largest} must beat the baseline by 5x: {} vs {}",
            casa.energy_uj(),
            base.energy_uj()
        );
        // Simulated CASA-vs-Steinke average stays within the
        // documented model/simulation gap.
        assert!(
            block.avg_vs_steinke() > -15.0,
            "simulation drift out of range, block: {:?}",
            block
                .rows
                .iter()
                .map(Table1Row::casa_vs_steinke_pct)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn fig5_loop_cache_loses_at_large_sizes() {
        // adpcm for speed; the paper's fig. 5 mechanism — the 4-object
        // limit binds as sizes grow — is benchmark-independent.
        let w = prepared(mediabench::adpcm(), 1, 2004);
        let rows = fig5(&w, 128, &[64, 128, 256]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.energy_pct.is_finite());
        }
        // The largest size shows the clearest SPM win.
        let last = rows.last().unwrap();
        assert!(
            last.energy_pct < 100.0,
            "SPM must beat the loop cache at the largest size: {rows:?}"
        );
        // And the win grows (or at least does not collapse) with size.
        assert!(
            last.energy_pct <= rows[0].energy_pct + 10.0,
            "loop cache should fall behind as size grows: {rows:?}"
        );
    }

    #[test]
    fn paper_sizes_match_table() {
        assert_eq!(paper_sizes("adpcm"), (128, vec![64, 128, 256]));
        assert_eq!(paper_sizes("mpeg").0, 2048);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        paper_sizes("nope");
    }
}
