//! # casa-bench — experiment drivers
//!
//! Reproduces every table and figure of the paper's evaluation (§6):
//!
//! * [`experiments::fig4`] — CASA vs. Steinke on MPEG (2 kB
//!   direct-mapped I-cache), parameters as % of Steinke = 100%.
//! * [`experiments::fig5`] — CASA scratchpad vs. Ross preloaded loop
//!   cache, parameters as % of loop cache = 100%.
//! * [`experiments::table1`] — energy (µJ) for all three benchmarks ×
//!   all memory sizes × {SP(CASA), SP(Steinke), LC(Ross)} with
//!   improvement percentages and per-benchmark averages.
//!
//! Run the binaries (`cargo run --release -p casa-bench --bin table1`)
//! for the full tables; the criterion benches under `benches/` measure
//! the same pipelines for the §4 runtime claim.
//!
//! Multi-configuration sweeps go through [`sweep::SweepGrid`], which
//! executes cells on a worker pool (size from `CASA_SWEEP_THREADS`)
//! while keeping the report byte-identical for every worker count —
//! `cargo run --release -p casa-bench --bin sweep` writes the
//! canonical Table-1 sweep to `BENCH_sweep.json` and appends one
//! [`history::HistoryRecord`] per run to `BENCH_history.jsonl`.
//! The [`sentinel`] module (and `--bin sentinel`) diffs the newest
//! record against the median of prior comparable runs with
//! noise-aware per-metric thresholds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod history;
pub mod runner;
pub mod sentinel;
pub mod sweep;

pub use experiments::{fig4, fig5, table1};
pub use history::{append_record, read_history, HistoryCell, HistoryRecord, HISTORY_SCHEMA};
pub use runner::{prepared, PreparedWorkload};
pub use sentinel::{compare, regress_json, render_report, SentinelConfig, SentinelReport};
pub use sweep::{sweep_threads, SweepGrid, SweepReport};
