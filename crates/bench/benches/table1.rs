//! Table 1 regeneration bench: prints the full table once (energy in
//! µJ for SP(CASA) / SP(Steinke) / LC(Ross) with improvement columns,
//! exactly the rows the paper reports), then measures the per-row
//! pipeline cost for each benchmark.

use casa_bench::experiments::{paper_sizes, table1};
use casa_bench::runner::{prepared, PreparedWorkload};
use casa_workloads::mediabench;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let prepared_all: Vec<PreparedWorkload> = mediabench::all()
        .into_iter()
        .map(|s| prepared(s, 1, 2004))
        .collect();

    println!("\nTable 1 (energies in µJ):");
    println!(
        "{:<8} {:>7} {:>11} {:>12} {:>10} {:>14} {:>12}",
        "bench", "size", "SP(CASA)", "SP(Steinke)", "LC(Ross)", "vs Steinke %", "vs LC %"
    );
    for w in &prepared_all {
        let (cache, sizes) = paper_sizes(&w.name);
        let block = table1(w, cache, &sizes);
        for r in &block.rows {
            println!(
                "{:<8} {:>7} {:>11.2} {:>12.2} {:>10.2} {:>14.1} {:>12.1}",
                r.benchmark,
                r.mem_size,
                r.sp_casa_uj,
                r.sp_steinke_uj,
                r.lc_ross_uj,
                r.casa_vs_steinke_pct(),
                r.casa_vs_lc_pct()
            );
        }
        println!(
            "{:<8} {:>7} {:>11} {:>12} {:>10} {:>14.1} {:>12.1}",
            "",
            "avg",
            "",
            "",
            "",
            block.avg_vs_steinke(),
            block.avg_vs_lc()
        );
    }

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for w in &prepared_all {
        let (cache, sizes) = paper_sizes(&w.name);
        let mid = sizes[sizes.len() / 2];
        group.bench_function(format!("{}_one_row", w.name), |b| {
            b.iter(|| black_box(table1(w, cache, &[mid])))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
