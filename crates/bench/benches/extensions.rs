//! Benchmarks for the extension systems: overlay allocation (ILP vs
//! candidate DP), joint code+data allocation, placement, and the WCET
//! analysis. These back the DESIGN.md §6 ablation notes with numbers.

use casa_bench::experiments::LINE_SIZE;
use casa_bench::runner::prepared;
use casa_core::data_alloc::run_joint_flow;
use casa_core::overlay::{run_overlay_flow, OverlayMethod};
use casa_core::placement::run_placement_flow;
use casa_core::wcet::{wcet_bound, WcetCosts};
use casa_energy::TechParams;
use casa_ilp::SolverOptions;
use casa_mem::cache::CacheConfig;
use casa_workloads::{mediabench, BranchBehavior, Walker};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_overlay(c: &mut Criterion) {
    let w = prepared(mediabench::adpcm(), 1, 2004);
    let cache = CacheConfig::direct_mapped(128, LINE_SIZE);
    let mut group = c.benchmark_group("overlay/adpcm");
    group.sample_size(10);
    group.bench_function("ilp_2_phases", |b| {
        b.iter(|| {
            black_box(
                run_overlay_flow(
                    &w.program,
                    &w.profile,
                    &w.exec,
                    cache,
                    128,
                    2,
                    OverlayMethod::Ilp,
                    &TechParams::default(),
                    &SolverOptions::default(),
                )
                .expect("overlay ilp"),
            )
        })
    });
    group.bench_function("dp_4_phases", |b| {
        b.iter(|| {
            black_box(
                run_overlay_flow(
                    &w.program,
                    &w.profile,
                    &w.exec,
                    cache,
                    128,
                    4,
                    OverlayMethod::CandidateDp,
                    &TechParams::default(),
                    &SolverOptions::default(),
                )
                .expect("overlay dp"),
            )
        })
    });
    group.finish();
}

fn bench_joint_data(c: &mut Criterion) {
    let spec = mediabench::adpcm();
    let compiled = spec.compile();
    let walker = Walker::new(&compiled.program, &compiled.behaviors);
    let (exec, profile, data) = walker
        .run_with_data(&compiled, 2004)
        .expect("adpcm runs with data");
    let sizes: Vec<u32> = compiled.data_objects.iter().map(|d| d.size).collect();
    let cache = CacheConfig::direct_mapped(128, LINE_SIZE);
    let mut group = c.benchmark_group("joint_data/adpcm");
    group.sample_size(10);
    group.bench_function("joint_flow_256", |b| {
        b.iter(|| {
            black_box(
                run_joint_flow(
                    &compiled.program,
                    &profile,
                    &exec,
                    &data,
                    &sizes,
                    cache,
                    256,
                    true,
                    &TechParams::default(),
                )
                .expect("joint flow"),
            )
        })
    });
    group.finish();
}

fn bench_placement_and_wcet(c: &mut Criterion) {
    let w = prepared(mediabench::g721(), 1, 2004);
    let cache = CacheConfig::direct_mapped(1024, LINE_SIZE);
    let mut group = c.benchmark_group("analysis/g721");
    group.sample_size(10);
    group.bench_function("placement_flow", |b| {
        b.iter(|| {
            black_box(
                run_placement_flow(
                    &w.program,
                    &w.profile,
                    &w.exec,
                    cache,
                    &TechParams::default(),
                )
                .expect("placement"),
            )
        })
    });
    // WCET over the initial layout.
    let r = run_placement_flow(
        &w.program,
        &w.profile,
        &w.exec,
        cache,
        &TechParams::default(),
    )
    .expect("placement");
    let spec = mediabench::g721().compile();
    let bounds: HashMap<_, _> = spec
        .behaviors
        .iter()
        .filter_map(|(&blk, &beh)| match beh {
            BranchBehavior::Loop { trips, .. } => Some((blk, trips + 1)),
            BranchBehavior::Prob { .. } => None,
        })
        .collect();
    group.bench_function("wcet_bound", |b| {
        b.iter(|| {
            black_box(
                wcet_bound(
                    &w.program,
                    &r.traces,
                    &r.layout,
                    &bounds,
                    &WcetCosts::default(),
                )
                .expect("bound"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_overlay,
    bench_joint_data,
    bench_placement_and_wcet
);
criterion_main!(benches);
