//! Solver ablation (DESIGN.md §6): the specialized exact branch &
//! bound vs. the generic ILP under both linearizations vs. the greedy
//! heuristic, on the real conflict graph of each benchmark. Also
//! substantiates the paper's §4 claim that allocation time stays well
//! under a second up to the 19.5 kB program.

use casa_bench::experiments::{paper_sizes, LINE_SIZE};
use casa_bench::runner::prepared;
use casa_core::casa_bb::allocate_bb;
use casa_core::casa_ilp::{allocate_ilp, Linearization};
use casa_core::conflict::ConflictGraph;
use casa_core::energy_model::EnergyModel;
use casa_core::flow::{run_spm_flow, AllocatorKind, FlowConfig, FlowCtx};
use casa_core::greedy::allocate_greedy;
use casa_energy::{EnergyTable, TechParams};
use casa_ilp::SolverOptions;
use casa_mem::cache::CacheConfig;
use casa_workloads::mediabench;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn graph_of(spec: casa_workloads::BenchmarkSpec) -> (String, ConflictGraph, EnergyTable, u32) {
    let name = spec.name.clone();
    let (cache_size, sizes) = paper_sizes(&name);
    let spm = *sizes.last().expect("sizes");
    let w = prepared(spec, 1, 2004);
    let cfg = FlowConfig {
        cache: CacheConfig::direct_mapped(cache_size, LINE_SIZE),
        spm_size: spm,
        allocator: AllocatorKind::None,
        tech: TechParams::default(),
        trace_cap: None,
    };
    let r = run_spm_flow(&w.program, &w.profile, &w.exec, &cfg, &FlowCtx::default())
        .expect("profiling flow");
    let table = EnergyTable::build(cache_size, LINE_SIZE, 1, spm, None, &TechParams::default());
    (name, r.conflict_graph, table, spm)
}

fn bench_solvers(c: &mut Criterion) {
    for spec in mediabench::all() {
        let (name, graph, table, spm) = graph_of(spec);
        let model = EnergyModel::new(&graph, &table);
        println!(
            "{name}: {} objects, {} conflict edges, capacity {spm} B",
            graph.len(),
            graph.edge_count()
        );
        let mut group = c.benchmark_group(format!("solver/{name}"));
        group.sample_size(10);
        group.bench_function("casa_bb_exact", |b| {
            b.iter(|| black_box(allocate_bb(&model, spm)))
        });
        group.bench_function("greedy", |b| {
            b.iter(|| black_box(allocate_greedy(&model, spm)))
        });
        // The generic ILP is only competitive on small graphs; the
        // gap against the specialized search *is* the ablation.
        if graph.len() <= 40 {
            group.bench_function("ilp_paper_linearization", |b| {
                b.iter(|| {
                    black_box(
                        allocate_ilp(&model, spm, Linearization::Paper, &SolverOptions::default())
                            .expect("solves"),
                    )
                })
            });
            group.bench_function("ilp_tight_linearization", |b| {
                b.iter(|| {
                    black_box(
                        allocate_ilp(&model, spm, Linearization::Tight, &SolverOptions::default())
                            .expect("solves"),
                    )
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
