//! Figure 5 regeneration bench: scratchpad + CASA vs. preloaded loop
//! cache + Ross on MPEG. Prints the figure's series once (% of the
//! loop-cache system = 100%), then measures one sweep point.

use casa_bench::experiments::fig5;
use casa_bench::runner::prepared;
use casa_workloads::mediabench;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let w = prepared(mediabench::mpeg(), 1, 2004);

    let rows = fig5(&w, 2048, &[128, 256, 512, 1024]);
    println!("\nFigure 5 (SPM system as % of loop-cache system = 100%):");
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10}",
        "size [B]", "SP/LC acc%", "I$ acc%", "I$ miss%", "energy%"
    );
    for r in &rows {
        println!(
            "{:>8} {:>12.1} {:>10.1} {:>10.1} {:>10.1}",
            r.size, r.local_accesses_pct, r.cache_accesses_pct, r.cache_misses_pct, r.energy_pct
        );
    }

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("mpeg_one_sweep_point_512", |b| {
        b.iter(|| black_box(fig5(&w, 2048, &[512])))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
