//! Substrate throughput: raw cache accesses, full fetch-engine
//! replay (the memsim substitute), and trace formation.

use casa_bench::runner::prepared;
use casa_ir::Profile;
use casa_mem::cache::{Cache, CacheConfig, ReplacementPolicy};
use casa_mem::{simulate, HierarchyConfig};
use casa_trace::trace::{form_traces, TraceConfig};
use casa_trace::Layout;
use casa_workloads::mediabench;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache/access");
    let addrs: Vec<u32> = (0..4096u32).map(|i| (i * 52) % 16384).collect();
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for (label, cfg) in [
        ("dm_2k", CacheConfig::direct_mapped(2048, 16)),
        (
            "4way_2k_lru",
            CacheConfig {
                size: 2048,
                line_size: 16,
                associativity: 4,
                policy: ReplacementPolicy::Lru,
            },
        ),
        (
            "4way_2k_rr",
            CacheConfig {
                size: 2048,
                line_size: 16,
                associativity: 4,
                policy: ReplacementPolicy::RoundRobin,
            },
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cache = Cache::new(cfg);
                for &a in &addrs {
                    black_box(cache.access(a));
                }
                cache.misses()
            })
        });
    }
    group.finish();
}

fn bench_fetch_engine(c: &mut Criterion) {
    let w = prepared(mediabench::g721(), 1, 2004);
    let traces = form_traces(
        &w.program,
        &w.profile,
        TraceConfig::new(1024, 16),
        &casa_obs::Obs::disabled(),
    );
    let layout = Layout::initial(&w.program, &traces);
    let cfg = HierarchyConfig::spm_system(CacheConfig::direct_mapped(1024, 16), 1024);
    let mut group = c.benchmark_group("fetch_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(w.profile.total_fetches(&w.program)));
    group.bench_function("g721_full_replay", |b| {
        b.iter(|| {
            black_box(simulate(&w.program, &traces, &layout, &w.exec, &cfg).expect("simulates"))
        })
    });
    group.finish();
}

fn bench_trace_formation(c: &mut Criterion) {
    let w = prepared(mediabench::mpeg(), 1, 2004);
    let mut group = c.benchmark_group("trace_formation");
    group.bench_function("mpeg_19k", |b| {
        b.iter(|| {
            black_box(form_traces(
                &w.program,
                &w.profile,
                TraceConfig::new(1024, 16),
                &casa_obs::Obs::disabled(),
            ))
        })
    });
    // Cold profile: formation must behave with all-zero counts too.
    let empty = Profile::new();
    group.bench_function("mpeg_19k_cold_profile", |b| {
        b.iter(|| {
            black_box(form_traces(
                &w.program,
                &empty,
                TraceConfig::new(1024, 16),
                &casa_obs::Obs::disabled(),
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_access,
    bench_fetch_engine,
    bench_trace_formation
);
criterion_main!(benches);
