//! Figure 4 regeneration bench: CASA vs. Steinke on MPEG with a 2 kB
//! direct-mapped I-cache. Prints the figure's series once (as the
//! paper reports them — % of Steinke = 100%), then measures the cost
//! of regenerating one sweep point.

use casa_bench::experiments::fig4;
use casa_bench::runner::prepared;
use casa_workloads::mediabench;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let w = prepared(mediabench::mpeg(), 1, 2004);

    // Regenerate and print the full figure once.
    let rows = fig4(&w, 2048, &[128, 256, 512, 1024]);
    println!("\nFigure 4 (CASA as % of Steinke = 100%):");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "SPM [B]", "SP acc%", "I$ acc%", "I$ miss%", "energy%"
    );
    for r in &rows {
        println!(
            "{:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            r.spm_size, r.spm_accesses_pct, r.cache_accesses_pct, r.cache_misses_pct, r.energy_pct
        );
    }

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("mpeg_one_sweep_point_512", |b| {
        b.iter(|| black_box(fig4(&w, 2048, &[512])))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
