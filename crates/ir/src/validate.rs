//! Structural validation of [`Program`]s.

use crate::ids::{BlockId, FunctionId};
use crate::program::{Program, Terminator};
use std::error::Error;
use std::fmt;

/// A structural defect found in a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The program has no entry function.
    NoEntry,
    /// A block was never given a terminator.
    MissingTerminator {
        /// The offending block.
        block: BlockId,
    },
    /// A block contains no instructions.
    EmptyBlock {
        /// The offending block.
        block: BlockId,
    },
    /// A terminator references a block in a different function
    /// without going through a call.
    CrossFunctionEdge {
        /// Source block.
        from: BlockId,
        /// Target block (in another function).
        to: BlockId,
    },
    /// A terminator or call references an id that does not exist.
    DanglingReference {
        /// Source block.
        from: BlockId,
        /// Description of the bad reference.
        what: String,
    },
    /// A function owns no blocks.
    EmptyFunction {
        /// The offending function.
        function: FunctionId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::NoEntry => write!(f, "program has no entry function"),
            ValidateError::MissingTerminator { block } => {
                write!(f, "block {block} has no terminator")
            }
            ValidateError::EmptyBlock { block } => write!(f, "block {block} is empty"),
            ValidateError::CrossFunctionEdge { from, to } => {
                write!(f, "edge {from} -> {to} crosses a function boundary")
            }
            ValidateError::DanglingReference { from, what } => {
                write!(f, "block {from} references missing {what}")
            }
            ValidateError::EmptyFunction { function } => {
                write!(f, "function {function} owns no blocks")
            }
        }
    }
}

impl Error for ValidateError {}

/// Check all structural invariants of `program`.
///
/// # Errors
///
/// Returns the first defect found; see [`ValidateError`].
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    let n_blocks = program.blocks.len() as u32;
    let n_funcs = program.functions.len() as u32;
    let check_block = |from: BlockId, to: BlockId| -> Result<(), ValidateError> {
        if to.index() as u32 >= n_blocks {
            return Err(ValidateError::DanglingReference {
                from,
                what: format!("block {to}"),
            });
        }
        Ok(())
    };

    for func in &program.functions {
        if func.blocks().is_empty() {
            return Err(ValidateError::EmptyFunction {
                function: func.id(),
            });
        }
    }

    for block in &program.blocks {
        if block.is_empty() {
            return Err(ValidateError::EmptyBlock { block: block.id() });
        }
        let from = block.id();
        match block.terminator() {
            Terminator::FallThrough { next } => {
                check_block(from, next)?;
                same_function(program, from, next)?;
            }
            Terminator::Jump { target } => {
                check_block(from, target)?;
                same_function(program, from, target)?;
            }
            Terminator::Branch { taken, fallthrough } => {
                check_block(from, taken)?;
                check_block(from, fallthrough)?;
                same_function(program, from, taken)?;
                same_function(program, from, fallthrough)?;
            }
            Terminator::Call { callee, return_to } => {
                if callee.index() as u32 >= n_funcs {
                    return Err(ValidateError::DanglingReference {
                        from,
                        what: format!("function {callee}"),
                    });
                }
                check_block(from, return_to)?;
                same_function(program, from, return_to)?;
            }
            Terminator::Return | Terminator::Exit => {}
        }
    }
    Ok(())
}

fn same_function(program: &Program, from: BlockId, to: BlockId) -> Result<(), ValidateError> {
    if program.block(from).function() != program.block(to).function() {
        return Err(ValidateError::CrossFunctionEdge { from, to });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{InstKind, IsaMode};

    #[test]
    fn cross_function_jump_rejected() {
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("f");
        let g = b.function("g");
        let fb = b.block(f);
        let gb = b.block(g);
        b.push(fb, InstKind::Alu);
        b.jump(fb, gb); // illegal: jump into another function
        b.push(gb, InstKind::Alu);
        b.ret(gb);
        match b.finish() {
            Err(ValidateError::CrossFunctionEdge { .. }) => {}
            other => panic!("expected CrossFunctionEdge, got {other:?}"),
        }
    }

    #[test]
    fn empty_function_rejected() {
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("f");
        let _g = b.function("empty");
        let fb = b.block(f);
        b.push(fb, InstKind::Alu);
        b.exit(fb);
        match b.finish() {
            Err(ValidateError::EmptyFunction { .. }) => {}
            other => panic!("expected EmptyFunction, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ValidateError::MissingTerminator {
            block: BlockId::from_raw(3),
        };
        assert!(e.to_string().contains("bb3"));
        let e = ValidateError::NoEntry;
        assert!(e.to_string().contains("entry"));
    }

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("f");
        let x = b.block(f);
        b.push(x, InstKind::Alu);
        b.exit(x);
        assert!(b.finish().is_ok());
    }
}
