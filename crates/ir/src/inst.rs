//! Instructions and ISA modes.
//!
//! The allocation problem only depends on instruction *sizes* (they
//! determine memory-object sizes and cache-line mappings) and on
//! whether an instruction ends a basic block. We therefore model a
//! small abstract instruction set rather than real ARM encodings.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Instruction-set mode, fixing the byte size of every instruction.
///
/// The paper's ARM7T supports both 32-bit ARM and 16-bit Thumb
/// encodings; instruction size changes how many instructions share a
/// cache line, which matters for conflict behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IsaMode {
    /// 32-bit encodings (4 bytes per instruction).
    Arm,
    /// 16-bit encodings (2 bytes per instruction).
    Thumb,
}

impl IsaMode {
    /// The size of one instruction in bytes.
    pub fn inst_bytes(self) -> u32 {
        match self {
            IsaMode::Arm => 4,
            IsaMode::Thumb => 2,
        }
    }
}

impl fmt::Display for IsaMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaMode::Arm => write!(f, "arm"),
            IsaMode::Thumb => write!(f, "thumb"),
        }
    }
}

/// The abstract operation an instruction performs.
///
/// Only the distinction between ordinary instructions, control
/// transfers and NOPs is observable by the simulator; the finer kinds
/// exist so synthetic workloads can mimic realistic instruction mixes
/// (and so cycle estimation in the memory simulator can charge
/// different base cycles per kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstKind {
    /// Arithmetic/logic operation.
    Alu,
    /// Multiply (slower on ARM7).
    Mul,
    /// Data-memory load.
    Load,
    /// Data-memory store.
    Store,
    /// Conditional branch (ends a block).
    BranchCond,
    /// Unconditional jump (ends a block).
    Jump,
    /// Function call (ends a block).
    Call,
    /// Function return (ends a block).
    Return,
    /// No-operation; used for cache-line alignment padding.
    Nop,
}

impl InstKind {
    /// Whether this kind terminates a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            InstKind::BranchCond | InstKind::Jump | InstKind::Call | InstKind::Return
        )
    }

    /// Base CPU cycles for this kind on an ARM7-like core (fetch
    /// overheads excluded; the memory simulator adds those).
    pub fn base_cycles(self) -> u32 {
        match self {
            InstKind::Alu | InstKind::Nop => 1,
            InstKind::Mul => 4,
            InstKind::Load => 3,
            InstKind::Store => 2,
            InstKind::BranchCond => 1,
            InstKind::Jump | InstKind::Call | InstKind::Return => 3,
        }
    }
}

impl fmt::Display for InstKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstKind::Alu => "alu",
            InstKind::Mul => "mul",
            InstKind::Load => "load",
            InstKind::Store => "store",
            InstKind::BranchCond => "bcc",
            InstKind::Jump => "b",
            InstKind::Call => "bl",
            InstKind::Return => "ret",
            InstKind::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// One instruction: a kind plus its encoded size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    kind: InstKind,
    size: u32,
}

impl Instruction {
    /// Create an instruction of `kind` sized for `mode`.
    pub fn new(kind: InstKind, mode: IsaMode) -> Self {
        Instruction {
            kind,
            size: mode.inst_bytes(),
        }
    }

    /// Create an instruction with an explicit byte size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn with_size(kind: InstKind, size: u32) -> Self {
        assert!(size > 0, "instruction size must be non-zero");
        Instruction { kind, size }
    }

    /// The operation kind.
    pub fn kind(&self) -> InstKind {
        self.kind
    }

    /// Encoded size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}B]", self.kind, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_mode_sizes() {
        assert_eq!(IsaMode::Arm.inst_bytes(), 4);
        assert_eq!(IsaMode::Thumb.inst_bytes(), 2);
    }

    #[test]
    fn terminator_kinds() {
        assert!(InstKind::Jump.is_terminator());
        assert!(InstKind::BranchCond.is_terminator());
        assert!(InstKind::Call.is_terminator());
        assert!(InstKind::Return.is_terminator());
        assert!(!InstKind::Alu.is_terminator());
        assert!(!InstKind::Nop.is_terminator());
        assert!(!InstKind::Load.is_terminator());
    }

    #[test]
    fn instruction_takes_mode_size() {
        let i = Instruction::new(InstKind::Alu, IsaMode::Thumb);
        assert_eq!(i.size(), 2);
        assert_eq!(i.kind(), InstKind::Alu);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_rejected() {
        let _ = Instruction::with_size(InstKind::Alu, 0);
    }

    #[test]
    fn base_cycles_sane() {
        assert!(InstKind::Mul.base_cycles() > InstKind::Alu.base_cycles());
        assert!(InstKind::Load.base_cycles() > InstKind::Store.base_cycles());
    }

    #[test]
    fn display_formats() {
        let i = Instruction::new(InstKind::Jump, IsaMode::Arm);
        assert_eq!(i.to_string(), "b[4B]");
        assert_eq!(IsaMode::Thumb.to_string(), "thumb");
    }
}
