//! Natural-loop detection.
//!
//! The preloaded-loop-cache baseline (Ross / Gordon-Ross & Vahid,
//! IEEE CAL 2002) preloads *loops and functions*; this module finds
//! the loops. A natural loop is identified by a back edge `n -> h`
//! where `h` dominates `n`; its body is every block that can reach `n`
//! without passing through `h`, plus `h` itself.

use crate::cfg::{self, Predecessors};
use crate::ids::{BlockId, FunctionId};
use crate::program::Program;
use serde::{Deserialize, Serialize};

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the body).
    pub header: BlockId,
    /// The source of the back edge that defines this loop.
    pub back_edge_source: BlockId,
    /// All blocks in the loop body, header first, rest in id order.
    pub body: Vec<BlockId>,
    /// The function containing the loop.
    pub function: FunctionId,
}

impl NaturalLoop {
    /// Total size of the loop body in bytes.
    pub fn size(&self, program: &Program) -> u32 {
        self.body.iter().map(|&b| program.block(b).size()).sum()
    }

    /// Whether `block` belongs to this loop.
    pub fn contains(&self, block: BlockId) -> bool {
        self.body.contains(&block)
    }

    /// Number of blocks in the body.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is empty (never true for a real loop).
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }
}

/// Find all natural loops of `function`.
///
/// Loops sharing a header (multiple back edges to the same block) are
/// merged into one loop whose body is the union, matching the usual
/// compiler treatment.
pub fn natural_loops(program: &Program, function: FunctionId) -> Vec<NaturalLoop> {
    let idom = cfg::immediate_dominators(program, function);
    let preds = Predecessors::compute(program);
    let mut by_header: Vec<(BlockId, BlockId, Vec<BlockId>)> = Vec::new();

    for &n in program.function(function).blocks() {
        for h in program.block(n).terminator().successors() {
            if program.block(h).function() != function {
                continue;
            }
            if cfg::dominates(&idom, h, n) {
                // Back edge n -> h. Collect body by reverse walk from n.
                let mut body = vec![h];
                let mut stack = vec![n];
                while let Some(b) = stack.pop() {
                    if body.contains(&b) {
                        continue;
                    }
                    body.push(b);
                    for &p in preds.of(b) {
                        if program.block(p).function() == function {
                            stack.push(p);
                        }
                    }
                }
                if let Some(entry) = by_header.iter_mut().find(|(hh, _, _)| *hh == h) {
                    for b in body {
                        if !entry.2.contains(&b) {
                            entry.2.push(b);
                        }
                    }
                } else {
                    by_header.push((h, n, body));
                }
            }
        }
    }

    by_header
        .into_iter()
        .map(|(header, back_edge_source, mut body)| {
            let rest: Vec<BlockId> = {
                body.retain(|&b| b != header);
                body.sort();
                body
            };
            let mut full = vec![header];
            full.extend(rest);
            NaturalLoop {
                header,
                back_edge_source,
                body: full,
                function,
            }
        })
        .collect()
}

/// Find all natural loops of every function in the program.
pub fn all_natural_loops(program: &Program) -> Vec<NaturalLoop> {
    program
        .functions()
        .iter()
        .flat_map(|f| natural_loops(program, f.id()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{InstKind, IsaMode};

    /// pre -> head -> body -> head (loop), head -> exit.
    fn simple_loop() -> (Program, [BlockId; 4]) {
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let f = bld.function("f");
        let pre = bld.block(f);
        let head = bld.block(f);
        let body = bld.block(f);
        let ex = bld.block(f);
        bld.push(pre, InstKind::Alu);
        bld.fall_through(pre, head);
        bld.push(head, InstKind::Alu);
        bld.branch(head, ex, body); // exit when taken, else loop body
        bld.push_n(body, InstKind::Alu, 3);
        bld.jump(body, head);
        bld.push(ex, InstKind::Alu);
        bld.exit(ex);
        (bld.finish().unwrap(), [pre, head, body, ex])
    }

    #[test]
    fn finds_single_loop() {
        let (p, [_, head, body, _]) = simple_loop();
        let loops = natural_loops(&p, p.entry());
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, head);
        assert_eq!(l.back_edge_source, body);
        assert!(l.contains(head));
        assert!(l.contains(body));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn loop_size_sums_blocks() {
        let (p, _) = simple_loop();
        let loops = natural_loops(&p, p.entry());
        let l = &loops[0];
        // head: alu + branch = 2 insts; body: 3 alu + jump = 4 insts.
        assert_eq!(l.size(&p), (2 + 4) * 4);
    }

    #[test]
    fn nested_loops_found_separately() {
        // outer_head -> inner_head -> inner_body -> inner_head
        //            inner_head -> latch -> outer_head, latch -> exit
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let f = bld.function("f");
        let oh = bld.block(f);
        let ih = bld.block(f);
        let ib = bld.block(f);
        let latch = bld.block(f);
        let ex = bld.block(f);
        bld.push(oh, InstKind::Alu);
        bld.fall_through(oh, ih);
        bld.push(ih, InstKind::Alu);
        bld.branch(ih, latch, ib);
        bld.push(ib, InstKind::Alu);
        bld.jump(ib, ih);
        bld.push(latch, InstKind::Alu);
        bld.branch(latch, oh, ex);
        bld.push(ex, InstKind::Alu);
        bld.exit(ex);
        let p = bld.finish().unwrap();
        let mut loops = natural_loops(&p, f);
        loops.sort_by_key(|l| l.body.len());
        assert_eq!(loops.len(), 2);
        // Inner loop: {ih, ib}.
        assert_eq!(loops[0].header, ih);
        assert_eq!(loops[0].len(), 2);
        // Outer loop: {oh, ih, ib, latch}.
        assert_eq!(loops[1].header, oh);
        assert_eq!(loops[1].len(), 4);
        assert!(loops[1].contains(ib));
    }

    #[test]
    fn no_loops_in_dag() {
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let f = bld.function("f");
        let a = bld.block(f);
        let b = bld.block(f);
        bld.push(a, InstKind::Alu);
        bld.fall_through(a, b);
        bld.push(b, InstKind::Alu);
        bld.exit(b);
        let p = bld.finish().unwrap();
        assert!(natural_loops(&p, f).is_empty());
    }

    #[test]
    fn all_natural_loops_spans_functions() {
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let f = bld.function("f");
        let g = bld.function("g");
        // f: self-loop block.
        let fb = bld.block(f);
        bld.push(fb, InstKind::Alu);
        bld.branch(fb, fb, fb);
        // g: straight line.
        let gb = bld.block(g);
        bld.push(gb, InstKind::Alu);
        bld.ret(gb);
        let p = bld.finish().unwrap();
        let loops = all_natural_loops(&p);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].function, f);
        assert_eq!(loops[0].header, fb);
    }
}
