//! Functions: named groups of basic blocks with a designated entry.

use crate::ids::{BlockId, FunctionId};
use serde::{Deserialize, Serialize};

/// A function: an entry block plus the list of blocks it owns.
///
/// Functions matter to two consumers: the preloaded-loop-cache
/// baseline (Ross), which may preload whole functions, and trace
/// formation, which never grows traces across function boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    id: FunctionId,
    name: String,
    blocks: Vec<BlockId>,
    entry: Option<BlockId>,
}

impl Function {
    pub(crate) fn new(id: FunctionId, name: String) -> Self {
        Function {
            id,
            name,
            blocks: Vec::new(),
            entry: None,
        }
    }

    pub(crate) fn add_block(&mut self, block: BlockId) {
        if self.entry.is_none() {
            self.entry = Some(block);
        }
        self.blocks.push(block);
    }

    /// This function's id.
    pub fn id(&self) -> FunctionId {
        self.id
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks owned by this function, in insertion order. The first
    /// block is the entry.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks (a validated
    /// [`crate::Program`] never contains such a function).
    pub fn entry(&self) -> BlockId {
        self.entry.expect("function has no blocks")
    }

    /// The entry block, or `None` for an empty function.
    pub fn entry_opt(&self) -> Option<BlockId> {
        self.entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_block_becomes_entry() {
        let mut f = Function::new(FunctionId::from_raw(0), "f".into());
        assert!(f.entry_opt().is_none());
        f.add_block(BlockId::from_raw(5));
        f.add_block(BlockId::from_raw(6));
        assert_eq!(f.entry(), BlockId::from_raw(5));
        assert_eq!(f.blocks().len(), 2);
    }

    #[test]
    #[should_panic(expected = "no blocks")]
    fn entry_panics_when_empty() {
        let f = Function::new(FunctionId::from_raw(0), "f".into());
        let _ = f.entry();
    }
}
