//! Fluent construction of [`Program`]s.
//!
//! The builder appends the encoded control-transfer instruction when a
//! terminator needs one (jumps, branches, calls, returns), so block
//! byte sizes always match what a real code generator would emit.
//! Fall-through and exit terminators add no instruction.

use crate::function::Function;
use crate::ids::{BlockId, FunctionId};
use crate::inst::{InstKind, Instruction, IsaMode};
use crate::program::{BasicBlock, Program, Terminator};
use crate::validate::{self, ValidateError};

/// Incrementally builds a [`Program`].
///
/// # Example
///
/// ```
/// use casa_ir::builder::ProgramBuilder;
/// use casa_ir::inst::{InstKind, IsaMode};
///
/// let mut b = ProgramBuilder::new(IsaMode::Thumb);
/// let main = b.function("main");
/// let head = b.block(main);
/// let body = b.block(main);
/// let tail = b.block(main);
/// b.push_n(head, InstKind::Alu, 2);
/// b.fall_through(head, body);
/// b.push_n(body, InstKind::Load, 1);
/// b.branch(body, body, tail); // loop back or fall through
/// b.push(tail, InstKind::Alu);
/// b.exit(tail);
/// let program = b.finish()?;
/// assert_eq!(program.functions().len(), 1);
/// # Ok::<(), casa_ir::validate::ValidateError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    mode: IsaMode,
    functions: Vec<Function>,
    blocks: Vec<PendingBlock>,
    entry: Option<FunctionId>,
}

#[derive(Debug, Clone)]
struct PendingBlock {
    id: BlockId,
    function: FunctionId,
    insts: Vec<Instruction>,
    terminator: Option<Terminator>,
}

impl ProgramBuilder {
    /// Start a new program in the given ISA mode, named `"program"`.
    pub fn new(mode: IsaMode) -> Self {
        ProgramBuilder {
            name: "program".to_owned(),
            mode,
            functions: Vec::new(),
            blocks: Vec::new(),
            entry: None,
        }
    }

    /// Set the program name used in reports.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// The ISA mode instructions are sized for.
    pub fn mode(&self) -> IsaMode {
        self.mode
    }

    /// Create a new function. The first function created is the
    /// program entry unless [`Self::set_entry`] overrides it.
    pub fn function(&mut self, name: impl Into<String>) -> FunctionId {
        let id = FunctionId::from_raw(self.functions.len() as u32);
        self.functions.push(Function::new(id, name.into()));
        if self.entry.is_none() {
            self.entry = Some(id);
        }
        id
    }

    /// Override the program entry function.
    pub fn set_entry(&mut self, f: FunctionId) -> &mut Self {
        self.entry = Some(f);
        self
    }

    /// Create a new, empty block inside `f`. The first block created
    /// in a function is its entry.
    pub fn block(&mut self, f: FunctionId) -> BlockId {
        let id = BlockId::from_raw(self.blocks.len() as u32);
        self.blocks.push(PendingBlock {
            id,
            function: f,
            insts: Vec::new(),
            terminator: None,
        });
        self.functions[f.index()].add_block(id);
        id
    }

    /// Append one instruction of `kind` to `block`.
    pub fn push(&mut self, block: BlockId, kind: InstKind) -> &mut Self {
        let inst = Instruction::new(kind, self.mode);
        self.pending_mut(block).insts.push(inst);
        self
    }

    /// Append `n` instructions of `kind` to `block`.
    pub fn push_n(&mut self, block: BlockId, kind: InstKind, n: usize) -> &mut Self {
        for _ in 0..n {
            self.push(block, kind);
        }
        self
    }

    /// Terminate `block` by falling through to `next` (no encoded
    /// instruction).
    pub fn fall_through(&mut self, block: BlockId, next: BlockId) -> &mut Self {
        self.terminate(block, Terminator::FallThrough { next }, None)
    }

    /// Terminate `block` with an unconditional jump to `target`.
    pub fn jump(&mut self, block: BlockId, target: BlockId) -> &mut Self {
        self.terminate(block, Terminator::Jump { target }, Some(InstKind::Jump))
    }

    /// Terminate `block` with a conditional branch: `taken` when the
    /// condition holds, otherwise fall through to `fallthrough`.
    pub fn branch(&mut self, block: BlockId, taken: BlockId, fallthrough: BlockId) -> &mut Self {
        self.terminate(
            block,
            Terminator::Branch { taken, fallthrough },
            Some(InstKind::BranchCond),
        )
    }

    /// Terminate `block` with a call to `callee`; control resumes at
    /// `return_to`.
    pub fn call(&mut self, block: BlockId, callee: FunctionId, return_to: BlockId) -> &mut Self {
        self.terminate(
            block,
            Terminator::Call { callee, return_to },
            Some(InstKind::Call),
        )
    }

    /// Terminate `block` with a function return.
    pub fn ret(&mut self, block: BlockId) -> &mut Self {
        self.terminate(block, Terminator::Return, Some(InstKind::Return))
    }

    /// Terminate `block` with program exit (no encoded instruction).
    pub fn exit(&mut self, block: BlockId) -> &mut Self {
        self.terminate(block, Terminator::Exit, None)
    }

    fn terminate(
        &mut self,
        block: BlockId,
        terminator: Terminator,
        inst: Option<InstKind>,
    ) -> &mut Self {
        let mode = self.mode;
        let pending = self.pending_mut(block);
        if let Some(kind) = inst {
            pending.insts.push(Instruction::new(kind, mode));
        }
        pending.terminator = Some(terminator);
        self
    }

    fn pending_mut(&mut self, block: BlockId) -> &mut PendingBlock {
        let pending = &mut self.blocks[block.index()];
        assert!(
            pending.terminator.is_none(),
            "block {block} is already terminated"
        );
        pending
    }

    /// Finish construction, validating the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if any block lacks a terminator,
    /// any edge crosses a function boundary illegally, a referenced
    /// block/function does not exist, any block is empty, or the
    /// program has no entry function.
    pub fn finish(self) -> Result<Program, ValidateError> {
        let entry = self.entry.ok_or(ValidateError::NoEntry)?;
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for pb in self.blocks {
            let term = pb
                .terminator
                .ok_or(ValidateError::MissingTerminator { block: pb.id })?;
            blocks.push(BasicBlock::new(pb.id, pb.function, pb.insts, term));
        }
        let program = Program {
            name: self.name,
            mode: self.mode,
            functions: self.functions,
            blocks,
            entry,
        };
        validate::validate(&program)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_appends_instruction() {
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("f");
        let x = b.block(f);
        let y = b.block(f);
        b.push(x, InstKind::Alu);
        b.jump(x, y);
        b.exit(y);
        // y would be empty -> push something first
        let err = b.finish();
        assert!(err.is_err(), "empty block y should be rejected");
    }

    #[test]
    fn full_build_round_trip() {
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("f");
        let g = b.function("g");
        let f0 = b.block(f);
        let f1 = b.block(f);
        let g0 = b.block(g);
        b.push(f0, InstKind::Alu);
        b.call(f0, g, f1);
        b.push(f1, InstKind::Alu);
        b.exit(f1);
        b.push(g0, InstKind::Mul);
        b.ret(g0);
        let p = b.finish().expect("valid");
        assert_eq!(p.blocks().len(), 3);
        // f0: alu + call = 2 insts; g0: mul + ret = 2.
        assert_eq!(p.block(f0).len(), 2);
        assert_eq!(p.block(g0).len(), 2);
        assert_eq!(p.entry(), f);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("f");
        let x = b.block(f);
        b.push(x, InstKind::Alu);
        b.exit(x);
        b.exit(x);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn push_after_terminate_panics() {
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("f");
        let x = b.block(f);
        b.push(x, InstKind::Alu);
        b.exit(x);
        b.push(x, InstKind::Alu);
    }

    #[test]
    fn entry_defaults_to_first_function() {
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("first");
        let g = b.function("second");
        let fb = b.block(f);
        b.push(fb, InstKind::Alu);
        b.exit(fb);
        let gb = b.block(g);
        b.push(gb, InstKind::Alu);
        b.ret(gb);
        let p = b.finish().expect("valid");
        assert_eq!(p.entry(), f);
    }

    #[test]
    fn set_entry_overrides() {
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("first");
        let g = b.function("second");
        b.set_entry(g);
        let fb = b.block(f);
        b.push(fb, InstKind::Alu);
        b.ret(fb);
        let gb = b.block(g);
        b.push(gb, InstKind::Alu);
        b.exit(gb);
        let p = b.finish().expect("valid");
        assert_eq!(p.entry(), g);
    }
}
