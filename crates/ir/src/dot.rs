//! Graphviz (DOT) export of program CFGs.

use crate::profile::Profile;
use crate::program::{Program, Terminator};
use std::fmt::Write as _;

/// Render the whole-program CFG as Graphviz DOT.
///
/// Each function becomes a cluster; edges are annotated with their
/// kind (fall-through edges dashed). When a profile is supplied,
/// blocks show execution counts and edges show traversal counts.
pub fn program_to_dot(program: &Program, profile: Option<&Profile>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", program.name());
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for func in program.functions() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", func.id().index());
        let _ = writeln!(out, "    label=\"{}\";", func.name());
        for &b in func.blocks() {
            let block = program.block(b);
            let count = profile.map(|p| p.block_count(b));
            let label = match count {
                Some(c) => format!("{b}\\n{} insts, {}B\\nexec {c}", block.len(), block.size()),
                None => format!("{b}\\n{} insts, {}B", block.len(), block.size()),
            };
            let _ = writeln!(out, "    {} [label=\"{label}\"];", b.index());
        }
        let _ = writeln!(out, "  }}");
    }
    for block in program.blocks() {
        let from = block.id();
        let edge_attr = |to, style: &str| -> String {
            let count = profile.map(|p| p.edge_count(from, to));
            match count {
                Some(c) => format!("[{style}label=\"{c}\"]"),
                None if style.is_empty() => String::new(),
                None => format!("[{}]", style.trim_end_matches(", ")),
            }
        };
        match block.terminator() {
            Terminator::FallThrough { next } => {
                let _ = writeln!(
                    out,
                    "  {} -> {} {};",
                    from.index(),
                    next.index(),
                    edge_attr(next, "style=dashed, ")
                );
            }
            Terminator::Jump { target } => {
                let _ = writeln!(
                    out,
                    "  {} -> {} {};",
                    from.index(),
                    target.index(),
                    edge_attr(target, "")
                );
            }
            Terminator::Branch { taken, fallthrough } => {
                let _ = writeln!(
                    out,
                    "  {} -> {} {};",
                    from.index(),
                    taken.index(),
                    edge_attr(taken, "color=blue, ")
                );
                let _ = writeln!(
                    out,
                    "  {} -> {} {};",
                    from.index(),
                    fallthrough.index(),
                    edge_attr(fallthrough, "style=dashed, ")
                );
            }
            Terminator::Call { callee, return_to } => {
                let callee_entry = program.function(callee).entry();
                let _ = writeln!(
                    out,
                    "  {} -> {} [color=gray, label=\"call\"];",
                    from.index(),
                    callee_entry.index()
                );
                let _ = writeln!(
                    out,
                    "  {} -> {} {};",
                    from.index(),
                    return_to.index(),
                    edge_attr(return_to, "style=dotted, ")
                );
            }
            Terminator::Return | Terminator::Exit => {}
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{InstKind, IsaMode};

    fn sample() -> Program {
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let f = bld.function("f");
        let g = bld.function("callee");
        let a = bld.block(f);
        let b = bld.block(f);
        let gb = bld.block(g);
        bld.push(a, InstKind::Alu);
        bld.call(a, g, b);
        bld.push(b, InstKind::Alu);
        bld.exit(b);
        bld.push(gb, InstKind::Alu);
        bld.ret(gb);
        bld.finish().unwrap()
    }

    #[test]
    fn dot_contains_clusters_and_edges() {
        let p = sample();
        let dot = program_to_dot(&p, None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("cluster_1"));
        assert!(dot.contains("label=\"callee\""));
        assert!(dot.contains("call"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_with_profile_shows_counts() {
        let p = sample();
        let mut prof = Profile::new();
        prof.add_block(p.function(p.entry()).entry(), 42);
        let dot = program_to_dot(&p, Some(&prof));
        assert!(dot.contains("exec 42"));
    }
}
