//! Call-graph analysis.
//!
//! The execution walker requires call graphs to be acyclic (no
//! recursion — typical for the embedded codes the paper targets, and
//! required for the preloaded-loop-cache reasoning about whole
//! functions); this module computes the graph, detects recursion, and
//! provides topological orders and transitive code sizes (a function
//! plus everything it can call — the footprint a preloaded function
//! actually needs if its callees are to stay resident too).

use crate::ids::FunctionId;
use crate::program::{Program, Terminator};

/// The program's call graph.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[f]` — functions `f` calls directly (deduplicated,
    /// sorted).
    callees: Vec<Vec<FunctionId>>,
    /// `callers[f]` — functions calling `f` directly.
    callers: Vec<Vec<FunctionId>>,
}

impl CallGraph {
    /// Build the call graph of `program`.
    pub fn compute(program: &Program) -> Self {
        let n = program.functions().len();
        let mut callees: Vec<Vec<FunctionId>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<FunctionId>> = vec![Vec::new(); n];
        for block in program.blocks() {
            if let Terminator::Call { callee, .. } = block.terminator() {
                let caller = block.function();
                callees[caller.index()].push(callee);
                callers[callee.index()].push(caller);
            }
        }
        for v in callees.iter_mut().chain(callers.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        CallGraph { callees, callers }
    }

    /// Functions `f` calls directly.
    pub fn callees(&self, f: FunctionId) -> &[FunctionId] {
        &self.callees[f.index()]
    }

    /// Functions that call `f` directly.
    pub fn callers(&self, f: FunctionId) -> &[FunctionId] {
        &self.callers[f.index()]
    }

    /// Whether `f` calls no one.
    pub fn is_leaf(&self, f: FunctionId) -> bool {
        self.callees[f.index()].is_empty()
    }

    /// A topological order (callees after callers), or `None` if the
    /// call graph is cyclic (direct or mutual recursion).
    pub fn topological_order(&self) -> Option<Vec<FunctionId>> {
        let n = self.callees.len();
        let mut indegree = vec![0usize; n];
        for cs in &self.callees {
            for c in cs {
                indegree[c.index()] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            out.push(FunctionId::from_raw(i as u32));
            for c in &self.callees[i] {
                indegree[c.index()] -= 1;
                if indegree[c.index()] == 0 {
                    queue.push(c.index());
                }
            }
        }
        (out.len() == n).then_some(out)
    }

    /// Whether the program contains (possibly mutual) recursion.
    pub fn has_recursion(&self) -> bool {
        self.topological_order().is_none()
    }

    /// The transitive closure of functions reachable from `f` via
    /// calls, including `f`, in id order.
    pub fn reachable_from(&self, f: FunctionId) -> Vec<FunctionId> {
        let mut seen = vec![false; self.callees.len()];
        let mut stack = vec![f];
        seen[f.index()] = true;
        while let Some(g) = stack.pop() {
            for &c in self.callees(g) {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        (0..self.callees.len())
            .filter(|&i| seen[i])
            .map(|i| FunctionId::from_raw(i as u32))
            .collect()
    }

    /// Code size of `f` plus everything it can transitively call —
    /// the real footprint of preloading `f` "with its callees".
    pub fn transitive_size(&self, program: &Program, f: FunctionId) -> u32 {
        self.reachable_from(f)
            .iter()
            .flat_map(|&g| program.function(g).blocks())
            .map(|&b| program.block(b).size())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{InstKind, IsaMode};

    /// main -> a -> b, main -> b.
    fn diamond_calls() -> (Program, [FunctionId; 3]) {
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let main = bld.function("main");
        let a = bld.function("a");
        let b = bld.function("b");
        let m0 = bld.block(main);
        let m1 = bld.block(main);
        let m2 = bld.block(main);
        bld.push(m0, InstKind::Alu);
        bld.call(m0, a, m1);
        bld.push(m1, InstKind::Alu);
        bld.call(m1, b, m2);
        bld.push(m2, InstKind::Alu);
        bld.exit(m2);
        let a0 = bld.block(a);
        let a1 = bld.block(a);
        bld.push(a0, InstKind::Alu);
        bld.call(a0, b, a1);
        bld.push(a1, InstKind::Alu);
        bld.ret(a1);
        let b0 = bld.block(b);
        bld.push_n(b0, InstKind::Alu, 3);
        bld.ret(b0);
        (bld.finish().unwrap(), [main, a, b])
    }

    #[test]
    fn edges_and_leaves() {
        let (p, [main, a, b]) = diamond_calls();
        let cg = CallGraph::compute(&p);
        assert_eq!(cg.callees(main), &[a, b]);
        assert_eq!(cg.callees(a), &[b]);
        assert!(cg.is_leaf(b));
        assert_eq!(cg.callers(b), &[main, a]);
        assert!(cg.callers(main).is_empty());
    }

    #[test]
    fn topological_order_respects_calls() {
        let (p, [main, a, b]) = diamond_calls();
        let cg = CallGraph::compute(&p);
        let order = cg.topological_order().expect("acyclic");
        let pos = |f: FunctionId| order.iter().position(|&g| g == f).unwrap();
        assert!(pos(main) < pos(a));
        assert!(pos(a) < pos(b));
        assert!(!cg.has_recursion());
    }

    #[test]
    fn recursion_detected() {
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let f = bld.function("f");
        let f0 = bld.block(f);
        let f1 = bld.block(f);
        bld.push(f0, InstKind::Alu);
        bld.call(f0, f, f1); // direct recursion
        bld.push(f1, InstKind::Alu);
        bld.ret(f1);
        let p = bld.finish().unwrap();
        let cg = CallGraph::compute(&p);
        assert!(cg.has_recursion());
        assert!(cg.topological_order().is_none());
    }

    #[test]
    fn transitive_size_includes_callees() {
        let (p, [main, a, b]) = diamond_calls();
        let cg = CallGraph::compute(&p);
        let size = |f| {
            p.function(f)
                .blocks()
                .iter()
                .map(|&blk| p.block(blk).size())
                .sum::<u32>()
        };
        assert_eq!(cg.transitive_size(&p, b), size(b));
        assert_eq!(cg.transitive_size(&p, a), size(a) + size(b));
        assert_eq!(cg.transitive_size(&p, main), size(main) + size(a) + size(b));
        assert_eq!(cg.reachable_from(main).len(), 3);
    }
}
