//! Control-flow-graph utilities over a [`Program`].
//!
//! All analyses here are *intra-procedural*: call edges contribute the
//! return-to successor (the block that executes next inside the same
//! function) but not an edge into the callee.

use crate::ids::{BlockId, FunctionId};
use crate::program::Program;
use std::collections::VecDeque;

/// Predecessor lists for every block of a program.
#[derive(Debug, Clone)]
pub struct Predecessors {
    preds: Vec<Vec<BlockId>>,
}

impl Predecessors {
    /// Compute predecessors for all blocks.
    pub fn compute(program: &Program) -> Self {
        let mut preds = vec![Vec::new(); program.blocks().len()];
        for block in program.blocks() {
            for succ in block.terminator().successors() {
                preds[succ.index()].push(block.id());
            }
        }
        Predecessors { preds }
    }

    /// The predecessors of `block`.
    pub fn of(&self, block: BlockId) -> &[BlockId] {
        &self.preds[block.index()]
    }
}

/// Blocks of `function` in reverse post-order from its entry.
///
/// Unreachable blocks of the function are appended after the reachable
/// ones, in id order, so the result always covers every owned block.
pub fn reverse_post_order(program: &Program, function: FunctionId) -> Vec<BlockId> {
    let func = program.function(function);
    let entry = func.entry();
    let mut state = vec![Visit::Unseen; program.blocks().len()];
    let mut post = Vec::new();
    // Iterative DFS computing post-order.
    let mut stack = vec![(entry, 0usize)];
    state[entry.index()] = Visit::Open;
    while let Some(&mut (block, ref mut next)) = stack.last_mut() {
        let succs = program.block(block).terminator().successors();
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if state[s.index()] == Visit::Unseen && program.block(s).function() == function {
                state[s.index()] = Visit::Open;
                stack.push((s, 0));
            }
        } else {
            state[block.index()] = Visit::Done;
            post.push(block);
            stack.pop();
        }
    }
    post.reverse();
    for &b in func.blocks() {
        if state[b.index()] == Visit::Unseen {
            post.push(b);
        }
    }
    post
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Visit {
    Unseen,
    Open,
    Done,
}

/// Blocks reachable from the entry of `function` (intra-procedural).
pub fn reachable(program: &Program, function: FunctionId) -> Vec<BlockId> {
    let func = program.function(function);
    let entry = func.entry();
    let mut seen = vec![false; program.blocks().len()];
    let mut queue = VecDeque::from([entry]);
    seen[entry.index()] = true;
    let mut out = Vec::new();
    while let Some(b) = queue.pop_front() {
        out.push(b);
        for s in program.block(b).terminator().successors() {
            if !seen[s.index()] && program.block(s).function() == function {
                seen[s.index()] = true;
                queue.push_back(s);
            }
        }
    }
    out
}

/// Immediate dominators for one function, using the Cooper–Harvey–
/// Kennedy iterative algorithm over reverse post-order.
///
/// Returns a map indexed by [`BlockId::index`]; entries for blocks
/// outside `function` (or unreachable within it) are `None`. The entry
/// block dominates itself.
pub fn immediate_dominators(program: &Program, function: FunctionId) -> Vec<Option<BlockId>> {
    let rpo = reverse_post_order(program, function);
    let entry = program.function(function).entry();
    let mut rpo_index = vec![usize::MAX; program.blocks().len()];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b.index()] = i;
    }
    let preds = Predecessors::compute(program);
    let mut idom: Vec<Option<BlockId>> = vec![None; program.blocks().len()];
    idom[entry.index()] = Some(entry);

    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_index[a.index()] > rpo_index[b.index()] {
                a = idom[a.index()].expect("processed");
            }
            while rpo_index[b.index()] > rpo_index[a.index()] {
                b = idom[b.index()].expect("processed");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip_while(|&&b| b != entry).skip(1) {
            if rpo_index[b.index()] == usize::MAX {
                continue;
            }
            let mut new_idom: Option<BlockId> = None;
            for &p in preds.of(b) {
                if program.block(p).function() != function {
                    continue;
                }
                if idom[p.index()].is_some() {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
            }
            if let Some(ni) = new_idom {
                if idom[b.index()] != Some(ni) {
                    idom[b.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// Whether `a` dominates `b` given an `idom` table from
/// [`immediate_dominators`]. A block dominates itself.
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.index()] {
            Some(parent) if parent != cur => cur = parent,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{InstKind, IsaMode};

    /// Diamond: e -> a, e -> b, a -> m, b -> m.
    fn diamond() -> (Program, [BlockId; 4]) {
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let f = bld.function("f");
        let e = bld.block(f);
        let a = bld.block(f);
        let b = bld.block(f);
        let m = bld.block(f);
        bld.push(e, InstKind::Alu);
        bld.branch(e, a, b);
        bld.push(a, InstKind::Alu);
        bld.jump(a, m);
        bld.push(b, InstKind::Alu);
        bld.fall_through(b, m);
        bld.push(m, InstKind::Alu);
        bld.exit(m);
        (bld.finish().unwrap(), [e, a, b, m])
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all() {
        let (p, [e, ..]) = diamond();
        let rpo = reverse_post_order(&p, p.entry());
        assert_eq!(rpo[0], e);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn predecessors_of_merge() {
        let (p, [_, a, b, m]) = diamond();
        let preds = Predecessors::compute(&p);
        let mut pm = preds.of(m).to_vec();
        pm.sort();
        assert_eq!(pm, vec![a, b]);
    }

    #[test]
    fn dominators_of_diamond() {
        let (p, [e, a, b, m]) = diamond();
        let idom = immediate_dominators(&p, p.entry());
        assert_eq!(idom[e.index()], Some(e));
        assert_eq!(idom[a.index()], Some(e));
        assert_eq!(idom[b.index()], Some(e));
        assert_eq!(idom[m.index()], Some(e));
        assert!(dominates(&idom, e, m));
        assert!(!dominates(&idom, a, m));
        assert!(dominates(&idom, m, m));
    }

    #[test]
    fn reachable_skips_other_functions() {
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let f = bld.function("f");
        let g = bld.function("g");
        let fb = bld.block(f);
        let gb = bld.block(g);
        bld.push(fb, InstKind::Alu);
        bld.call(fb, g, fb); // self-loop through call's return edge
        bld.push(gb, InstKind::Alu);
        bld.ret(gb);
        // The call terminator would retry fb forever semantically, but
        // structurally this is fine for reachability.
        let p = bld.finish().unwrap();
        let r = reachable(&p, f);
        assert_eq!(r, vec![fb]);
    }

    #[test]
    fn linear_chain_dominators() {
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let f = bld.function("f");
        let x = bld.block(f);
        let y = bld.block(f);
        let z = bld.block(f);
        bld.push(x, InstKind::Alu);
        bld.fall_through(x, y);
        bld.push(y, InstKind::Alu);
        bld.fall_through(y, z);
        bld.push(z, InstKind::Alu);
        bld.exit(z);
        let p = bld.finish().unwrap();
        let idom = immediate_dominators(&p, f);
        assert_eq!(idom[y.index()], Some(x));
        assert_eq!(idom[z.index()], Some(y));
        assert!(dominates(&idom, x, z));
    }
}
