//! # casa-ir — embedded program intermediate representation
//!
//! This crate provides the program representation that the rest of the
//! CASA reproduction operates on. The DATE 2004 paper ("Cache-Aware
//! Scratchpad Allocation Algorithm", Verma/Wehmeyer/Marwedel) works on
//! compiled ARM7T binaries; we substitute a compact IR that preserves
//! everything the allocation problem depends on:
//!
//! * instructions with byte sizes (ARM = 4 bytes, Thumb = 2 bytes),
//! * basic blocks with explicit terminators (fall-through edges are
//!   what trace formation follows),
//! * functions and a whole-[`Program`],
//! * control-flow utilities ([`mod@cfg`]), natural-loop detection
//!   ([`loops`], needed by the preloaded-loop-cache baseline),
//!   call-graph analysis ([`callgraph`]), and
//! * execution [`profile::Profile`]s (block and edge counts) with flow
//!   conservation checks.
//!
//! # Example
//!
//! ```
//! use casa_ir::builder::ProgramBuilder;
//! use casa_ir::inst::{InstKind, IsaMode};
//!
//! let mut b = ProgramBuilder::new(IsaMode::Arm);
//! let f = b.function("main");
//! let entry = b.block(f);
//! b.push_n(entry, InstKind::Alu, 4);
//! b.ret(entry);
//! let program = b.finish()?;
//! assert_eq!(program.function(f).name(), "main");
//! # Ok::<(), casa_ir::validate::ValidateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod callgraph;
pub mod cfg;
pub mod dot;
pub mod function;
pub mod ids;
pub mod inst;
pub mod loops;
pub mod profile;
pub mod program;
pub mod validate;

pub use builder::ProgramBuilder;
pub use function::Function;
pub use ids::{BlockId, FunctionId};
pub use inst::{InstKind, Instruction, IsaMode};
pub use profile::Profile;
pub use program::{BasicBlock, Program, Terminator};
