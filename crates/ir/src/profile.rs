//! Execution profiles: block and edge execution counts.
//!
//! The CASA workflow (paper fig. 3) profiles the application once; the
//! conflict graph's vertex weights `f_i` (instruction fetches) and the
//! trace-formation heuristic both derive from these counts.

use crate::ids::BlockId;
use crate::program::Program;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Block and edge execution counts for one program run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    block_counts: BTreeMap<BlockId, u64>,
    edge_counts: BTreeMap<(BlockId, BlockId), u64>,
}

/// A flow-conservation violation detected by [`Profile::check_flow`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowError {
    /// The block whose counts are inconsistent.
    pub block: BlockId,
    /// The block's execution count.
    pub count: u64,
    /// The sum of its outgoing edge counts.
    pub out_sum: u64,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {} executed {} times but outgoing edges sum to {}",
            self.block, self.count, self.out_sum
        )
    }
}

impl Error for FlowError {}

impl Profile {
    /// An empty profile (all counts zero).
    pub fn new() -> Self {
        Profile::default()
    }

    /// Record `n` additional executions of `block`.
    pub fn add_block(&mut self, block: BlockId, n: u64) {
        *self.block_counts.entry(block).or_insert(0) += n;
    }

    /// Record `n` additional traversals of the edge `from -> to`.
    pub fn add_edge(&mut self, from: BlockId, to: BlockId, n: u64) {
        *self.edge_counts.entry((from, to)).or_insert(0) += n;
    }

    /// Execution count of `block`.
    pub fn block_count(&self, block: BlockId) -> u64 {
        self.block_counts.get(&block).copied().unwrap_or(0)
    }

    /// Traversal count of the edge `from -> to`.
    pub fn edge_count(&self, from: BlockId, to: BlockId) -> u64 {
        self.edge_counts.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Iterate over `(block, count)` pairs with non-zero counts.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, u64)> + '_ {
        self.block_counts.iter().map(|(&b, &c)| (b, c))
    }

    /// Iterate over `((from, to), count)` pairs with non-zero counts.
    pub fn edges(&self) -> impl Iterator<Item = ((BlockId, BlockId), u64)> + '_ {
        self.edge_counts.iter().map(|(&e, &c)| (e, c))
    }

    /// Instruction fetches attributable to `block` in `program`:
    /// `block executions × instructions per execution`.
    pub fn fetches(&self, program: &Program, block: BlockId) -> u64 {
        self.block_count(block) * program.block(block).len() as u64
    }

    /// Total instruction fetches over the whole program.
    pub fn total_fetches(&self, program: &Program) -> u64 {
        self.blocks()
            .map(|(b, c)| c * program.block(b).len() as u64)
            .sum()
    }

    /// Check flow conservation: for every block with successors, the
    /// sum of outgoing edge counts must equal the block count (one
    /// outgoing traversal per execution). Blocks ending in `Return`
    /// or `Exit` are exempt.
    ///
    /// # Errors
    ///
    /// Returns the first violating block.
    pub fn check_flow(&self, program: &Program) -> Result<(), FlowError> {
        for (&block, &count) in &self.block_counts {
            let succs = program.block(block).terminator().successors();
            if succs.is_empty() {
                continue;
            }
            let out_sum: u64 = succs.iter().map(|&s| self.edge_count(block, s)).sum();
            if out_sum != count {
                return Err(FlowError {
                    block,
                    count,
                    out_sum,
                });
            }
        }
        Ok(())
    }

    /// Total number of block executions.
    pub fn total_block_executions(&self) -> u64 {
        self.block_counts.values().sum()
    }

    /// Whether no counts were recorded.
    pub fn is_empty(&self) -> bool {
        self.block_counts.is_empty() && self.edge_counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{InstKind, IsaMode};

    fn loop_program() -> (Program, BlockId, BlockId, BlockId) {
        let mut bld = ProgramBuilder::new(IsaMode::Arm);
        let f = bld.function("f");
        let head = bld.block(f);
        let body = bld.block(f);
        let ex = bld.block(f);
        bld.push(head, InstKind::Alu);
        bld.branch(head, ex, body);
        bld.push_n(body, InstKind::Alu, 2);
        bld.jump(body, head);
        bld.push(ex, InstKind::Alu);
        bld.exit(ex);
        let p = bld.finish().unwrap();
        (p, head, body, ex)
    }

    #[test]
    fn counts_accumulate() {
        let mut prof = Profile::new();
        let b = BlockId::from_raw(0);
        prof.add_block(b, 3);
        prof.add_block(b, 2);
        assert_eq!(prof.block_count(b), 5);
        assert_eq!(prof.block_count(BlockId::from_raw(1)), 0);
    }

    #[test]
    fn fetches_multiply_by_block_len() {
        let (p, head, body, _) = loop_program();
        let mut prof = Profile::new();
        prof.add_block(head, 10);
        prof.add_block(body, 9);
        // head has 2 insts (alu + branch), body has 3 (2 alu + jump).
        assert_eq!(prof.fetches(&p, head), 20);
        assert_eq!(prof.fetches(&p, body), 27);
        assert_eq!(prof.total_fetches(&p), 47);
    }

    #[test]
    fn flow_check_accepts_consistent() {
        let (p, head, body, ex) = loop_program();
        let mut prof = Profile::new();
        // Loop iterates 9 times: head runs 10x, body 9x, ex 1x.
        prof.add_block(head, 10);
        prof.add_block(body, 9);
        prof.add_block(ex, 1);
        prof.add_edge(head, body, 9);
        prof.add_edge(head, ex, 1);
        prof.add_edge(body, head, 9);
        assert!(prof.check_flow(&p).is_ok());
    }

    #[test]
    fn flow_check_rejects_inconsistent() {
        let (p, head, body, ex) = loop_program();
        let mut prof = Profile::new();
        prof.add_block(head, 10);
        prof.add_edge(head, body, 5);
        prof.add_edge(head, ex, 1);
        let err = prof.check_flow(&p).unwrap_err();
        assert_eq!(err.block, head);
        assert_eq!(err.count, 10);
        assert_eq!(err.out_sum, 6);
        assert!(err.to_string().contains("10"));
    }

    #[test]
    fn exit_blocks_exempt_from_flow() {
        let (p, _, _, ex) = loop_program();
        let mut prof = Profile::new();
        prof.add_block(ex, 7);
        assert!(prof.check_flow(&p).is_ok());
    }
}
