//! Basic blocks, terminators and the whole-program container.

use crate::function::Function;
use crate::ids::{BlockId, FunctionId};
use crate::inst::{Instruction, IsaMode};
use serde::{Deserialize, Serialize};

/// How control leaves a basic block.
///
/// Fall-through edges are distinguished from explicit jumps because
/// trace formation (Tomiyama-style, paper §3.2) grows traces along
/// fall-through edges only: a trace must be a *straight-line* path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// Control continues at `next` without a branch instruction; the
    /// two blocks must be laid out adjacently for this to be free.
    FallThrough {
        /// The successor block.
        next: BlockId,
    },
    /// Unconditional jump to `target`.
    Jump {
        /// The jump target block.
        target: BlockId,
    },
    /// Conditional branch: `taken` if the condition holds, otherwise
    /// fall through to `fallthrough`.
    Branch {
        /// Target when the branch is taken.
        taken: BlockId,
        /// Fall-through successor (must be laid out adjacently).
        fallthrough: BlockId,
    },
    /// Call into `callee`; execution resumes at `return_to` after the
    /// callee returns.
    Call {
        /// Called function.
        callee: FunctionId,
        /// Block control returns to.
        return_to: BlockId,
    },
    /// Return from the current function.
    Return,
    /// Program exit.
    Exit,
}

impl Terminator {
    /// Intra-procedural successor blocks (callees are not included;
    /// the return-to block of a call *is*, since it will execute next
    /// within this function's CFG).
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::FallThrough { next } => vec![next],
            Terminator::Jump { target } => vec![target],
            Terminator::Branch { taken, fallthrough } => vec![taken, fallthrough],
            Terminator::Call { return_to, .. } => vec![return_to],
            Terminator::Return | Terminator::Exit => vec![],
        }
    }

    /// The fall-through successor, if any.
    ///
    /// Trace formation may merge a block with this successor; all
    /// other successor kinds require an explicit control transfer.
    pub fn fallthrough_successor(&self) -> Option<BlockId> {
        match *self {
            Terminator::FallThrough { next } => Some(next),
            Terminator::Branch { fallthrough, .. } => Some(fallthrough),
            _ => None,
        }
    }

    /// Whether the block ends in an explicit unconditional transfer,
    /// i.e. it can be placed anywhere without changing semantics.
    pub fn is_unconditional_transfer(&self) -> bool {
        matches!(
            self,
            Terminator::Jump { .. } | Terminator::Return | Terminator::Exit
        )
    }
}

/// A basic block: a maximal straight-line instruction sequence with a
/// single entry and a single [`Terminator`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    id: BlockId,
    function: FunctionId,
    insts: Vec<Instruction>,
    terminator: Terminator,
}

impl BasicBlock {
    pub(crate) fn new(
        id: BlockId,
        function: FunctionId,
        insts: Vec<Instruction>,
        terminator: Terminator,
    ) -> Self {
        BasicBlock {
            id,
            function,
            insts,
            terminator,
        }
    }

    /// This block's id.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The function this block belongs to.
    pub fn function(&self) -> FunctionId {
        self.function
    }

    /// The instructions of the block (terminator instruction included
    /// as the last element when one exists).
    pub fn insts(&self) -> &[Instruction] {
        &self.insts
    }

    /// How control leaves the block.
    pub fn terminator(&self) -> Terminator {
        self.terminator
    }

    /// Total size of the block in bytes.
    pub fn size(&self) -> u32 {
        self.insts.iter().map(|i| i.size()).sum()
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// A whole program: all functions and all basic blocks, plus the entry
/// function.
///
/// Construct programs through [`crate::ProgramBuilder`]; it guarantees
/// the structural invariants that [`crate::validate`] checks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    pub(crate) name: String,
    pub(crate) mode: IsaMode,
    pub(crate) functions: Vec<Function>,
    pub(crate) blocks: Vec<BasicBlock>,
    pub(crate) entry: FunctionId,
}

impl Program {
    /// The program's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ISA mode all instructions were sized for.
    pub fn mode(&self) -> IsaMode {
        self.mode
    }

    /// The program entry function.
    pub fn entry(&self) -> FunctionId {
        self.entry
    }

    /// All functions.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// All basic blocks, indexed by [`BlockId::index`].
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Look up a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn function(&self, id: FunctionId) -> &Function {
        &self.functions[id.index()]
    }

    /// Look up a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Total code size in bytes (no alignment padding).
    pub fn code_size(&self) -> u32 {
        self.blocks.iter().map(|b| b.size()).sum()
    }

    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Iterate over the block ids of one function, in insertion order.
    pub fn function_blocks(&self, id: FunctionId) -> impl Iterator<Item = BlockId> + '_ {
        self.function(id).blocks().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::InstKind;

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new(IsaMode::Arm);
        let f = b.function("main");
        let e = b.block(f);
        let x = b.block(f);
        b.push_n(e, InstKind::Alu, 3);
        b.fall_through(e, x);
        b.push_n(x, InstKind::Alu, 1);
        b.exit(x);
        b.finish().expect("valid program")
    }

    #[test]
    fn sizes_accumulate() {
        let p = tiny();
        // 3 ALU + fallthrough (no inst) + 1 ALU + exit: exit adds a
        // jump-like instruction? No: exit terminator has no encoded
        // instruction in our model, so 4 instructions of 4 bytes.
        assert_eq!(p.inst_count(), 4);
        assert_eq!(p.code_size(), 16);
    }

    #[test]
    fn successors_of_terminators() {
        let a = BlockId::from_raw(1);
        let b = BlockId::from_raw(2);
        assert_eq!(Terminator::FallThrough { next: a }.successors(), vec![a]);
        assert_eq!(Terminator::Jump { target: b }.successors(), vec![b]);
        assert_eq!(
            Terminator::Branch {
                taken: a,
                fallthrough: b
            }
            .successors(),
            vec![a, b]
        );
        assert!(Terminator::Return.successors().is_empty());
        assert!(Terminator::Exit.successors().is_empty());
        assert_eq!(
            Terminator::Call {
                callee: FunctionId::from_raw(0),
                return_to: a
            }
            .successors(),
            vec![a]
        );
    }

    #[test]
    fn fallthrough_successor_only_for_fallthrough_kinds() {
        let a = BlockId::from_raw(1);
        let b = BlockId::from_raw(2);
        assert_eq!(
            Terminator::FallThrough { next: a }.fallthrough_successor(),
            Some(a)
        );
        assert_eq!(
            Terminator::Branch {
                taken: a,
                fallthrough: b
            }
            .fallthrough_successor(),
            Some(b)
        );
        assert_eq!(Terminator::Jump { target: a }.fallthrough_successor(), None);
        assert_eq!(Terminator::Return.fallthrough_successor(), None);
    }

    #[test]
    fn unconditional_transfer_classification() {
        assert!(Terminator::Jump {
            target: BlockId::from_raw(0)
        }
        .is_unconditional_transfer());
        assert!(Terminator::Return.is_unconditional_transfer());
        assert!(Terminator::Exit.is_unconditional_transfer());
        assert!(!Terminator::FallThrough {
            next: BlockId::from_raw(0)
        }
        .is_unconditional_transfer());
    }

    #[test]
    fn lookups_work() {
        let p = tiny();
        let f = p.entry();
        assert_eq!(p.function(f).name(), "main");
        let blocks: Vec<_> = p.function_blocks(f).collect();
        assert_eq!(blocks.len(), 2);
        assert_eq!(p.block(blocks[0]).function(), f);
    }
}
