//! Strongly-typed identifiers for IR entities.
//!
//! Blocks are numbered globally across the whole [`crate::Program`]
//! (not per function); this keeps conflict-graph and layout code free
//! of (function, block) pairs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a [`crate::Function`] within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(pub(crate) u32);

/// Identifier of a [`crate::BasicBlock`], global across the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub(crate) u32);

impl FunctionId {
    /// Create a function id from a raw index.
    ///
    /// Mostly useful in tests; prefer the ids handed out by
    /// [`crate::ProgramBuilder::function`].
    pub fn from_raw(raw: u32) -> Self {
        FunctionId(raw)
    }

    /// The raw index of this function inside [`crate::Program::functions`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// Create a block id from a raw index.
    pub fn from_raw(raw: u32) -> Self {
        BlockId(raw)
    }

    /// The raw index of this block inside [`crate::Program::blocks`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_raw_index() {
        assert_eq!(FunctionId::from_raw(7).index(), 7);
        assert_eq!(BlockId::from_raw(42).index(), 42);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(FunctionId::from_raw(3).to_string(), "fn3");
        assert_eq!(BlockId::from_raw(9).to_string(), "bb9");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(BlockId::from_raw(1) < BlockId::from_raw(2));
        assert!(FunctionId::from_raw(0) < FunctionId::from_raw(1));
    }
}
