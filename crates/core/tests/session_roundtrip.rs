//! Property tests for the `.casa-session` codecs (satellite of the
//! record/replay PR):
//!
//! 1. Write → read is the identity for arbitrary sessions, through
//!    both the binary framing and the JSON sibling — including f64 bit
//!    patterns (NaN payloads travel as bits, not as parsed numbers)
//!    and strings needing escapes.
//! 2. Truncated binary input is always a clean `Format` error, never a
//!    panic and never a silently shorter session.
//! 3. Forward compatibility: a reader presented with sections/keys it
//!    does not know skips them and still reconstructs the session.

use casa_core::session::{BoundUpdate, DecisionLog, Incumbent};
use casa_core::{Session, SessionError, SESSION_SCHEMA};
use proptest::prelude::*;
use proptest::TestRng;

/// Printable-ish characters plus the ones that stress the JSON
/// escaper: quotes, backslashes, control characters, non-ASCII.
const ALPHABET: [char; 8] = ['a', '"', '\\', '\n', '\t', '\u{1}', 'µ', '→'];

/// Node ids and node counts travel as plain JSON numbers, and the
/// mini-parser reads numbers through f64 — so, like the writer, the
/// generator stays below 2^53. Bit-pattern fields (`*_bits`) travel
/// as hex strings and keep the full u64 range.
fn count(rng: &mut TestRng) -> u64 {
    (0u64..(1 << 53)).sample(rng)
}

fn wild_string(rng: &mut TestRng) -> String {
    let len = (0usize..12).sample(rng);
    (0..len)
        .map(|_| ALPHABET[(0usize..ALPHABET.len()).sample(rng)])
        .collect()
}

fn opt_string(rng: &mut TestRng) -> Option<String> {
    if any::<bool>().sample(rng) {
        Some(wild_string(rng))
    } else {
        None
    }
}

fn decision_log(rng: &mut TestRng) -> DecisionLog {
    DecisionLog {
        order: prop::collection::vec(any::<u32>(), 0..16).sample(rng),
        incumbents: (0..(0usize..4).sample(rng))
            .map(|_| Incumbent {
                node: count(rng),
                objective_bits: any::<u64>().sample(rng),
                on_spm: prop::collection::vec(any::<bool>(), 0..10).sample(rng),
            })
            .collect(),
        bounds: (0..(0usize..4).sample(rng))
            .map(|_| BoundUpdate {
                node: count(rng),
                value_bits: any::<u64>().sample(rng),
            })
            .collect(),
        stop: opt_string(rng),
        nodes: count(rng),
    }
}

/// An arbitrary syntactically-wild session. The vendored proptest
/// stand-in has no combinators (`prop_map` etc.), so this is a direct
/// [`Strategy`] implementation assembling the struct field by field.
struct ArbSession;

impl Strategy for ArbSession {
    type Value = Session;

    fn sample(&self, rng: &mut TestRng) -> Session {
        Session {
            schema: SESSION_SCHEMA,
            meta: (0..(0usize..3).sample(rng))
                .map(|_| (wild_string(rng), wild_string(rng)))
                .collect(),
            request: wild_string(rng),
            log: decision_log(rng),
            layout: prop::collection::vec(any::<bool>(), 0..10).sample(rng),
            energy_bits: any::<u64>().sample(rng),
            status: wild_string(rng),
            gap_bits: any::<u64>().sample(rng),
            stopped_by: opt_string(rng),
            reason: opt_string(rng),
            nodes: count(rng),
            report: wild_string(rng),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn binary_round_trip_is_identity(s in ArbSession) {
        let bytes = s.to_binary();
        prop_assert_eq!(Session::from_binary(&bytes).expect("reads back"), s);
    }

    #[test]
    fn json_round_trip_is_identity(s in ArbSession) {
        let text = s.to_json();
        prop_assert_eq!(Session::from_json(&text).expect("parses back"), s);
    }

    #[test]
    fn truncated_binary_is_a_clean_format_error(s in ArbSession, k in 1usize..=9) {
        // Every section ends with at least its own 10-byte header, so
        // shaving 1..=9 bytes always cuts *inside* the final section.
        let bytes = s.to_binary();
        prop_assert!(matches!(
            Session::from_binary(&bytes[..bytes.len() - k]),
            Err(SessionError::Format(_))
        ));
    }

    #[test]
    fn unknown_binary_sections_are_skipped(s in ArbSession, payload in prop::collection::vec(any::<u8>(), 0..32)) {
        // A section tag this build has never heard of, spliced onto the
        // end exactly as a future writer would: u16 tag, u64 length,
        // payload — all little-endian.
        let mut bytes = s.to_binary();
        bytes.extend_from_slice(&999u16.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        prop_assert_eq!(Session::from_binary(&bytes).expect("tolerant reader"), s);
    }

    #[test]
    fn unknown_json_keys_are_ignored(s in ArbSession, n in any::<u64>()) {
        let text = s.to_json();
        let extended = format!(
            "{{\"added_by_a_future_writer\":{{\"x\":{n},\"y\":[1,2]}},{}",
            &text[1..]
        );
        prop_assert_eq!(Session::from_json(&extended).expect("tolerant reader"), s);
    }

    #[test]
    fn newer_schema_is_refused(s in ArbSession, bump in 1u32..5) {
        let mut s = s;
        s.schema = SESSION_SCHEMA + bump;
        prop_assert!(Session::from_binary(&s.to_binary()).is_err());
        prop_assert!(Session::from_json(&s.to_json()).is_err());
    }
}
