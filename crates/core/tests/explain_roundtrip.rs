//! Property tests for the explain-document codec (satellite of the
//! explainability PR), mirroring the session-codec suite:
//!
//! 1. Write → read is the identity for arbitrary documents — floats
//!    travel as shortest-round-trip decimals, strings through the JSON
//!    escaper.
//! 2. The writer is NaN-free: whatever the assembler produces, the
//!    serialized text is strict JSON with no `NaN`/`inf` tokens.
//! 3. Truncated input is always a clean error, never a panic and never
//!    a silently shorter document.
//! 4. Forward compatibility: unknown keys are skipped; documents
//!    stamped with a newer schema are refused.

use casa_core::explain::{ExplainDoc, FixedBy, ObjectExplain, ProbeResult};
use casa_core::{explain_json, parse_explain, EXPLAIN_SCHEMA};
use proptest::prelude::*;
use proptest::TestRng;

/// Printable-ish characters plus the ones that stress the JSON
/// escaper: quotes, backslashes, control characters, non-ASCII.
const ALPHABET: [char; 8] = ['a', '"', '\\', '\n', '\t', '\u{1}', 'µ', '→'];

fn wild_string(rng: &mut TestRng) -> String {
    let len = (0usize..12).sample(rng);
    (0..len)
        .map(|_| ALPHABET[(0usize..ALPHABET.len()).sample(rng)])
        .collect()
}

/// Finite f64 from arbitrary bits: every finite double survives the
/// shortest-round-trip `{}` formatting exactly, so identity holds.
fn finite(rng: &mut TestRng) -> f64 {
    let v = f64::from_bits(any::<u64>().sample(rng));
    if v.is_finite() {
        v
    } else {
        -0.5
    }
}

fn opt_finite(rng: &mut TestRng) -> Option<f64> {
    if any::<bool>().sample(rng) {
        Some(finite(rng))
    } else {
        None
    }
}

fn object(rng: &mut TestRng, index: usize) -> ObjectExplain {
    ObjectExplain {
        index,
        on_spm: any::<bool>().sample(rng),
        size: any::<u32>().sample(rng),
        density_rank: if any::<bool>().sample(rng) {
            Some(any::<u32>().sample(rng) as usize)
        } else {
            None
        },
        linear_saving: finite(rng),
        conflict_saving: finite(rng),
        root_value: opt_finite(rng),
        reduced_cost: opt_finite(rng),
        fixed_by: [FixedBy::Root, FixedBy::Branch, FixedBy::Heuristic][(0usize..3).sample(rng)],
        regret: finite(rng),
        flip_capacity: if any::<bool>().sample(rng) {
            Some(any::<u32>().sample(rng))
        } else {
            None
        },
    }
}

fn probe(rng: &mut TestRng) -> ProbeResult {
    ProbeResult {
        target: any::<u32>().sample(rng) as usize,
        capacity: any::<u32>().sample(rng),
        flipped: (0..(0usize..6).sample(rng))
            .map(|_| any::<u32>().sample(rng) as usize)
            .collect(),
        target_flipped: any::<bool>().sample(rng),
    }
}

/// An arbitrary syntactically-wild explain document. The vendored
/// proptest stand-in has no combinators (`prop_map` etc.), so this is
/// a direct [`Strategy`] implementation assembling the struct field by
/// field.
struct ArbDoc;

impl Strategy for ArbDoc {
    type Value = ExplainDoc;

    fn sample(&self, rng: &mut TestRng) -> ExplainDoc {
        let n = (0usize..8).sample(rng);
        ExplainDoc {
            allocator: wild_string(rng),
            capacity: any::<u32>().sample(rng),
            spm_used: any::<u32>().sample(rng),
            root_objective: opt_finite(rng),
            shadow_price: opt_finite(rng),
            probes: (0..(0usize..3).sample(rng)).map(|_| probe(rng)).collect(),
            objects: (0..n).map(|i| object(rng, i)).collect(),
        }
    }
}

/// A document the assembler could never emit: non-finite floats
/// everywhere they fit. The writer must still produce strict JSON.
struct ArbPoisonedDoc;

impl Strategy for ArbPoisonedDoc {
    type Value = ExplainDoc;

    fn sample(&self, rng: &mut TestRng) -> ExplainDoc {
        let mut doc = ArbDoc.sample(rng);
        let poison = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let pick = |rng: &mut TestRng| poison[(0usize..3).sample(rng)];
        doc.root_objective = Some(pick(rng));
        doc.shadow_price = Some(pick(rng));
        for o in &mut doc.objects {
            o.regret = pick(rng);
            o.linear_saving = pick(rng);
            o.reduced_cost = Some(pick(rng));
        }
        doc
    }
}

/// Largest prefix of `text` with `cut` bytes removed that is still a
/// valid UTF-8 boundary (wild allocator strings are multi-byte).
fn truncate(text: &str, cut: usize) -> &str {
    let mut end = text.len().saturating_sub(cut);
    while end > 0 && !text.is_char_boundary(end) {
        end -= 1;
    }
    &text[..end]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn json_round_trip_is_identity(d in ArbDoc) {
        let text = explain_json(&d);
        let back = parse_explain(&text).expect("parses back");
        prop_assert_eq!(&back, &d);
        // Re-serialization is byte-stable (sorted keys, shortest
        // round-trip floats).
        prop_assert_eq!(explain_json(&back), text);
    }

    #[test]
    fn writer_is_nan_free(d in ArbPoisonedDoc) {
        let text = explain_json(&d);
        prop_assert!(!text.contains("NaN"), "{}", text);
        prop_assert!(!text.contains("inf"), "{}", text);
        // Non-finite floats degrade to null, which the reader either
        // accepts (optional fields) or refuses cleanly (required
        // fields) — it never panics and never fabricates a number.
        if let Ok(back) = parse_explain(&text) {
            prop_assert!(back.root_objective.is_none());
            prop_assert!(back.shadow_price.is_none());
        }
    }

    #[test]
    fn truncation_is_a_clean_error(d in ArbDoc, cut in 1usize..32) {
        let text = explain_json(&d);
        let cut = cut.min(text.len());
        prop_assert!(parse_explain(truncate(&text, cut)).is_err());
    }

    #[test]
    fn unknown_keys_are_ignored(d in ArbDoc, n in any::<u64>()) {
        let text = explain_json(&d);
        let extended = format!(
            "{{\"added_by_a_future_writer\":{{\"x\":{n},\"y\":[1,2]}},{}",
            &text[1..]
        );
        prop_assert_eq!(parse_explain(&extended).expect("tolerant reader"), d);
    }

    #[test]
    fn newer_schema_is_refused(d in ArbDoc, bump in 1u32..5) {
        let text = explain_json(&d);
        let old = format!("\"casa_explain\":{EXPLAIN_SCHEMA}");
        let newer = text.replace(&old, &format!("\"casa_explain\":{}", EXPLAIN_SCHEMA + bump));
        prop_assert!(parse_explain(&newer).is_err());
    }
}
